"""Shared helpers for the per-figure benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, asserts its
*shape* against the paper's reported numbers, and writes the rendered
rows/series to ``benchmarks/results/`` so the output can be compared to
the paper directly.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Workload scale used by the heavyweight experiments.  0.4 keeps every
#: benchmark's statistics stable while the whole suite finishes in
#: minutes; the experiment runners accept any scale for bigger runs.
SCALE = 0.4

#: Minimal-heap search resolution (bytes).
RESOLUTION = 8192


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write one experiment's rendered text under benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record
