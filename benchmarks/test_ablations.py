"""Design-choice ablations called out in DESIGN.md section 5.

* Context depth: site-only contexts merge the seven TVLA factories'
  *callers*?  No -- in TVLA the factories themselves are distinct sites,
  so depth-1 still separates them; what depth>=2 buys is separating the
  same factory called from different code paths.  The ablation measures
  suggestion counts and capture cost across depths.
* Sampling rate: profiling overhead falls with sampling while the
  suggestion set is preserved.
* Stability gating: without Definition 3.1's gate, mixed-size contexts
  misfire the small-map replacement.
* Wrapper indirection: the section 4.1 "small delta in inefficiency".
"""

import pytest

from repro.collections.lists import ArrayListImpl
from repro.collections.wrappers import ChameleonList, ChameleonMap
from repro.core.chameleon import Chameleon
from repro.core.config import ToolConfig
from repro.profiler.stability import StabilityPolicy
from repro.rules.engine import RuleEngine
from repro.runtime.vm import RuntimeEnvironment
from repro.workloads import TvlaWorkload

from conftest import SCALE


def test_ablation_context_depth(benchmark, record_result):
    def sweep():
        outcomes = {}
        for depth in (1, 2, 3):
            tool = Chameleon(ToolConfig(context_depth=depth))
            session = tool.profile(TvlaWorkload(scale=SCALE / 2))
            array_maps = sum(1 for s in session.suggestions
                             if s.action.impl_name == "ArrayMap")
            outcomes[depth] = (array_maps, session.metrics.ticks)
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: allocation-context depth",
             "depth  ArrayMap-contexts  profile-ticks"]
    for depth, (count, ticks) in outcomes.items():
        lines.append(f"{depth:5d}  {count:17d}  {ticks:13d}")
    record_result("ablation_context_depth", "\n".join(lines))

    # The seven factory contexts survive at every depth (the factories
    # are distinct sites), and deeper contexts never lose precision.
    assert all(count == 7 for count, _ in outcomes.values())
    # Deeper capture walks more frames, so profiling costs more.
    assert outcomes[3][1] >= outcomes[2][1] >= outcomes[1][1]


def test_ablation_sampling_rate(benchmark, record_result):
    def sweep():
        outcomes = {}
        for rate in (1, 4, 16):
            tool = Chameleon(ToolConfig(sampling_rate=rate))
            session = tool.profile(TvlaWorkload(scale=SCALE / 2))
            array_maps = sum(1 for s in session.suggestions
                             if s.action.impl_name == "ArrayMap")
            outcomes[rate] = (array_maps, session.metrics.ticks)
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: context-capture sampling rate",
             "rate  ArrayMap-contexts  profile-ticks"]
    for rate, (count, ticks) in outcomes.items():
        lines.append(f"{rate:4d}  {count:17d}  {ticks:13d}")
    record_result("ablation_sampling", "\n".join(lines))

    # Sampling cuts instrumented-run cost monotonically...
    assert outcomes[1][1] > outcomes[4][1] > outcomes[16][1]
    # ... and moderate rates preserve the full suggestion set (the
    # paper's justification: per-context behaviour is homogeneous)...
    assert outcomes[1][0] == 7
    assert outcomes[4][0] == 7
    # ... but aggressive sampling starves the space-potential gate:
    # unsampled instances carry no context for the collector to
    # attribute, so observed per-context potential shrinks with the
    # sampling rate.  A real fidelity/overhead trade-off.
    assert outcomes[16][0] <= 7


def test_ablation_stability_gate(benchmark, record_result):
    """Disable Definition 3.1 and watch the small-map rule misfire on a
    context whose sizes are wildly mixed."""
    from repro.profiler.profiler import SemanticProfiler
    from repro.profiler.report import build_report
    from repro.runtime.context import ContextKey

    def run(policy):
        vm = RuntimeEnvironment(gc_threshold_bytes=None,
                                profiler=SemanticProfiler())
        key = ContextKey.synthetic("mixed", "bench")
        # Mostly tiny maps with one huge straggler: the *average* size
        # stays under the small-map threshold, so only the stability
        # gate stands between the rule and a disastrous replacement of
        # the 400-entry map.
        sizes = [2] * 40 + [400]
        for size in sizes:
            mapping = ChameleonMap(vm, context=key)
            mapping.pin()
            for k in range(size):
                mapping.put(k, k)
        vm.collect()
        vm.finish()
        report = build_report(vm.profiler, vm.timeline, vm.contexts)
        engine = RuleEngine(min_potential_bytes=64, stability=policy)
        return engine.evaluate_context(
            report.context(vm.contexts.intern(key)))

    def sweep():
        return (run(StabilityPolicy()), run(StabilityPolicy.permissive()))

    gated, ungated = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_result(
        "ablation_stability",
        "Ablation: stability gate (Definition 3.1)\n"
        f"gated   : {'no suggestion' if gated is None else gated.render()}\n"
        f"ungated : {'no suggestion' if ungated is None else ungated.render()}")

    # With the gate: silence.  Without it: a replacement that would cripple
    # the one 400-entry map.
    assert gated is None or gated.action.impl_name != "ArrayMap"
    assert ungated is not None and ungated.action.impl_name == "ArrayMap"


def test_ablation_wrapper_indirection(benchmark, record_result):
    """Section 4.1: the wrapper's delegation tick is a small constant
    fraction of operation cost."""
    def measure():
        vm = RuntimeEnvironment(gc_threshold_bytes=None)
        direct = ArrayListImpl(vm)
        start = vm.now
        for i in range(2000):
            direct.add(i)
        for i in range(2000):
            direct.get(i)
        direct_cost = vm.now - start

        wrapped = ChameleonList(vm)
        start = vm.now
        for i in range(2000):
            wrapped.add(i)
        for i in range(2000):
            wrapped.get(i)
        wrapped_cost = vm.now - start
        return direct_cost, wrapped_cost

    direct_cost, wrapped_cost = benchmark(measure)
    overhead = wrapped_cost / direct_cost - 1.0
    record_result(
        "ablation_wrapper_overhead",
        "Ablation: wrapper indirection\n"
        f"direct  : {direct_cost} ticks\n"
        f"wrapped : {wrapped_cost} ticks\n"
        f"overhead: {overhead:.1%}")
    assert 0.0 < overhead < 0.75  # noticeable but small delta


def test_ablation_generational_collector(benchmark, record_result):
    """Section 4.3.2's orthogonality claim: "the improvements in
    collection usage are orthogonal to the specific GC".  Re-measure the
    headline TVLA footprint saving under the generational collector."""
    from repro.memory.gc import MarkSweepGC
    from repro.memory.generational import GenerationalGC
    from repro.runtime.vm import RuntimeEnvironment

    def sweep():
        tool = Chameleon()
        workload = TvlaWorkload(scale=SCALE / 2)
        session = tool.profile(workload)
        policy = tool.build_policy(session.suggestions)

        def measure(factory, with_policy):
            vm = RuntimeEnvironment(collector_factory=factory)
            if with_policy:
                vm.policy = policy.bind(vm)
            workload.run(vm)
            vm.finish()
            return vm.timeline.max_live_data, vm.now, vm.gc

        outcomes = {}
        for label, factory in (("mark-sweep", MarkSweepGC),
                               ("generational", GenerationalGC)):
            base_peak, base_ticks, _ = measure(factory, False)
            opt_peak, opt_ticks, gc = measure(factory, True)
            outcomes[label] = {
                "saving": 1 - opt_peak / base_peak,
                "speedup": base_ticks / opt_ticks,
                "minor": getattr(gc, "minor_cycles", 0),
                "major": getattr(gc, "major_cycles",
                                 getattr(gc, "cycle_count", 0)),
            }
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: collector choice (section 4.3.2 orthogonality)",
             f"{'collector':<14} {'saving':>8} {'speedup':>8} "
             f"{'minor':>6} {'major':>6}"]
    for label, row in outcomes.items():
        lines.append(f"{label:<14} {row['saving']:>7.1%} "
                     f"{row['speedup']:>7.2f}x {row['minor']:>6d} "
                     f"{row['major']:>6d}")
    record_result("ablation_generational_gc", "\n".join(lines))

    base = outcomes["mark-sweep"]
    generational = outcomes["generational"]
    # The footprint saving is collector-independent (within noise from
    # floating tenured garbage shifting GC timing).
    assert abs(base["saving"] - generational["saving"]) < 0.06
    assert generational["saving"] > 0.35
    # The generational run actually exercised minor cycles.
    assert generational["minor"] > 0
