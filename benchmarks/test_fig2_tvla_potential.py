"""E-Fig2: TVLA's collection live/used/core fractions per GC cycle.

Paper shape (Fig. 2): collections reach ~70% of live data, the used part
only ~40%, and core is far below used -- the gap announcing the saving
potential that the rest of the evaluation cashes in.
"""

from repro.analysis.experiments import run_fig2

from conftest import SCALE


def test_fig2_tvla_collection_fractions(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig2(scale=SCALE), rounds=1, iterations=1)
    record_result("fig2_tvla_potential", result.render())

    # A dense multi-cycle series, every row well-formed.
    assert len(result.series) >= 5
    for _, live, used, core in result.series:
        assert 0.0 <= core <= used <= live <= 1.0

    # Collections dominate TVLA's heap (paper: up to ~70%)...
    assert 0.50 <= result.peak_live_fraction <= 0.90
    # ... with a wide live-used gap to optimise (paper: ~30 points of
    # live data; ours is narrower because `used` here includes per-entry
    # object bytes, see EXPERIMENTS.md).
    assert result.peak_live_fraction - result.peak_used_fraction >= 0.10

    benchmark.extra_info["peak_live_fraction"] = round(
        result.peak_live_fraction, 3)
    benchmark.extra_info["peak_used_fraction"] = round(
        result.peak_used_fraction, 3)
