"""E-Fig3: the ranked top-4 allocation contexts of TVLA.

Paper shape (Fig. 3): the top contexts are the abstract-state HashMap
factories, each worth a few percent of total live data, with operation
distributions "entirely dominated by get operations".
"""

from repro.profiler.counters import Op
from repro.analysis.experiments import run_fig3

from conftest import SCALE


def test_fig3_top_allocation_contexts(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig3(scale=SCALE, top=4), rounds=1, iterations=1)
    record_result("fig3_top_contexts", result.render())

    assert len(result.top) == 4
    for profile in result.top:
        # All four top contexts are the paper's HashMap factory contexts.
        assert profile.src_type == "HashMap"
        assert profile.total_potential > 0
        # Context rendering carries the factory call stack.
        assert ";" in profile.render_context()
        # Get-dominated distribution (Fig. 3's circles).
        distribution = profile.info.operation_distribution()
        assert distribution[Op.GET_OBJECT] > 0.5

    # Ranked by potential, descending.
    potentials = [p.total_potential for p in result.top]
    assert potentials == sorted(potentials, reverse=True)
