"""E-Fig6: minimal-heap-size improvement per benchmark.

Paper numbers (section 5.3): bloat 56% (manual lazy allocation; >20%
tool-only), TVLA 53.95%, FindBugs 13.79%, FOP 7.69%, SOOT 6%, PMD 0%.
The assertions check the *shape*: the ordering of winners and the rough
magnitude bands, not exact percentages.
"""

from repro.analysis.experiments import PAPER_FIG6, run_fig6

from conftest import RESOLUTION, SCALE


def test_fig6_minimal_heap_improvement(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig6(scale=SCALE, resolution=RESOLUTION),
        rounds=1, iterations=1)
    record_result("fig6_min_heap", result.render())

    saved = {name: result.reduction(name) for name in PAPER_FIG6}

    # Who wins, in the paper's order: bloat ~ tvla >> findbugs > fop ~
    # soot >> pmd.
    assert saved["bloat"] > saved["findbugs"] > saved["fop"]
    assert saved["tvla"] > saved["findbugs"] > saved["soot"]
    assert min(saved["bloat"], saved["tvla"]) > 2.5 * saved["findbugs"] / 2

    # Magnitude bands.
    assert 0.45 <= saved["bloat"] <= 0.65      # paper: 56%
    assert 0.40 <= saved["tvla"] <= 0.62       # paper: 53.95%
    assert 0.08 <= saved["findbugs"] <= 0.25   # paper: 13.79%
    assert 0.04 <= saved["fop"] <= 0.15        # paper: 7.69%
    assert 0.03 <= saved["soot"] <= 0.14       # paper: 6%
    assert saved["pmd"] <= 0.03                # paper: no reduction

    # bloat's *automatic* fix alone is worth roughly the paper's ">20%".
    assert 0.15 <= result.auto_reduction("bloat") <= 0.30

    for name, value in saved.items():
        benchmark.extra_info[f"{name}_saved"] = round(value, 4)
        paper = PAPER_FIG6[name]
        benchmark.extra_info[f"{name}_paper"] = paper
