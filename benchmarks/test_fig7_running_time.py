"""E-Fig7: running-time improvement at the original minimal heap.

Paper numbers: TVLA 49 -> 19 minutes (~2.58x), SOOT 11%, PMD 8.33% (with
the GC count down 16%); every benchmark improves or holds.
"""

from repro.analysis.experiments import (PAPER_FIG7, PAPER_PMD_GC_REDUCTION,
                                        run_fig7)

from conftest import RESOLUTION, SCALE


def test_fig7_running_time_improvement(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig7(scale=SCALE, resolution=RESOLUTION),
        rounds=1, iterations=1)
    record_result("fig7_running_time", result.render())

    speedups = {row.benchmark: row.measured for row in result.rows}

    # Nothing regresses; TVLA is the headline win by a wide margin.
    assert all(value >= 0.97 for value in speedups.values())
    assert speedups["tvla"] == max(speedups.values())
    assert 1.7 <= speedups["tvla"] <= 3.2        # paper: ~2.58x
    assert 1.03 <= speedups["soot"] <= 1.35      # paper: 1.11x
    assert 1.02 <= speedups["pmd"] <= 1.35       # paper: 1.083x

    # PMD's mechanism: fewer GC cycles at the same footprint.
    base_cycles, optimized_cycles = result.gc_cycles["pmd"]
    gc_reduction = 1.0 - optimized_cycles / base_cycles
    assert 0.08 <= gc_reduction <= 0.30          # paper: 16%

    for name, value in speedups.items():
        benchmark.extra_info[f"{name}_speedup"] = round(value, 3)
    benchmark.extra_info["pmd_gc_reduction"] = round(gc_reduction, 3)
    benchmark.extra_info["pmd_gc_reduction_paper"] = PAPER_PMD_GC_REDUCTION
