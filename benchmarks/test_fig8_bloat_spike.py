"""E-Fig8: bloat's footprint spike of empty LinkedLists.

Paper shape (Fig. 8): the collection fraction spikes in the middle of the
run and falls back after; at the spike, around 25% of the heap is
LinkedList$Entry objects heading *empty* lists.
"""

from repro.analysis.experiments import run_fig8

from conftest import SCALE


def test_fig8_bloat_collection_spike(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig8(scale=SCALE), rounds=1, iterations=1)
    record_result("fig8_bloat_spike", result.render())

    fractions = [row[1] for row in result.series]
    spike_index = result.spike_cycle - 1

    # The spike is an interior maximum: the series falls back after it.
    assert result.spike_fraction == max(fractions)
    assert fractions[-1] < 0.75 * result.spike_fraction

    # At the spike, collections dominate, and the sentinel entries of the
    # never-used lists are roughly the paper's quarter of the heap.
    assert result.spike_fraction > 0.45
    assert 0.10 <= result.entry_fraction_at_spike <= 0.45

    benchmark.extra_info["spike_cycle"] = result.spike_cycle
    benchmark.extra_info["entry_fraction"] = round(
        result.entry_fraction_at_spike, 3)
