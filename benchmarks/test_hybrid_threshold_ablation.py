"""E-Hybrid (section 2.3): the SizeAdaptingMap conversion threshold.

Paper finding: picking the bound is "very tricky".  For TVLA, converting
at 16 gave a relatively low footprint with ~8% time degradation;
converting at 13 (below the maps' sizes) "provides the same footprint as
the original implementation"; bounds above 16 bought nothing more.  Our
synthetic TVLA's maps hold 5 entries, so the crossover sits at 5: the
assertions pin the *shape* -- thresholds below the map size behave like
HashMap, thresholds above behave like the ArrayMap fix at a modest time
premium, and raising the bound further changes nothing.
"""

from repro.analysis.experiments import run_hybrid_ablation

from conftest import SCALE


def test_hybrid_conversion_threshold_sweep(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_hybrid_ablation(scale=SCALE,
                                    thresholds=(2, 4, 8, 16, 32)),
        rounds=1, iterations=1)
    record_result("hybrid_threshold_ablation", result.render())

    original_peak = result.peak("HashMap (original)")
    fixed_peak = result.peak("ArrayMap (offline fix)")
    assert fixed_peak < 0.7 * original_peak

    # Below the maps' size (5): every map converts to HashMap -- the
    # footprint lands back near the original (paper's threshold-13
    # observation; slightly under because the converted tables are sized
    # for their contents).
    assert result.peak("SizeAdapting@2") >= 0.85 * original_peak
    assert result.peak("SizeAdapting@4") >= 0.85 * original_peak
    assert result.peak("SizeAdapting@2") >= 1.5 * fixed_peak

    # Above the maps' size: array-shaped footprint near the offline fix
    # (paper's threshold-16 observation)...
    for threshold in (8, 16, 32):
        peak = result.peak(f"SizeAdapting@{threshold}")
        assert peak <= 1.25 * fixed_peak
        assert peak < 0.75 * original_peak

    # ... at a modest time premium over the pure fix (paper: ~8%).
    assert (result.ticks("SizeAdapting@8")
            <= 1.30 * result.ticks("ArrayMap (offline fix)"))
    assert (result.ticks("SizeAdapting@8")
            < result.ticks("SizeAdapting@4"))

    # Raising the bound past the crossover buys nothing (paper: ">16
    # does not provide a smaller footprint").
    assert (abs(result.peak("SizeAdapting@32")
                - result.peak("SizeAdapting@16"))
            <= 0.02 * original_peak)

    benchmark.extra_info["original_peak"] = original_peak
    benchmark.extra_info["fixed_peak"] = fixed_peak
