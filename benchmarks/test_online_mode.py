"""E-Online (section 5.4): fully automatic replacement at runtime.

Paper shape: "for most benchmarks, the overall slowdown was noticeable,
but not prohibitive"; TVLA ~35% slower with the space saving of the
manual fix; PMD ~6x slower (massive rapid allocation of short-lived
collections amplifies context-capture cost).
"""

from repro.analysis.experiments import PAPER_ONLINE, run_online

from conftest import SCALE


def test_online_fully_automatic_mode(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_online(scale=SCALE), rounds=1, iterations=1)
    record_result("online_mode", result.render())

    slowdowns = {row.benchmark: row.measured for row in result.rows
                 if row.metric == "online slowdown"}
    savings = {row.benchmark: row.measured for row in result.rows
               if row.metric == "online peak saving"}

    # Everything pays something; PMD is the outlier by a wide margin.
    assert all(value >= 1.0 for value in slowdowns.values())
    assert slowdowns["pmd"] == max(slowdowns.values())
    assert slowdowns["pmd"] >= 3.5                 # paper: ~6x
    assert 1.1 <= slowdowns["tvla"] <= 1.9         # paper: 1.35x
    assert slowdowns["pmd"] >= 2.5 * slowdowns["tvla"]
    # The others: noticeable, not prohibitive.
    for name in ("soot", "findbugs", "fop", "bloat"):
        assert slowdowns[name] < 0.75 * slowdowns["pmd"]

    # TVLA's online space saving approaches the offline fix (paper:
    # "identical to the one we got with the manual modification").
    assert savings["tvla"] >= 0.30
    # PMD's transient churn gives the online mode nothing to shrink.
    assert savings["pmd"] <= 0.05

    for name, value in slowdowns.items():
        benchmark.extra_info[f"{name}_slowdown"] = round(value, 3)
        if name in PAPER_ONLINE:
            benchmark.extra_info[f"{name}_paper"] = PAPER_ONLINE[name]
