"""Instrumentation overhead (sections 4.2-4.4).

Paper claims being checked:

* "the statistics are gathered during normal collection operation, no
  additional performance overhead is incurred" -- the VM-only posture
  must be free;
* sampling "further mitigate[s] the cost of obtaining the allocation
  context";
* full per-allocation capture is exactly what makes the fully automatic
  mode expensive, so its overhead must mirror the section 5.4 spread
  (modest for op-dense TVLA, prohibitive for allocation-dense PMD).
"""

from repro.analysis.experiments import run_profiling_overhead
from repro.workloads import PmdWorkload, TvlaWorkload

from conftest import SCALE


def test_profiling_overhead_postures(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_profiling_overhead(scale=SCALE,
                                       benchmarks=(TvlaWorkload,
                                                   PmdWorkload)),
        rounds=1, iterations=1)
    record_result("profiling_overhead", result.render())

    # VM-only statistics ride the GC: zero overhead, to the tick.
    assert result.overhead("tvla", "vm-only overhead") == 0.0
    assert result.overhead("pmd", "vm-only overhead") == 0.0

    # Sampling cuts the full cost by a large factor on both benchmarks.
    for name in ("tvla", "pmd"):
        full = result.overhead(name, "full-profiling overhead")
        sampled = result.overhead(name, "sampled (1/8) overhead")
        assert sampled < 0.25 * full

    # The section 5.4 spread: PMD's capture bill dwarfs TVLA's.
    assert (result.overhead("pmd", "full-profiling overhead")
            > 4 * result.overhead("tvla", "full-profiling overhead"))
    assert result.overhead("tvla", "full-profiling overhead") < 0.6
