"""E-Tab2: the built-in rule set of Table 2, end to end.

Runs one micro-workload per rule through the full pipeline (instrumented
VM -> GC statistics -> report -> engine) and checks that exactly the
intended fix comes back; the benchmark times the whole sweep, which
doubles as a rule-engine throughput measure.
"""

from repro.collections.wrappers import (ChameleonList, ChameleonMap,
                                        ChameleonSet)
from repro.profiler.profiler import SemanticProfiler
from repro.profiler.report import build_report
from repro.rules.ast import ActionKind
from repro.rules.engine import RuleEngine
from repro.runtime.context import ContextKey
from repro.runtime.vm import RuntimeEnvironment


def _small_maps(vm, key):
    for _ in range(8):
        mapping = ChameleonMap(vm, context=key)
        mapping.pin()
        for k in range(5):
            mapping.put(k, k)


def _small_sets(vm, key):
    for _ in range(8):
        s = ChameleonSet(vm, context=key)
        s.pin()
        for k in range(4):
            s.add(k)


def _empty_linked_lists(vm, key):
    for _ in range(16):
        lst = ChameleonList(vm, src_type="LinkedList", context=key)
        lst.pin()
        lst.is_empty()


def _never_used(vm, key):
    for _ in range(16):
        ChameleonMap(vm, context=key).pin()


def _contains_heavy(vm, key):
    for _ in range(4):
        lst = ChameleonList(vm, context=key)
        lst.pin()
        for i in range(40):
            lst.add(i)
        for i in range(40):
            lst.contains(i)


def _random_access_linked(vm, key):
    for _ in range(4):
        lst = ChameleonList(vm, src_type="LinkedList", context=key)
        lst.pin()
        for i in range(30):
            lst.add(i)
        for i in range(30):
            lst.get(i)


def _singletons(vm, key):
    for _ in range(8):
        lst = ChameleonList(vm, context=key)
        lst.pin()
        lst.add("one")
        lst.get(0)


def _under_capacity(vm, key):
    for _ in range(8):
        lst = ChameleonList(vm, context=key)
        lst.pin()
        for i in range(40):
            lst.add(i)


def _oversized(vm, key):
    for _ in range(40):
        lst = ChameleonList(vm, context=key, initial_capacity=50)
        lst.pin()
        lst.add(1)
        lst.add(2)


EXPECTED = [
    ("small-map", _small_maps, ActionKind.REPLACE, "ArrayMap"),
    ("small-set", _small_sets, ActionKind.REPLACE, "ArraySet"),
    ("empty-linked-list", _empty_linked_lists, ActionKind.REPLACE,
     "LazyArrayList"),
    ("redundant-collection", _never_used, ActionKind.AVOID_ALLOCATION,
     None),
    ("contains-heavy-list", _contains_heavy, ActionKind.REPLACE,
     "LinkedHashSet"),
    ("random-access-linked-list", _random_access_linked,
     ActionKind.REPLACE, "ArrayList"),
    ("singleton-list", _singletons, ActionKind.REPLACE, "SingletonList"),
    ("incremental-resizing", _under_capacity, ActionKind.SET_CAPACITY,
     None),
    ("oversized-capacity", _oversized, ActionKind.SET_CAPACITY, None),
]


def _sweep():
    outcomes = []
    for name, populate, kind, impl in EXPECTED:
        vm = RuntimeEnvironment(gc_threshold_bytes=None,
                                profiler=SemanticProfiler())
        key = ContextKey.synthetic(name, "bench")
        populate(vm, key)
        vm.collect()
        vm.finish()
        report = build_report(vm.profiler, vm.timeline, vm.contexts)
        engine = RuleEngine(min_potential_bytes=64)
        profile = report.context(vm.contexts.intern(key))
        suggestion = engine.evaluate_context(profile)
        outcomes.append((name, kind, impl, suggestion))
    return outcomes


def test_table2_rules_fire(benchmark, record_result):
    outcomes = benchmark(_sweep)
    lines = ["Table 2: built-in rules on their trigger workloads", "-" * 50]
    for name, kind, impl, suggestion in outcomes:
        assert suggestion is not None, f"rule {name} did not fire"
        assert suggestion.action.kind is kind, (
            f"{name}: got {suggestion.action.kind}")
        if impl is not None:
            assert suggestion.action.impl_name == impl
        lines.append(f"{name:28s} -> {suggestion.action.render()}")
    record_result("table2_rules", "\n".join(lines))
