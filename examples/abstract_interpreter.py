#!/usr/bin/env python3
"""The paper's running example: optimising a TVLA-like abstract
interpreter (section 2.1).

Reproduces the walkthrough: first the collection-aware GC's view of the
heap (the Fig. 2 curves), then the ranked allocation contexts with their
operation distributions (Fig. 3), then the succinct suggestions, and
finally the effect of applying them on the minimal heap and running time
(the TVLA rows of Figs. 6 and 7: ~54% smaller heap, ~2.5x faster).

Run with::

    python examples/abstract_interpreter.py
"""

from repro import Chameleon, ToolConfig
from repro.analysis.minheap import measure_min_heap
from repro.workloads import TvlaWorkload

SCALE = 0.3  # bump for a longer, paper-scale run


def main() -> None:
    tool = Chameleon(ToolConfig(gc_threshold_bytes=64 * 1024))
    workload = TvlaWorkload(scale=SCALE)

    print("=" * 72)
    print("Collection-aware GC: % of live data in collections per cycle")
    print("(the Fig. 2 view -- live / used / core)")
    print("=" * 72)
    session = tool.profile(workload)
    print(session.report.render_fractions())

    print()
    print("=" * 72)
    print("Top allocation contexts (the Fig. 3 view)")
    print("=" * 72)
    print(session.report.render_top_contexts(4))

    print()
    print("=" * 72)
    print("Suggestions")
    print("=" * 72)
    for rank, suggestion in enumerate(session.suggestions, start=1):
        print(suggestion.render(rank))

    print()
    print("=" * 72)
    print("Applying the suggestions (the Fig. 6 / Fig. 7 measurement)")
    print("=" * 72)
    policy = tool.build_policy(session.suggestions)
    base = measure_min_heap(tool, workload, resolution=8192)
    optimized = measure_min_heap(tool, workload, policy=policy,
                                 resolution=8192)
    saved = 1 - optimized.min_heap_bytes / base.min_heap_bytes
    print(f"minimal heap: {base.min_heap_bytes} -> "
          f"{optimized.min_heap_bytes} bytes ({saved:.1%} saved; "
          f"paper: 53.95%)")

    _, baseline = tool.plain_run(workload, heap_limit=base.min_heap_bytes)
    _, fast = tool.plain_run(workload, policy=policy,
                             heap_limit=base.min_heap_bytes)
    print(f"running time at the original minimal heap: "
          f"{baseline.ticks} -> {fast.ticks} ticks "
          f"({baseline.ticks / fast.ticks:.2f}x; paper: ~2.5x)")
    print(f"GC cycles: {baseline.gc_cycles} -> {fast.gc_cycles}")


if __name__ == "__main__":
    main()
