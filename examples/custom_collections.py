#!/usr/bin/env python3
"""Extending Chameleon: custom implementations, custom rules, custom
semantic maps.

The paper's tool is parametric in all three directions (sections 3.2,
3.3, 4.2): users can register their own collection implementations, write
their own selection rules in the Fig. 4 language, and describe custom
(non-library) collection classes to the collection-aware GC with semantic
maps.  This example does all three:

1. registers a ``CompactIntList`` implementation (an ``IntArray`` variant
   with a tighter growth curve);
2. writes a rule in the DSL that selects it for integer-heavy lists;
3. registers a custom semantic map for an HSQLDB-style row store so the
   GC can attribute its bytes (the paper's section 5.1 remark).

Run with::

    python examples/custom_collections.py
"""

from repro import Chameleon, RuntimeEnvironment, SemanticProfiler
from repro.collections import ChameleonList, CollectionKind, default_registry
from repro.collections.lists import IntArrayImpl
from repro.memory.semantic_maps import FootprintTriple, SemanticMap
from repro.profiler.report import build_report
from repro.rules.builtin import builtin_rules
from repro.rules.engine import RuleEngine
from repro.rules.suggestions import RuleCategory
from repro.rules.builtin import RuleSpec


# ---------------------------------------------------------------------------
# 1. A custom implementation
# ---------------------------------------------------------------------------
class CompactIntListImpl(IntArrayImpl):
    """An ``int[]`` list that grows by 25% instead of 50%."""

    IMPL_NAME = "CompactIntList"
    DEFAULT_CAPACITY = 4

    def _ensure_capacity(self, needed: int) -> None:
        if needed > self.capacity:
            self._grow_to(max((self.capacity * 5) // 4 + 1, needed))


# ---------------------------------------------------------------------------
# 3. A custom semantic map for a non-library collection class
# ---------------------------------------------------------------------------
class RowStoreSemanticMap(SemanticMap):
    """Describes an HSQLDB-style row store to the collector: header
    object + slot array, rows as elements."""

    def matches(self, obj):
        return obj.type_name == "RowStore"

    def footprint(self, obj):
        heap = obj.payload  # the SimHeap, stashed at allocation below
        slots = next(heap.get(ref) for ref in obj.refs)
        rows = len(slots.refs)
        live = obj.size + slots.size
        used = obj.size + min(
            slots.size,
            heap.model.align(heap.model.array_header_bytes
                             + rows * heap.model.pointer_bytes))
        core = heap.model.core_size(rows) if rows else 0
        return FootprintTriple(live, used, min(core, used))

    def internal_ids(self, obj):
        return iter(obj.refs.keys())

    def element_count(self, obj):
        heap = obj.payload
        slots = next(heap.get(ref) for ref in obj.refs)
        return len(slots.refs)


def main() -> None:
    registry = default_registry()
    if not registry.supports("CompactIntList", CollectionKind.LIST):
        registry.register("CompactIntList", CompactIntListImpl,
                          [CollectionKind.LIST])

    # ------------------------------------------------------------------
    # 2. A custom rule in the Fig. 4 language
    # ------------------------------------------------------------------
    custom_rule = RuleSpec.parse(
        "int-heavy-list",
        "ArrayList : #add > INT_HEAVY & maxSize > 8 -> CompactIntList",
        RuleCategory.SPACE,
        "integer-only list: primitive storage avoids boxing entirely",
        requires_stable_size=True, space_gated=True)
    rules = [custom_rule] + builtin_rules()
    engine = RuleEngine(rules=rules, constants={"INT_HEAVY": 8.0},
                        min_potential_bytes=64)

    vm = RuntimeEnvironment(profiler=SemanticProfiler())

    # An integer-heavy application context.
    def sensor_buffer():
        return ChameleonList(vm, src_type="ArrayList")

    for _ in range(20):
        buffer = sensor_buffer()
        buffer.pin()
        for sample in range(32):
            buffer.add(sample)

    # An HSQLDB-style custom row store, visible to the GC only through
    # the registered semantic map.
    vm.semantic_maps.register("RowStore", RowStoreSemanticMap())
    store = vm.allocate("RowStore",
                        vm.model.object_size(ref_fields=1, int_fields=2),
                        payload=vm.heap)
    vm.add_root(store)
    slots = vm.allocate("Object[]", vm.model.ref_array_size(64))
    store.add_ref(slots.obj_id)
    for _ in range(20):
        row = vm.allocate("Row", vm.model.object_size(ref_fields=3))
        slots.add_ref(row.obj_id)

    vm.finish()
    report = build_report(vm.profiler, vm.timeline, vm.contexts)

    print("=" * 72)
    print("Custom rule in action")
    print("=" * 72)
    suggestions = engine.evaluate(report)
    for rank, suggestion in enumerate(suggestions, start=1):
        print(suggestion.render(rank))
    assert any(s.action.impl_name == "CompactIntList" for s in suggestions)

    print()
    print("=" * 72)
    print("Custom semantic map: the GC now attributes the row store")
    print("=" * 72)
    last_cycle = vm.timeline.cycles[-1]
    row_store_bytes = last_cycle.type_distribution.get("RowStore", 0)
    print(f"RowStore ADT live bytes (per the custom map): "
          f"{row_store_bytes}")
    print(f"total collection live bytes this cycle:       "
          f"{last_cycle.collection_live}")
    assert row_store_bytes > 0

    print("\nBoth extensions worked.")


if __name__ == "__main__":
    main()
