#!/usr/bin/env python3
"""Fully automatic mode: replacement decisions made while the program
runs (section 3.3.2 / 5.4).

The program below changes behaviour mid-run.  The online tool observes
the first collections at each allocation context, commits to an
implementation, and (with the retrofit extension) converts the
already-live instances through their wrappers.  The run's own footprint
shrinks -- no profiling run, no re-run, no source edit.

Run with::

    python examples/online_adaptation.py
"""

from repro import ToolConfig
from repro.collections import ChameleonMap
from repro.core.online import OnlineChameleon
from repro.workloads.base import Workload


class SessionServer(Workload):
    """A long-running 'server' keeping per-session attribute maps.

    Every session allocates a ``HashMap`` for a handful of attributes --
    the classic small-stable-map shape.  Sessions accumulate, so the
    footprint is dominated by this one context.
    """

    name = "session-server"

    def run(self, vm):
        # One implementation-name timeline per run (the harness runs the
        # workload twice: online, then an uninstrumented baseline).
        self.runs = getattr(self, "runs", [])
        self.impl_timeline = []
        self.runs.append(self.impl_timeline)
        registry = vm.allocate_data("SessionRegistry", ref_fields=2)
        vm.add_root(registry)

        def open_session():
            return ChameleonMap(vm, src_type="HashMap")

        sessions = []
        for request in range(self.scaled(400)):
            session = open_session()
            registry.add_ref(session.heap_obj.obj_id)
            session.put("user", request)
            session.put("token", request * 31)
            session.put("expiry", request + 3600)
            sessions.append(session)
            self.impl_timeline.append(session.impl.IMPL_NAME)
            # A few expired sessions get dropped along the way, giving
            # the online profiler complete usage profiles to learn from.
            if request % 16 == 15:
                victim = sessions.pop(0)
                registry.remove_ref(victim.heap_obj.obj_id)
            for _ in range(2):
                session.get("user")


def main() -> None:
    # A denser GC schedule means expired sessions are noticed (and
    # their usage profiles aggregated) promptly.
    config = ToolConfig(online_decide_after=6, online_retrofit_live=True,
                        gc_threshold_bytes=24 * 1024)
    online = OnlineChameleon(config)
    workload = SessionServer()

    print("Running fully automatically (decide-after=6, retrofit on)...")
    result = online.run(workload)

    online_timeline = workload.runs[0]
    first, last = online_timeline[0], online_timeline[-1]
    switch_at = next(
        (i for i, name in enumerate(online_timeline)
         if name != first), None)

    print()
    print(f"first allocation backed by : {first}")
    print(f"last allocation backed by  : {last}")
    print(f"decision took effect at allocation #{switch_at}")
    print(f"live instances retrofitted : {result.policy.retrofitted}")
    print()
    print(result.render())
    print()
    print("The cost side (section 5.4): every allocation paid for a stack")
    print(f"walk, making the run {result.slowdown:.2f}x slower than an")
    print("uninstrumented one -- worth it here, prohibitive for")
    print("allocation-storms like PMD (see benchmarks/test_online_mode.py).")


if __name__ == "__main__":
    main()
