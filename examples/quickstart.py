#!/usr/bin/env python3
"""Quickstart: profile a program, read the suggestions, apply them.

This walks the paper's methodology (section 5.2) end to end on a small
synthetic program:

1. write an application against the wrapped collection API;
2. run it under the semantic profiler (``Chameleon.profile``);
3. read the ranked allocation contexts and rule suggestions;
4. apply the suggestions as a replacement policy and re-run, comparing
   peak footprint and virtual running time.

Run with::

    python examples/quickstart.py
"""

from repro import Chameleon
from repro.collections import ChameleonList, ChameleonMap
from repro.workloads.base import Workload


class AddressBookApp(Workload):
    """A toy application with two collection-usage mistakes baked in:

    * every contact stores its handful of attributes in a ``HashMap``
      (small and stable: an ``ArrayMap`` would be far smaller);
    * the per-day change-log lists grow far past the default capacity
      (incremental resizing: the initial capacity should be set).
    """

    name = "address-book"

    def _make_attributes(self, vm):
        # One allocation context: the contact-attribute factory.
        return ChameleonMap(vm, src_type="HashMap")

    def run(self, vm):
        directory = vm.allocate_data("Directory", ref_fields=2)
        vm.add_root(directory)

        contacts = []
        for contact_id in range(300):
            attributes = self._make_attributes(vm)
            directory.add_ref(attributes.heap_obj.obj_id)
            attributes.put("name", contact_id)
            attributes.put("email", contact_id * 7)
            attributes.put("phone", contact_id * 13)
            contacts.append(attributes)

        for day in range(5):
            change_log = ChameleonList(vm, src_type="ArrayList")
            change_log.pin()
            for event in range(120):
                change_log.add(event)

        # Lookup traffic: the app is read-dominated.
        for attributes in contacts:
            for _ in range(3):
                attributes.get("name")
                attributes.get("email")


def main() -> None:
    tool = Chameleon()
    app = AddressBookApp()

    print("=" * 72)
    print("Step 1-2: semantic profiling")
    print("=" * 72)
    session = tool.profile(app)
    print(session.report.render_top_contexts(3))

    print()
    print("=" * 72)
    print("Step 3: suggestions from the rule engine")
    print("=" * 72)
    for rank, suggestion in enumerate(session.suggestions, start=1):
        print(suggestion.render(rank))

    print()
    print("=" * 72)
    print("Step 4: apply and re-run")
    print("=" * 72)
    result = tool.optimize(app)
    print(result.policy.render())
    print()
    print(result.render())

    saved = result.peak_reduction
    print(f"\npeak footprint saved: {saved:.1%}; "
          f"speedup: {result.speedup:.2f}x")


if __name__ == "__main__":
    main()
