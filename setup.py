"""Legacy setup shim: enables `pip install -e . --no-use-pep517` on
offline machines that lack the `wheel` package."""

from setuptools import setup

setup()
