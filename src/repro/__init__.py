"""repro: a reproduction of "Chameleon: Adaptive Selection of Collections"
(Shacham, Vechev, Yahav -- PLDI 2009).

The package simulates the paper's full stack in pure Python:

* :mod:`repro.memory` -- a byte-accurate simulated heap with a
  collection-aware mark-sweep GC driven by semantic ADT maps;
* :mod:`repro.runtime` -- the VM: virtual clock/cost model, allocation
  contexts, sampling;
* :mod:`repro.collections` -- interchangeable List/Set/Map implementations
  behind swappable wrappers;
* :mod:`repro.profiler` -- the semantic profiler (Table 1 statistics);
* :mod:`repro.rules` -- the Fig. 4 selection-rule language and the Table 2
  rule set;
* :mod:`repro.core` -- the Chameleon tool itself, offline and online;
* :mod:`repro.workloads` -- synthetic stand-ins for the paper's benchmarks;
* :mod:`repro.analysis` -- harnesses regenerating every table and figure.

Quickstart::

    from repro import Chameleon
    from repro.workloads.tvla import TvlaWorkload

    result = Chameleon().optimize(TvlaWorkload())
    print(result.render())
"""

from repro.collections.wrappers import (ChameleonList, ChameleonMap,
                                        ChameleonSet)
from repro.collections.registry import default_registry
from repro.core.apply import ReplacementMap
from repro.core.chameleon import Chameleon, OptimizationResult, RunMetrics
from repro.core.config import ToolConfig
from repro.core.online import OnlineChameleon
from repro.memory.layout import MemoryModel
from repro.profiler.profiler import SemanticProfiler
from repro.rules.builtin import BUILTIN_RULES, DEFAULT_CONSTANTS
from repro.rules.engine import RuleEngine
from repro.rules.parser import parse_rule
from repro.runtime.vm import ImplementationChoice, RuntimeEnvironment

__version__ = "1.0.0"

__all__ = [
    "ChameleonList", "ChameleonMap", "ChameleonSet", "default_registry",
    "ReplacementMap", "Chameleon", "OptimizationResult", "RunMetrics",
    "ToolConfig", "OnlineChameleon", "MemoryModel", "SemanticProfiler",
    "BUILTIN_RULES", "DEFAULT_CONSTANTS", "RuleEngine", "parse_rule",
    "ImplementationChoice", "RuntimeEnvironment", "__version__",
]
