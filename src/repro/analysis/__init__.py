"""Experiment harness: minimal-heap search, per-figure runners, the
process-pool experiment scheduler, and the cross-run experiment index
(run directories + ``runs.sqlite`` + perf trend gating)."""

from repro.analysis.heapdump import (HistogramRow, heap_histogram,
                                     render_histogram)
from repro.analysis.index import (GateDivergenceError, GateReport, GateRow,
                                  RunDirectory, RunIndex, SessionStore,
                                  gate_document)
from repro.analysis.minheap import MinHeapResult, find_min_heap, measure_min_heap
from repro.analysis.scheduler import Job, JobError, JobGraph, Scheduler
from repro.analysis.tables import ExperimentRow, render_series, render_table

__all__ = [
    "HistogramRow", "heap_histogram", "render_histogram",
    "GateDivergenceError", "GateReport", "GateRow",
    "RunDirectory", "RunIndex", "SessionStore", "gate_document",
    "MinHeapResult", "find_min_heap", "measure_min_heap",
    "Job", "JobError", "JobGraph", "Scheduler",
    "ExperimentRow", "render_series", "render_table",
]
