"""Experiment harness: minimal-heap search and per-figure runners."""

from repro.analysis.heapdump import (HistogramRow, heap_histogram,
                                     render_histogram)
from repro.analysis.minheap import MinHeapResult, find_min_heap, measure_min_heap
from repro.analysis.tables import ExperimentRow, render_series, render_table

__all__ = [
    "HistogramRow", "heap_histogram", "render_histogram",
    "MinHeapResult", "find_min_heap", "measure_min_heap",
    "ExperimentRow", "render_series", "render_table",
]
