"""Experiment runners: one per table/figure of the paper's evaluation.

Each ``run_*`` function regenerates one artifact (see the experiment index
in DESIGN.md) and returns structured results plus a rendered text block.
The benchmark suite under ``benchmarks/`` drives these runners and asserts
the *shape* targets -- who wins, by roughly what factor, where crossovers
fall -- against the paper's reported numbers, which are recorded here in
:data:`PAPER_FIG6` / :data:`PAPER_FIG7` / :data:`PAPER_ONLINE`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.minheap import measure_min_heap
from repro.analysis.scheduler import JobGraph, Scheduler
from repro.analysis.tables import (ExperimentRow,
                                   render_fraction_chart, render_series,
                                   render_table)
from repro.core.apply import ReplacementMap
from repro.core.chameleon import Chameleon, RunMetrics, SessionCache
from repro.core.config import ToolConfig
from repro.core.online import OnlineChameleon
from repro.runtime.vm import ImplementationChoice
from repro.workloads import (BENCHMARKS, BloatWorkload, TvlaWorkload,
                             Workload)

__all__ = [
    "PAPER_FIG6", "PAPER_FIG7", "PAPER_ONLINE",
    "Fig6Result", "Fig7Result", "OnlineResult", "HybridResult",
    "run_fig2", "run_fig3", "run_fig6", "run_fig7", "run_fig8",
    "run_online", "run_hybrid_ablation", "run_profiling_overhead",
    "run_all", "OverheadResult", "get_session_cache",
    "reset_session_cache", "load_session_cache", "spill_session_cache",
    "attach_session_store", "warm_worker",
]

# ---------------------------------------------------------------------------
# Paper-reported reference values (section 5.3 text; Fig. 6/7 bars).
# ---------------------------------------------------------------------------
PAPER_FIG6: Dict[str, Optional[float]] = {
    # Minimal-heap reduction, as a fraction of the original minimal heap.
    "bloat": 0.56,       # with the manual lazy-allocation fix
    "tvla": 0.5395,
    "findbugs": 0.1379,
    "fop": 0.0769,
    "soot": 0.06,
    "pmd": 0.0,
}

PAPER_FIG6_AUTO: Dict[str, Optional[float]] = {
    # Tool-only (automatically applicable) reductions, where the text
    # distinguishes them: bloat's LazyArrayList fix saves "more than 20%".
    "bloat": 0.20,
}

PAPER_FIG7: Dict[str, Optional[float]] = {
    # Running-time speedup at the original minimal heap (baseline/optimized).
    "tvla": 49.0 / 19.0,   # "from 49 to 19 minutes"
    "soot": 1.11,          # "11% improvement in the running time"
    "pmd": 1.083,          # "runtime improvement of 8.33%"
    "bloat": None,         # bars only
    "fop": None,
    "findbugs": None,
}

PAPER_ONLINE: Dict[str, Optional[float]] = {
    # Fully automatic mode slowdown vs the uninstrumented default run.
    "tvla": 1.35,          # "a slowdown of 35%"
    "pmd": 6.0,            # "prohibitive (6x slowdown)"
}

PAPER_PMD_GC_REDUCTION = 0.16   # "the number of GCs reduced by 16%"
PAPER_BLOAT_ENTRY_FRACTION = 0.25  # "around 25% of the heap ... Entry"


# ---------------------------------------------------------------------------
# Profiling-session cache shared by every runner in this process.
#
# Fig. 3, Fig. 6, Fig. 7 and the hybrid ablation all profile the same
# workloads under the same configuration; the cache makes each distinct
# (workload, config) profile happen once per process.  Scheduler workers
# each hold their own copy of this module, so at jobs>1 the cache works
# per worker -- results are unchanged either way because profiled runs
# are deterministic.
# ---------------------------------------------------------------------------
_SESSION_CACHE = SessionCache()


def get_session_cache() -> SessionCache:
    """This process's experiment session cache (hit/miss counters live
    here; the CLI spills and reloads it for cross-invocation reuse)."""
    return _SESSION_CACHE


def reset_session_cache() -> None:
    """Drop every cached session and zero the counters."""
    _SESSION_CACHE.clear()


def _spill_is_store(path: str) -> bool:
    """Whether a ``--session-cache`` path means the content-addressed
    per-entry store (a directory) rather than the legacy single pickle.

    An existing path decides by what it is; a fresh path defaults to the
    store unless it carries an explicit pickle suffix, so old
    ``sessions.pkl`` invocations keep their format.
    """
    if os.path.isdir(path):
        return True
    if os.path.isfile(path):
        return False
    if path.endswith(("/", os.sep)):
        return True
    return not path.endswith((".pkl", ".pickle"))


def load_session_cache(path: str) -> int:
    """Reload spilled sessions into this process's cache from ``path``
    -- a content-addressed :class:`~repro.analysis.index.SessionStore`
    directory (the default, e.g. ``benchmarks/runs/store``) or a legacy
    ``*.pkl`` single-pickle spill.  Returns entries added; corrupt
    spills load as empty with a warning."""
    if _spill_is_store(path):
        from repro.analysis.index import SessionStore

        return SessionStore(path).load_cache(_SESSION_CACHE)
    return _SESSION_CACHE.load(path)


def spill_session_cache(path: str) -> int:
    """Spill this process's session cache to ``path`` (store directory
    or legacy ``*.pkl``; see :func:`load_session_cache`).  Returns the
    store's newly written entry count, or the legacy spill's total."""
    if _spill_is_store(path):
        from repro.analysis.index import SessionStore

        return SessionStore(path).save_cache(_SESSION_CACHE)
    return _SESSION_CACHE.save(path)


def attach_session_store(path: Optional[str]) -> None:
    """Attach (or with ``None`` detach) a content-addressed
    :class:`~repro.analysis.index.SessionStore` behind this process's
    session cache: misses read through it, new sessions write through.

    Attaching the same directory in the parent and in every scheduler
    worker is what shares profiling sessions across the pool -- each
    session crosses the process boundary once, as one content-addressed
    file, instead of being re-profiled (or re-pickled wholesale) per
    worker."""
    if path is None:
        _SESSION_CACHE.detach_store()
        return
    from repro.analysis.index import SessionStore

    _SESSION_CACHE.attach_store(SessionStore(path))


def warm_worker(store_path: Optional[str] = None) -> None:
    """Scheduler-pool warmup hook (top-level, hence picklable for
    spawn-style pools): run once per worker at pool creation.

    Attaches the shared session store and touches the heavy import
    chains (workloads, min-heap search) so the first real job pays for
    work, not module initialisation."""
    attach_session_store(store_path)
    import repro.analysis.minheap  # noqa: F401
    import repro.workloads  # noqa: F401


def _tool(config: Optional[ToolConfig] = None) -> Chameleon:
    return Chameleon(config or ToolConfig(), session_cache=_SESSION_CACHE)


# ---------------------------------------------------------------------------
# Fig. 2 -- collection live/used/core fractions per GC cycle (TVLA)
# ---------------------------------------------------------------------------
@dataclass
class Fig2Result:
    """Per-cycle (live%, used%, core%) series for TVLA."""

    series: List[Tuple[int, float, float, float]]
    peak_live_fraction: float
    peak_used_fraction: float

    def render(self) -> str:
        return (render_series(
            "Fig. 2: TVLA collection fractions per GC cycle",
            ("cycle", "live", "used", "core"), self.series)
            + "\n\n" + render_fraction_chart(self.series))


def run_fig2(scale: float = 0.5,
             gc_threshold_bytes: int = 64 * 1024) -> Fig2Result:
    """Regenerate the Fig. 2 series from a profiled TVLA run.

    A smaller GC threshold gives a denser cycle series, like the
    continuous sampling of the collection-aware GC in the paper.
    """
    config = ToolConfig(gc_threshold_bytes=gc_threshold_bytes)
    session = _tool(config).profile(TvlaWorkload(scale=scale))
    timeline = session.report.timeline
    series = timeline.fractions_series()
    peak_live = max((row[1] for row in series), default=0.0)
    peak_used = max((row[2] for row in series), default=0.0)
    return Fig2Result(series=series, peak_live_fraction=peak_live,
                      peak_used_fraction=peak_used)


# ---------------------------------------------------------------------------
# Fig. 3 -- top allocation contexts with operation distributions (TVLA)
# ---------------------------------------------------------------------------
@dataclass
class Fig3Result:
    """Ranked TVLA contexts with potential and operation mix."""

    rendered: str
    top: list

    def render(self) -> str:
        return self.rendered


def run_fig3(scale: float = 0.5, top: int = 4) -> Fig3Result:
    """Regenerate the Fig. 3 ranked-context summary for TVLA."""
    session = _tool().profile(TvlaWorkload(scale=scale))
    return Fig3Result(rendered=session.report.render_top_contexts(top),
                      top=session.report.top_contexts(top))


# ---------------------------------------------------------------------------
# Fig. 6 -- minimal-heap improvement per benchmark
# ---------------------------------------------------------------------------
@dataclass
class Fig6Result:
    """Per-benchmark minimal-heap reductions (auto and with manual fixes)."""

    rows: List[ExperimentRow]
    details: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def reduction(self, benchmark: str) -> float:
        for row in self.rows:
            if row.benchmark == benchmark and row.metric == "min-heap saved":
                return row.measured
        raise KeyError(benchmark)

    def auto_reduction(self, benchmark: str) -> float:
        for row in self.rows:
            if (row.benchmark == benchmark
                    and row.metric == "min-heap saved (auto)"):
                return row.measured
        raise KeyError(benchmark)

    def render(self) -> str:
        return render_table("Fig. 6: minimal-heap size improvement",
                            self.rows)


#: The three minimal-heap searches behind each Fig. 6 bar.
_FIG6_VARIANTS = ("base", "auto", "manual")


def _fig6_variant_job(workload_class, scale: float, resolution: int,
                      variant: str) -> Dict[str, int]:
    """One Fig. 6 minimal-heap search (scheduler job).

    ``base`` searches the unmodified workload, ``auto`` profiles it and
    searches under the tool-built policy, ``manual`` searches the
    hand-fixed (``manual_fixes``) variant.
    """
    tool = _tool()
    workload = workload_class(scale=scale,
                              manual_fixes=(variant == "manual"))
    policy = None
    contexts_replaced = 0
    if variant == "auto":
        session = tool.profile(workload_class(scale=scale))
        policy = tool.build_policy(session.suggestions)
        contexts_replaced = len(policy)
    result = measure_min_heap(tool, workload, policy=policy,
                              resolution=resolution)
    return {"min_heap": result.min_heap_bytes,
            "contexts_replaced": contexts_replaced}


def run_fig6(scale: float = 0.5, resolution: int = 8192,
             scheduler: Optional[Scheduler] = None) -> Fig6Result:
    """Regenerate Fig. 6: profile, apply, and re-search the minimal heap.

    For each benchmark the *auto* row applies the tool's suggestions
    through the replacement policy; the headline row additionally uses the
    workload's ``manual_fixes`` variant where the paper applied source
    edits beyond automatic replacement (bloat's lazy allocation).

    The 3 searches x 6 benchmarks are independent jobs; a scheduler with
    ``jobs > 1`` fans them across a process pool with results merged in
    benchmark order, so the figure is identical at any parallelism.
    """
    scheduler = scheduler or Scheduler(jobs=1)
    graph = JobGraph()
    for workload_class in BENCHMARKS:
        for variant in _FIG6_VARIANTS:
            graph.add(f"fig6:{workload_class.name}:{variant}",
                      _fig6_variant_job, workload_class, scale, resolution,
                      variant)
    searches = scheduler.run(graph)
    rows: List[ExperimentRow] = []
    details: Dict[str, Dict[str, int]] = {}
    for workload_class in BENCHMARKS:
        name = workload_class.name
        base, auto, manual = (
            searches[f"fig6:{name}:{variant}"]["min_heap"]
            for variant in _FIG6_VARIANTS)
        contexts_replaced = \
            searches[f"fig6:{name}:auto"]["contexts_replaced"]
        auto_saved = 1.0 - auto / base
        manual_saved = 1.0 - manual / base
        best_saved = max(auto_saved, manual_saved)
        rows.append(ExperimentRow(
            name, "min-heap saved", PAPER_FIG6.get(name), best_saved,
            note=f"{base}B -> {min(auto, manual)}B"))
        rows.append(ExperimentRow(
            name, "min-heap saved (auto)", PAPER_FIG6_AUTO.get(name),
            auto_saved, note=f"{contexts_replaced} contexts replaced"))
        details[name] = {"base": base, "auto": auto, "manual": manual}
    return Fig6Result(rows=rows, details=details)


# ---------------------------------------------------------------------------
# Fig. 7 -- running-time improvement at the original minimal heap
# ---------------------------------------------------------------------------
@dataclass
class Fig7Result:
    """Per-benchmark speedups at the original minimal heap."""

    rows: List[ExperimentRow]
    gc_cycles: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def speedup(self, benchmark: str) -> float:
        for row in self.rows:
            if row.benchmark == benchmark:
                return row.measured
        raise KeyError(benchmark)

    def render(self) -> str:
        return render_table(
            "Fig. 7: running time at the original minimal heap", self.rows)


def _fig7_benchmark_job(workload_class, scale: float,
                        resolution: int) -> Dict[str, int]:
    """One Fig. 7 bar (scheduler job): search the original minimal heap,
    then time baseline and optimized under it."""
    tool = _tool()
    workload = workload_class(scale=scale)
    session = tool.profile(workload_class(scale=scale))
    policy = tool.build_policy(session.suggestions)
    base_heap = measure_min_heap(tool, workload,
                                 resolution=resolution).min_heap_bytes
    _, baseline = tool.plain_run(workload.fresh(), heap_limit=base_heap)
    if workload.name == "bloat":
        # The paper's bloat fix is the manual lazy allocation.
        _, optimized = tool.plain_run(
            workload_class(scale=scale, manual_fixes=True),
            heap_limit=base_heap)
    else:
        _, optimized = tool.plain_run(workload.fresh(), policy=policy,
                                      heap_limit=base_heap)
    return {"baseline_ticks": baseline.ticks,
            "optimized_ticks": optimized.ticks,
            "baseline_gcs": baseline.gc_cycles,
            "optimized_gcs": optimized.gc_cycles}


def run_fig7(scale: float = 0.5, resolution: int = 8192,
             scheduler: Optional[Scheduler] = None) -> Fig7Result:
    """Regenerate Fig. 7: both configurations run under the *original*
    minimal-heap limit (section 5.2, step 6).

    One independent job per benchmark; a scheduler with ``jobs > 1``
    runs them on the process pool, merged in benchmark order.
    """
    scheduler = scheduler or Scheduler(jobs=1)
    graph = JobGraph()
    for workload_class in BENCHMARKS:
        graph.add(f"fig7:{workload_class.name}", _fig7_benchmark_job,
                  workload_class, scale, resolution)
    measured = scheduler.run(graph)
    rows: List[ExperimentRow] = []
    cycles: Dict[str, Tuple[int, int]] = {}
    for workload_class in BENCHMARKS:
        name = workload_class.name
        bar = measured[f"fig7:{name}"]
        speedup = (bar["baseline_ticks"] / bar["optimized_ticks"]
                   if bar["optimized_ticks"] else 1.0)
        rows.append(ExperimentRow(
            name, "speedup @ original min-heap", PAPER_FIG7.get(name),
            speedup, unit="x",
            note=f"GCs {bar['baseline_gcs']} -> {bar['optimized_gcs']}"))
        cycles[name] = (bar["baseline_gcs"], bar["optimized_gcs"])
    return Fig7Result(rows=rows, gc_cycles=cycles)


# ---------------------------------------------------------------------------
# Fig. 8 -- bloat's collection spike across GC cycles
# ---------------------------------------------------------------------------
@dataclass
class Fig8Result:
    """Bloat per-cycle collection fractions with spike location."""

    series: List[Tuple[int, float, float, float]]
    spike_cycle: int
    spike_fraction: float
    entry_fraction_at_spike: float

    def render(self) -> str:
        body = (render_series(
            "Fig. 8: bloat collection fraction per GC cycle",
            ("cycle", "live", "used", "core"), self.series)
            + "\n\n" + render_fraction_chart(self.series))
        return (f"{body}\n"
                f"spike at cycle {self.spike_cycle}: "
                f"{100 * self.spike_fraction:.1f}% of live data in "
                f"collections; LinkedList$Entry = "
                f"{100 * self.entry_fraction_at_spike:.1f}% of heap "
                f"(paper: ~{100 * PAPER_BLOAT_ENTRY_FRACTION:.0f}%)")


def run_fig8(scale: float = 0.5,
             gc_threshold_bytes: int = 64 * 1024) -> Fig8Result:
    """Regenerate the Fig. 8 spike series from a profiled bloat run.

    The entry fraction counts only ``LinkedList$Entry`` bytes -- the
    sentinel heads of the never-used handler lists -- matching the
    paper's "around 25% of the heap ... consumed by LinkedList$Entry
    objects" measurement, not the lists' full ADT footprint.
    """
    config = ToolConfig(gc_threshold_bytes=gc_threshold_bytes)
    tool = _tool(config)
    session = tool.profile(BloatWorkload(scale=scale))
    timeline = session.report.timeline
    series = timeline.fractions_series()
    spike = max(timeline.cycles, key=lambda s: s.collection_live)
    # One sentinel entry per live (empty) LinkedList at the spike cycle.
    entry_size = config.memory_model.linked_entry_size()
    linked_contexts = {
        profile.context_id for profile in session.report.profiles
        if profile.src_type == "LinkedList"}
    sentinel_count = sum(
        stats.object_count for context_id, stats in spike.per_context.items()
        if context_id in linked_contexts)
    entry_fraction = (sentinel_count * entry_size / spike.live_data
                      if spike.live_data else 0.0)
    return Fig8Result(series=series, spike_cycle=spike.cycle,
                      spike_fraction=spike.collection_fraction,
                      entry_fraction_at_spike=entry_fraction)


# ---------------------------------------------------------------------------
# Section 5.4 -- fully automatic (online) mode
# ---------------------------------------------------------------------------
@dataclass
class OnlineResult:
    """Per-benchmark online-mode slowdowns and space savings."""

    rows: List[ExperimentRow]

    def slowdown(self, benchmark: str) -> float:
        for row in self.rows:
            if row.benchmark == benchmark and row.metric == "online slowdown":
                return row.measured
        raise KeyError(benchmark)

    def render(self) -> str:
        return render_table("Section 5.4: fully automatic mode", self.rows)


def run_online(scale: float = 0.5,
               benchmarks: Optional[Sequence] = None,
               retrofit_live: bool = True) -> OnlineResult:
    """Regenerate the section 5.4 online-mode measurements.

    ``retrofit_live`` (on by default) lets decided contexts convert their
    already-live instances, which is what makes the TVLA online space
    saving match the manual one, as the paper reports; it has no effect
    on allocation-churn benchmarks like PMD.
    """
    online = OnlineChameleon(
        ToolConfig(online_retrofit_live=retrofit_live))
    rows: List[ExperimentRow] = []
    for workload_class in (benchmarks or BENCHMARKS):
        workload = workload_class(scale=scale)
        result = online.run(workload)
        name = workload.name
        rows.append(ExperimentRow(
            name, "online slowdown", PAPER_ONLINE.get(name),
            result.slowdown, unit="x",
            note=f"{result.policy.replacements_chosen} contexts replaced"))
        rows.append(ExperimentRow(
            name, "online peak saving", None, result.peak_reduction,
            note="space reduction during the same run"))
    return OnlineResult(rows=rows)


# ---------------------------------------------------------------------------
# Section 2.3 -- hybrid (SizeAdapting) conversion-threshold ablation
# ---------------------------------------------------------------------------
@dataclass
class HybridResult:
    """Footprint/time of SizeAdaptingMap at several conversion thresholds."""

    rows: List[Tuple[str, int, int]]  # (label, peak bytes, ticks)

    def peak(self, label: str) -> int:
        for row_label, peak, _ in self.rows:
            if row_label == label:
                return peak
        raise KeyError(label)

    def ticks(self, label: str) -> int:
        for row_label, _, ticks in self.rows:
            if row_label == label:
                return ticks
        raise KeyError(label)

    def render(self) -> str:
        return render_series(
            "Section 2.3: SizeAdaptingMap conversion-threshold ablation "
            "(TVLA)", ("config", "peak_bytes", "ticks"), self.rows)


def run_hybrid_ablation(scale: float = 0.5,
                        thresholds: Sequence[int] = (4, 8, 13, 16, 24, 32),
                        ) -> HybridResult:
    """Sweep the hybrid conversion threshold on TVLA's map contexts.

    Reproduces the section 2.3 finding: a threshold above the actual map
    sizes behaves like the pure array map (low footprint, small time
    cost); a threshold below them converts every map to a HashMap and
    recovers the original footprint.
    """
    tool = _tool()
    workload = TvlaWorkload(scale=scale)
    session = tool.profile(workload)
    map_contexts = [s for s in session.suggestions
                    if s.profile.src_type == "HashMap"]

    def policy_with(impl: str, **impl_kwargs) -> ReplacementMap:
        policy = ReplacementMap()
        for suggestion in map_contexts:
            policy.set_choice(
                suggestion.profile.key, "HashMap",
                ImplementationChoice(impl, impl_kwargs=impl_kwargs or None))
        return policy

    rows: List[Tuple[str, int, int]] = []
    _, base = tool.plain_run(workload)
    rows.append(("HashMap (original)", base.peak_live_bytes, base.ticks))
    _, pure = tool.plain_run(workload, policy=policy_with("ArrayMap"))
    rows.append(("ArrayMap (offline fix)", pure.peak_live_bytes, pure.ticks))
    for threshold in thresholds:
        policy = policy_with("SizeAdaptingMap",
                             conversion_threshold=threshold)
        _, metrics = tool.plain_run(workload, policy=policy)
        rows.append((f"SizeAdapting@{threshold}", metrics.peak_live_bytes,
                     metrics.ticks))
    return HybridResult(rows=rows)


# ---------------------------------------------------------------------------
# Profiling overhead -- the paper's "low-overhead" claim
# ---------------------------------------------------------------------------
@dataclass
class OverheadResult:
    """Instrumentation overhead per benchmark and profiling mode."""

    rows: List[ExperimentRow]

    def overhead(self, benchmark: str, mode: str) -> float:
        for row in self.rows:
            if row.benchmark == benchmark and row.metric == mode:
                return row.measured
        raise KeyError((benchmark, mode))

    def render(self) -> str:
        return render_table(
            "Profiling overhead (sections 4.2-4.4)", self.rows)


def run_profiling_overhead(scale: float = 0.4,
                           benchmarks: Optional[Sequence] = None,
                           ) -> OverheadResult:
    """Measure the three instrumentation postures of section 4:

    * *vm-only* -- the collection-aware GC gathers its statistics "with
      virtually no additional cost" (section 4.4) because they ride the
      normal marking phase: library tracking is off, so no contexts are
      captured.
    * *sampled* -- library tracking at a 1-in-8 context sampling rate
      (section 4.2's mitigation).
    * *full* -- every allocation captured and profiled.
    """
    from repro.runtime.sampling import (AlwaysSample, NeverSample,
                                        RateSampler)
    from repro.profiler.profiler import SemanticProfiler

    tool = _tool()
    rows: List[ExperimentRow] = []
    for workload_class in (benchmarks or (TvlaWorkload,)):
        workload = workload_class(scale=scale)
        _, plain = tool.plain_run(workload)

        def instrumented_ticks(sampling) -> int:
            # A fresh instance per posture: reusing one workload object
            # across the vm-only/sampled/full runs would let instance
            # state bleed between postures and skew the comparison.
            vm = tool.make_vm(profiler=SemanticProfiler(sampling))
            workload.fresh().run(vm)
            vm.finish()
            return vm.now

        name = workload.name
        for mode, sampling in (
                ("vm-only overhead", NeverSample()),
                ("sampled (1/8) overhead", RateSampler(8)),
                ("full-profiling overhead", AlwaysSample())):
            ticks = instrumented_ticks(sampling)
            rows.append(ExperimentRow(
                name, mode, None, ticks / plain.ticks - 1.0,
                note=f"{ticks} vs {plain.ticks} ticks"))
    return OverheadResult(rows=rows)


# ---------------------------------------------------------------------------
# Everything
# ---------------------------------------------------------------------------
def run_all(scale: float = 0.5, resolution: int = 8192, jobs: int = 1,
            scheduler: Optional[Scheduler] = None) -> str:
    """Run every experiment and return the combined report text.

    ``jobs > 1`` (or an explicit ``scheduler``) fans the independent
    Fig. 6 / Fig. 7 work out across a process pool; because every job is
    deterministic and results merge in job order, the report text is
    byte-identical at any parallelism.  The session cache additionally
    keeps the per-process profiles shared across figures.
    """
    owns_scheduler = scheduler is None
    scheduler = scheduler or Scheduler(jobs=jobs)
    try:
        parts = [
            run_fig2(scale=scale).render(),
            run_fig3(scale=scale).render(),
            run_fig6(scale=scale, resolution=resolution,
                     scheduler=scheduler).render(),
            run_fig7(scale=scale, resolution=resolution,
                     scheduler=scheduler).render(),
            run_fig8(scale=scale).render(),
            run_online(scale=scale).render(),
            run_hybrid_ablation(scale=scale).render(),
            run_profiling_overhead(scale=scale).render(),
        ]
    finally:
        if owns_scheduler:
            scheduler.close()
    return "\n\n".join(parts)
