"""Plain heap snapshots: the strawman the paper argues against.

Section 2.1: "Using several heap-snapshots taken during program execution
may reveal the types that are responsible for most of the space
consumption.  However, a heap snapshot does not correlate the heap
objects to the point in the program in which they are allocated" -- and,
section 4.3.2 adds, a snapshot cannot even tell a collection's backing
``Object[]`` from an unrelated array ("this lack of semantic correlation
between objects is a common limitation of standard profilers").

:func:`heap_histogram` is that standard profiler: a per-type count/bytes
table over the current live set, with no ADT attribution and no
allocation contexts.  It exists so tests and examples can demonstrate
concretely what the semantic ADT maps add.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.runtime.vm import RuntimeEnvironment

__all__ = ["HistogramRow", "heap_histogram", "render_histogram"]


@dataclass(frozen=True)
class HistogramRow:
    """One type's slice of a heap snapshot."""

    type_name: str
    count: int
    bytes: int


def heap_histogram(vm: RuntimeEnvironment,
                   live_only: bool = True) -> List[HistogramRow]:
    """A jmap-style per-type histogram of the current heap.

    Args:
        vm: The runtime whose heap to snapshot.
        live_only: Restrict to root-reachable objects (a GC-triggered
            dump); otherwise include not-yet-swept garbage.

    Returns:
        Rows sorted by bytes, descending.  Deliberately *no* semantic
        attribution: a collection's backing array counts under
        ``Object[]``, its entries under ``HashMap$Entry`` -- the raw view
        the paper's semantic profiler improves on.
    """
    if live_only:
        marked = vm.gc._mark()
        objects = (vm.heap.get(obj_id) for obj_id in marked)
    else:
        objects = vm.heap.objects()
    counts: dict = {}
    for obj in objects:
        count, total = counts.get(obj.type_name, (0, 0))
        counts[obj.type_name] = (count + 1, total + obj.size)
    rows = [HistogramRow(name, count, total)
            for name, (count, total) in counts.items()]
    rows.sort(key=lambda row: row.bytes, reverse=True)
    return rows


def render_histogram(rows: List[HistogramRow], limit: int = 20) -> str:
    """jmap-histo-style text rendering."""
    total_bytes = sum(row.bytes for row in rows)
    lines = [f"{'#':>3} {'type':<24} {'count':>8} {'bytes':>10} {'%':>6}"]
    for rank, row in enumerate(rows[:limit], start=1):
        share = 100.0 * row.bytes / total_bytes if total_bytes else 0.0
        lines.append(f"{rank:>3} {row.type_name:<24} {row.count:>8} "
                     f"{row.bytes:>10} {share:>5.1f}%")
    if len(rows) > limit:
        remaining = sum(row.bytes for row in rows[limit:])
        lines.append(f"    ... {len(rows) - limit} more types, "
                     f"{remaining} bytes")
    return "\n".join(lines)
