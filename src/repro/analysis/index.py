"""Cross-run experiment index: run directories, ``runs.sqlite``, gating.

BENCH documents are point snapshots: each ``perf`` invocation overwrote
the last one, so the perf *trajectory* -- the thing the ROADMAP's scale
push needs to steer by -- was unrecoverable.  This module makes every
``experiment`` and ``perf`` invocation leave a durable, queryable trace,
following the run-directory + SQLite-index experimentation layer of the
ghostty-analysis pack (SNIPPETS.md) and the search-over-benchmarks
framing of Darwinian Data Structure Selection (PAPERS.md):

* :class:`RunDirectory` -- one directory per invocation under a *runs
  root* (default ``benchmarks/runs/``), holding a ``manifest.json``
  (config fingerprint, git revision, ``PYTHONHASHSEED``, workload /
  scale / seed parameters, wall-clock and tick results, schema version)
  plus the invocation's artifacts (the BENCH document, rendered output).
* :class:`RunIndex` -- the ``runs.sqlite`` database at the runs root:
  one ``runs`` row per invocation, one ``benchmarks`` row per measured
  benchmark, upserted so re-indexing a run directory is idempotent.
* :func:`gate_document` -- regression gating against indexed history:
  the latest wall clock is compared to the median of the last *N*
  indexed runs per benchmark, and rows whose simulated ticks differ are
  *refused* (:class:`GateDivergenceError`) exactly as the single-file
  ``perf --baseline`` comparison refuses tick-diverged documents --
  a wall ratio over different simulated work is meaningless.
* :class:`SessionStore` -- the content-addressed profiling-session
  spill (``<runs-root>/store/``): one atomically-written pickle per
  cache entry, named by a digest of the existing :class:`SessionCache`
  key, replacing the ad-hoc single-pickle spill (which a crash could
  truncate wholesale and a second writer could corrupt).

Everything here is stdlib-only (``sqlite3``, ``json``, ``pickle``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sqlite3
import statistics
import subprocess
import sys
import tempfile
import time
import uuid
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "MANIFEST_SCHEMA", "MANIFEST_SCHEMA_VERSION", "INDEX_SCHEMA_VERSION",
    "MANIFEST_NAME", "INDEX_NAME", "STORE_DIRNAME",
    "git_revision", "interpreter_hashseed", "atomic_write_text",
    "validate_manifest", "RunDirectory", "RunIndex",
    "GateRow", "GateReport", "GateDivergenceError", "gate_document",
    "render_history", "render_trends", "SessionStore",
]

MANIFEST_SCHEMA = "chameleon-run-manifest"
MANIFEST_SCHEMA_VERSION = 1
#: ``PRAGMA user_version`` of ``runs.sqlite``; bumped on layout changes.
INDEX_SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
INDEX_NAME = "runs.sqlite"
STORE_DIRNAME = "store"

#: Manifest fields every run directory must carry (validated on write
#: and by tests; ``git_rev`` may be null outside a checkout).
_MANIFEST_FIELDS = {
    "schema": str,
    "schema_version": int,
    "run_id": str,
    "kind": str,
    "started_at": (int, float),
    "wall_seconds": (int, float),
    "python": str,
    "pythonhashseed": str,
    "config_fingerprint": str,
    "command": list,
    "params": dict,
    "artifacts": list,
    "results": dict,
}


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """``git rev-parse HEAD`` of the source checkout (by default the
    tree this module lives in, so the recorded revision is independent
    of the caller's working directory), or ``None`` outside a repo."""
    if cwd is None:
        cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def interpreter_hashseed() -> str:
    """What pins this interpreter's str/bytes hashing, as recorded in
    manifests: the ``PYTHONHASHSEED`` the process was launched under, or
    ``"random"`` when hashing is randomised (tick counts then differ
    across invocations and indexed comparisons will be refused).

    Note ``sys.flags.hash_randomization`` stays 1 for any nonzero seed,
    so the environment variable -- which spawn-started children also
    inherit -- is the authoritative signal here.
    """
    seed = os.environ.get("PYTHONHASHSEED")
    if seed:
        return seed
    return "random" if sys.flags.hash_randomization else "0"


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file and
    ``os.replace``, so readers never observe a truncated file."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def validate_manifest(manifest: object) -> None:
    """Raise ``ValueError`` describing every schema violation in
    ``manifest``; return silently when valid."""
    problems: List[str] = []
    if not isinstance(manifest, dict):
        raise ValueError("manifest must be a JSON object")
    for key, expected in _MANIFEST_FIELDS.items():
        if key not in manifest:
            problems.append(f"missing field {key!r}")
        elif not isinstance(manifest[key], expected):
            problems.append(f"field {key!r} has type "
                            f"{type(manifest[key]).__name__}")
    if manifest.get("schema") not in (None, MANIFEST_SCHEMA):
        problems.append(f"schema is {manifest['schema']!r}, expected "
                        f"{MANIFEST_SCHEMA!r}")
    if isinstance(manifest.get("schema_version"), int) \
            and manifest["schema_version"] > MANIFEST_SCHEMA_VERSION:
        problems.append(f"schema_version {manifest['schema_version']} is "
                        f"newer than supported {MANIFEST_SCHEMA_VERSION}")
    if "git_rev" not in manifest:
        problems.append("missing field 'git_rev'")
    if problems:
        raise ValueError("invalid run manifest: " + "; ".join(problems))


class RunDirectory:
    """One invocation's artifact directory under the runs root.

    Usage: :meth:`create`, then :meth:`add_artifact` for each produced
    file, then :meth:`finalize` once results are known -- the manifest
    is only written (atomically) at finalize time, so a crashed run
    leaves artifacts but no manifest and is ignored by indexing.
    """

    def __init__(self, root: str, run_id: str) -> None:
        self.root = root
        self.run_id = run_id
        self.path = os.path.join(root, run_id)
        self._manifest: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, root: str, kind: str, *,
               command: Sequence[str] = (),
               params: Optional[Dict[str, Any]] = None,
               config_fingerprint: str = "") -> "RunDirectory":
        """Make a fresh run directory and start its manifest."""
        run_id = "{}-{}-{}".format(
            time.strftime("%Y%m%dT%H%M%S", time.gmtime()), kind,
            uuid.uuid4().hex[:8])
        run = cls(root, run_id)
        os.makedirs(run.path, exist_ok=True)
        run._manifest = {
            "schema": MANIFEST_SCHEMA,
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "run_id": run_id,
            "kind": kind,
            "started_at": time.time(),
            "wall_seconds": 0.0,
            "python": sys.version.split()[0],
            "pythonhashseed": interpreter_hashseed(),
            "git_rev": git_revision(),
            "config_fingerprint": config_fingerprint,
            "command": list(command),
            "params": dict(params or {}),
            "artifacts": [],
            "results": {},
        }
        return run

    @classmethod
    def open(cls, root: str, run_id: str) -> "RunDirectory":
        """Load an existing run directory's manifest (validated)."""
        run = cls(root, run_id)
        run._manifest = run.read_manifest()
        return run

    # ------------------------------------------------------------------
    @property
    def manifest(self) -> Dict[str, Any]:
        return self._manifest

    def manifest_path(self) -> str:
        return os.path.join(self.path, MANIFEST_NAME)

    def artifact_path(self, name: str) -> str:
        return os.path.join(self.path, name)

    def add_artifact(self, name: str, text: str) -> str:
        """Write one artifact file and record it in the manifest."""
        path = self.artifact_path(name)
        atomic_write_text(path, text)
        if name not in self._manifest["artifacts"]:
            self._manifest["artifacts"].append(name)
        return path

    def finalize(self, results: Optional[Dict[str, Any]] = None,
                 wall_seconds: Optional[float] = None) -> str:
        """Fill in results and write ``manifest.json`` atomically."""
        if results is not None:
            self._manifest["results"] = results
        if wall_seconds is not None:
            self._manifest["wall_seconds"] = wall_seconds
        else:
            self._manifest["wall_seconds"] = max(
                0.0, time.time() - self._manifest["started_at"])
        validate_manifest(self._manifest)
        atomic_write_text(
            self.manifest_path(),
            json.dumps(self._manifest, indent=2, sort_keys=True) + "\n")
        return self.manifest_path()

    def read_manifest(self) -> Dict[str, Any]:
        with open(self.manifest_path(), encoding="utf-8") as handle:
            manifest = json.load(handle)
        validate_manifest(manifest)
        return manifest


# ----------------------------------------------------------------------
# The SQLite index
# ----------------------------------------------------------------------
class RunIndex:
    """The ``runs.sqlite`` cross-run index at a runs root.

    ``runs`` holds one row per indexed invocation; ``benchmarks`` one
    row per measured benchmark of a run, both upserted on conflict so
    re-indexing the same run directory is idempotent.  All queries
    order newest-first by ``started_at`` (``rowid`` breaks ties).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(path)
        self._conn.row_factory = sqlite3.Row
        self._init_schema()

    @classmethod
    def at_root(cls, root: str) -> "RunIndex":
        """The index database conventionally placed at the runs root."""
        return cls(os.path.join(root, INDEX_NAME))

    def _init_schema(self) -> None:
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if version > INDEX_SCHEMA_VERSION:
            raise ValueError(
                f"{self.path}: index schema version {version} is newer "
                f"than supported {INDEX_SCHEMA_VERSION}")
        with self._conn:
            self._conn.execute("""
                CREATE TABLE IF NOT EXISTS runs (
                    run_id TEXT PRIMARY KEY,
                    kind TEXT NOT NULL,
                    started_at REAL NOT NULL,
                    wall_seconds REAL,
                    git_rev TEXT,
                    pythonhashseed TEXT,
                    python TEXT,
                    config_fingerprint TEXT,
                    schema_version INTEGER NOT NULL,
                    params TEXT,
                    manifest_path TEXT
                )""")
            self._conn.execute("""
                CREATE TABLE IF NOT EXISTS benchmarks (
                    run_id TEXT NOT NULL REFERENCES runs(run_id),
                    name TEXT NOT NULL,
                    workload TEXT,
                    capture INTEGER,
                    wall_seconds REAL,
                    run_seconds REAL,
                    ticks INTEGER,
                    gc_cycles INTEGER,
                    allocated_objects INTEGER,
                    PRIMARY KEY (run_id, name)
                )""")
            self._conn.execute("""
                CREATE INDEX IF NOT EXISTS benchmarks_by_name
                ON benchmarks (name)""")
            self._conn.execute(
                f"PRAGMA user_version = {INDEX_SCHEMA_VERSION}")

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def record_run(self, manifest: Dict[str, Any],
                   manifest_path: Optional[str] = None) -> None:
        """Upsert one ``runs`` row from a validated manifest."""
        validate_manifest(manifest)
        with self._conn:
            self._conn.execute(
                """INSERT INTO runs (run_id, kind, started_at,
                       wall_seconds, git_rev, pythonhashseed, python,
                       config_fingerprint, schema_version, params,
                       manifest_path)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                   ON CONFLICT(run_id) DO UPDATE SET
                       kind=excluded.kind,
                       started_at=excluded.started_at,
                       wall_seconds=excluded.wall_seconds,
                       git_rev=excluded.git_rev,
                       pythonhashseed=excluded.pythonhashseed,
                       python=excluded.python,
                       config_fingerprint=excluded.config_fingerprint,
                       schema_version=excluded.schema_version,
                       params=excluded.params,
                       manifest_path=excluded.manifest_path""",
                (manifest["run_id"], manifest["kind"],
                 manifest["started_at"], manifest["wall_seconds"],
                 manifest.get("git_rev"), manifest["pythonhashseed"],
                 manifest["python"], manifest["config_fingerprint"],
                 manifest["schema_version"],
                 json.dumps(manifest["params"], sort_keys=True),
                 manifest_path))

    def record_benchmark(self, run_id: str, record: Dict[str, Any]) -> None:
        """Upsert one ``benchmarks`` row (a BENCH-document record, or a
        synthetic record with ``ticks=None`` for unticked measurements
        such as whole-experiment wall clocks)."""
        phases = record.get("phases") or {}
        with self._conn:
            self._conn.execute(
                """INSERT INTO benchmarks (run_id, name, workload,
                       capture, wall_seconds, run_seconds, ticks,
                       gc_cycles, allocated_objects)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
                   ON CONFLICT(run_id, name) DO UPDATE SET
                       workload=excluded.workload,
                       capture=excluded.capture,
                       wall_seconds=excluded.wall_seconds,
                       run_seconds=excluded.run_seconds,
                       ticks=excluded.ticks,
                       gc_cycles=excluded.gc_cycles,
                       allocated_objects=excluded.allocated_objects""",
                (run_id, record["name"], record.get("workload"),
                 None if record.get("capture") is None
                 else int(bool(record["capture"])),
                 record.get("wall_seconds"), phases.get("run"),
                 record.get("ticks"), record.get("gc_cycles"),
                 record.get("allocated_objects")))

    def index_perf_document(self, run_id: str, doc: Dict[str, Any]) -> int:
        """Upsert one benchmarks row per record of a BENCH document;
        returns how many rows were written."""
        for record in doc.get("benchmarks", []):
            self.record_benchmark(run_id, record)
        return len(doc.get("benchmarks", []))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def runs(self, kind: Optional[str] = None,
             last: Optional[int] = None) -> List[sqlite3.Row]:
        """Indexed runs, newest first."""
        sql = "SELECT * FROM runs"
        args: List[Any] = []
        if kind is not None:
            sql += " WHERE kind = ?"
            args.append(kind)
        sql += " ORDER BY started_at DESC, rowid DESC"
        if last is not None:
            sql += " LIMIT ?"
            args.append(last)
        return self._conn.execute(sql, args).fetchall()

    def benchmark_names(self) -> List[str]:
        """Every benchmark name with at least one indexed row."""
        rows = self._conn.execute(
            "SELECT DISTINCT name FROM benchmarks ORDER BY name")
        return [row["name"] for row in rows]

    def history(self, name: str, last: Optional[int] = None,
                exclude_run: Optional[str] = None) -> List[sqlite3.Row]:
        """Indexed rows for one benchmark, newest first (joined with the
        owning run's metadata)."""
        sql = """SELECT b.*, r.started_at, r.git_rev, r.pythonhashseed
                 FROM benchmarks b JOIN runs r ON r.run_id = b.run_id
                 WHERE b.name = ?"""
        args: List[Any] = [name]
        if exclude_run is not None:
            sql += " AND b.run_id != ?"
            args.append(exclude_run)
        sql += " ORDER BY r.started_at DESC, b.rowid DESC"
        if last is not None:
            sql += " LIMIT ?"
            args.append(last)
        return self._conn.execute(sql, args).fetchall()

    def trend(self, name: str, window: int = 5) -> Optional[Dict[str, Any]]:
        """Latest-vs-median-of-last-``window`` delta for one benchmark.

        Returns ``None`` with no rows; with a single row the delta is
        ``None`` (nothing to compare against).  The median spans the up
        to ``window`` rows *preceding* the latest.
        """
        rows = self.history(name, last=window + 1)
        if not rows:
            return None
        latest = rows[0]
        previous = [row for row in rows[1:]
                    if row["wall_seconds"] is not None]
        result: Dict[str, Any] = {
            "name": name,
            "runs": len(self.history(name)),
            "latest_wall_seconds": latest["wall_seconds"],
            "latest_run_id": latest["run_id"],
            "latest_ticks": latest["ticks"],
            "median_wall_seconds": None,
            "delta": None,
            "window": len(previous),
        }
        if previous and latest["wall_seconds"] is not None:
            median = statistics.median(
                row["wall_seconds"] for row in previous)
            result["median_wall_seconds"] = median
            if median:
                result["delta"] = latest["wall_seconds"] / median - 1.0
        return result


# ----------------------------------------------------------------------
# Gating against indexed history
# ----------------------------------------------------------------------
@dataclass
class GateRow:
    """One benchmark's gate verdict."""

    name: str
    status: str                      # "ok" | "regression" | "no-history"
    current_wall: float
    reference_wall: Optional[float]  # median of the compared window
    ratio: Optional[float]           # current / reference
    window: int                      # rows the median spans


@dataclass
class GateReport:
    """Every benchmark's verdict plus the gate parameters."""

    rows: List[GateRow]
    window: int
    threshold: float

    @property
    def regressions(self) -> List[GateRow]:
        return [row for row in self.rows if row.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [f"perf gate (median of last {self.window} indexed runs, "
                 f"threshold +{100 * self.threshold:.0f}%):"]
        for row in self.rows:
            if row.status == "no-history":
                lines.append(f"  {row.name:<20} no indexed history -- "
                             f"skipped")
                continue
            lines.append(
                f"  {row.name:<20} {row.current_wall:>9.4f}s vs median "
                f"{row.reference_wall:>9.4f}s over {row.window} run(s) "
                f"({row.ratio:.2f}x) {row.status.upper()}")
        lines.append("gate: " + ("ok" if self.ok else
                                 f"{len(self.regressions)} regression(s)"))
        return "\n".join(lines)


class GateDivergenceError(ValueError):
    """Indexed history measured different simulated work.

    Mirrors the single-file ``--baseline`` refusal: a wall-clock ratio
    over different tick counts is meaningless, so the gate refuses,
    naming every offending benchmark with both tick values.
    """

    def __init__(self, diverged: List[Tuple[str, int, int]]) -> None:
        self.diverged = diverged
        details = "; ".join(
            f"benchmark {name!r}: ticks {indexed_ticks} (indexed) vs "
            f"{current_ticks} (current)"
            for name, indexed_ticks, current_ticks in diverged)
        super().__init__(
            "the indexed history measured different simulated work -- "
            + details)


def gate_document(index: RunIndex, doc: Dict[str, Any], *,
                  window: int = 5, threshold: float = 0.3,
                  exclude_run: Optional[str] = None) -> GateReport:
    """Gate a BENCH document against the index's per-benchmark history.

    For every benchmark in ``doc``, the last ``window`` indexed rows
    (excluding ``exclude_run``, normally the row just written for this
    very invocation) form the reference: the gate fails the benchmark
    when its wall clock exceeds the reference *median* by more than
    ``threshold`` (0.3 = +30%).  Rows whose simulated ticks differ from
    the current document raise :class:`GateDivergenceError` -- exactly
    the ``--baseline`` refusal, naming benchmark and both tick values.
    Benchmarks with no indexed history are skipped, so the first gated
    run of a fresh index always passes.
    """
    rows: List[GateRow] = []
    diverged: List[Tuple[str, int, int]] = []
    for record in doc.get("benchmarks", []):
        name = record["name"]
        history = index.history(name, last=window, exclude_run=exclude_run)
        history = [row for row in history
                   if row["wall_seconds"] is not None]
        if not history:
            rows.append(GateRow(name=name, status="no-history",
                                current_wall=record["wall_seconds"],
                                reference_wall=None, ratio=None, window=0))
            continue
        bad = [row for row in history
               if row["ticks"] is not None
               and row["ticks"] != record.get("ticks")]
        if bad:
            diverged.append((name, bad[0]["ticks"], record.get("ticks")))
            continue
        reference = statistics.median(
            row["wall_seconds"] for row in history)
        ratio = (record["wall_seconds"] / reference) if reference else 1.0
        status = "regression" if ratio > 1.0 + threshold else "ok"
        rows.append(GateRow(name=name, status=status,
                            current_wall=record["wall_seconds"],
                            reference_wall=reference, ratio=ratio,
                            window=len(history)))
    if diverged:
        raise GateDivergenceError(diverged)
    return GateReport(rows=rows, window=window, threshold=threshold)


# ----------------------------------------------------------------------
# Rendering for the ``history`` CLI subcommand
# ----------------------------------------------------------------------
def render_history(index: RunIndex, name: str,
                   last: Optional[int] = None) -> str:
    """One benchmark's indexed series, newest first."""
    rows = index.history(name, last=last)
    if not rows:
        return f"no indexed rows for benchmark {name!r}"
    lines = [f"{name}: {len(rows)} indexed run(s), newest first",
             f"{'run id':<34} {'wall s':>9} {'run s':>9} {'ticks':>12} "
             f"{'hashseed':>8} {'git rev':>9}"]
    for row in rows:
        ticks = "-" if row["ticks"] is None else row["ticks"]
        run_s = ("-" if row["run_seconds"] is None
                 else f"{row['run_seconds']:.4f}")
        git_rev = (row["git_rev"] or "-")[:9]
        lines.append(
            f"{row['run_id']:<34} {row['wall_seconds']:>9.4f} "
            f"{run_s:>9} {ticks:>12} {row['pythonhashseed']:>8} "
            f"{git_rev:>9}")
    return "\n".join(lines)


def render_trends(index: RunIndex, window: int = 5) -> str:
    """Per-benchmark latest-vs-median-of-last-``window`` summary."""
    names = index.benchmark_names()
    run_rows = index.runs()
    kinds: Dict[str, int] = {}
    for row in run_rows:
        kinds[row["kind"]] = kinds.get(row["kind"], 0) + 1
    kind_summary = ", ".join(f"{count} {kind}"
                             for kind, count in sorted(kinds.items()))
    lines = [f"{len(run_rows)} indexed run(s)"
             + (f" ({kind_summary})" if kind_summary else "")
             + f" in {index.path}"]
    if not names:
        lines.append("no benchmarks indexed yet")
        return "\n".join(lines)
    lines.append(f"{'benchmark':<24} {'runs':>5} {'latest s':>9} "
                 f"{'median s':>9} {'delta':>7}")
    for name in names:
        trend = index.trend(name, window=window)
        if trend is None:
            continue
        median = ("-" if trend["median_wall_seconds"] is None
                  else f"{trend['median_wall_seconds']:.4f}")
        delta = ("-" if trend["delta"] is None
                 else f"{100 * trend['delta']:+.1f}%")
        latest = ("-" if trend["latest_wall_seconds"] is None
                  else f"{trend['latest_wall_seconds']:.4f}")
        lines.append(f"{name:<24} {trend['runs']:>5} {latest:>9} "
                     f"{median:>9} {delta:>7}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Content-addressed session store
# ----------------------------------------------------------------------
class SessionStore:
    """Content-addressed profiling-session spill directory.

    One pickle per cache entry, written atomically and named by a
    SHA-256 digest of the :class:`~repro.core.chameleon.SessionCache`
    key, so concurrent spillers (parallel CI legs, scheduler workers)
    compose: identical keys collide onto identical deterministic
    content, distinct keys never clobber each other, and a torn write
    can never corrupt a neighbouring entry -- the failure mode of the
    old whole-cache single-pickle spill.  Corrupt entries are skipped
    with a warning, never fatal.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    @staticmethod
    def digest(key: tuple) -> str:
        """Stable content digest of a session-cache key (tuples of
        primitives, so ``repr`` is canonical)."""
        return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()

    def path_for(self, key: tuple) -> str:
        return os.path.join(self.root, self.digest(key) + ".pkl")

    def _entry_paths(self) -> List[str]:
        return [os.path.join(self.root, name)
                for name in sorted(os.listdir(self.root))
                if name.endswith(".pkl")]

    def __len__(self) -> int:
        return len(self._entry_paths())

    # ------------------------------------------------------------------
    def put(self, key: tuple, session: Any) -> bool:
        """Store one entry; returns whether a new file was written.

        An existing file for the key is left alone: sessions are
        deterministic functions of their key, so the bytes on disk are
        already what a rewrite would produce.
        """
        path = self.path_for(key)
        if os.path.exists(path):
            return False
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump((key, session), handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return True

    def get(self, key: tuple) -> Optional[Any]:
        """One entry's session, or ``None`` (missing or corrupt)."""
        entry = self._read_entry(self.path_for(key))
        return entry[1] if entry is not None else None

    def _read_entry(self, path: str) -> Optional[Tuple[tuple, Any]]:
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                key, session = pickle.load(handle)
        except Exception as exc:
            warnings.warn(
                f"session-store entry {path!r} is corrupt or truncated; "
                f"skipping it ({type(exc).__name__}: {exc})",
                RuntimeWarning, stacklevel=2)
            return None
        return key, session

    # ------------------------------------------------------------------
    def save_cache(self, cache: Any) -> int:
        """Spill every entry of a ``SessionCache``; returns how many new
        files were written."""
        written = 0
        for key, session in cache.items():
            if self.put(key, session):
                written += 1
        return written

    def load_cache(self, cache: Any) -> int:
        """Merge every readable entry into a ``SessionCache``; returns
        how many entries were added."""
        entries = {}
        for path in self._entry_paths():
            entry = self._read_entry(path)
            if entry is not None:
                key, session = entry
                entries[key] = session
        return cache.merge(entries)

    def sessions(self) -> List[Any]:
        """Every readable session (what ``lint --drift`` consumes)."""
        out = []
        for path in self._entry_paths():
            entry = self._read_entry(path)
            if entry is not None:
                out.append(entry[1])
        return out
