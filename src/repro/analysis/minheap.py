"""Minimal-heap-size search: the measurement behind Fig. 6.

The paper evaluates every fix by "the minimal-heap size required to run
the program" (section 5.2, step 6).  The simulated VM gives that measure a
precise meaning: the smallest heap byte limit under which the workload
completes without :class:`~repro.memory.heap.OutOfMemoryError` (the VM
collects when the limit would be exceeded and raises only if the live set
itself cannot fit).

:func:`find_min_heap` binary-searches the limit.  Because the workloads
are deterministic, the search is exact down to the requested resolution.

The search is expressed as a *probe plan* (:func:`_search_steps`, a
generator that yields limits and receives outcomes), which allows two
drivers over the identical plan:

* the serial driver evaluates one probe at a time -- the reference path;
* the speculative driver explores the plan's decision tree ahead of the
  next unknown probe and evaluates up to ``width`` candidate limits per
  round through a batch function (a :class:`~repro.analysis.scheduler.
  Scheduler` pool in practice), then replays the plan against the cached
  outcomes.  Every bracket decision is still taken by the same plan, so
  the returned ``(minimum, probes)`` is byte-identical at any
  parallelism -- speculation only changes how many *extra* probes are
  evaluated and how much wall-clock each round costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.apply import ReplacementMap
from repro.core.chameleon import Chameleon
from repro.core.config import ToolConfig
from repro.memory.heap import OutOfMemoryError
from repro.workloads.base import Workload

__all__ = ["MinHeapResult", "find_min_heap", "measure_min_heap"]

#: Hard ceiling on the doubled upper bracket -- beyond this the workload
#: is considered to never complete.
_LIMIT_CEILING = 1 << 40


@dataclass(frozen=True)
class MinHeapResult:
    """Outcome of one minimal-heap search."""

    min_heap_bytes: int
    probes: int
    unconstrained_peak: int

    @property
    def headroom(self) -> float:
        """min-heap / peak-live ratio (>1: GC needs slack to operate)."""
        if self.unconstrained_peak == 0:
            return 1.0
        return self.min_heap_bytes / self.unconstrained_peak


def _search_steps(low: int, high: int, resolution: int):
    """The probe plan: yields the next limit, receives its outcome.

    Returns ``(min_heap_bytes, probes)`` via ``StopIteration``.  Both
    brackets are *verified*, not assumed: ``high`` is doubled until it
    succeeds, and ``low`` is probed and halved downward while it
    succeeds.  An assumed-failing ``low`` that actually completes would
    otherwise inflate the reported minimum to ``low + resolution`` -- a
    seed of ``peak // 2`` then understates every Fig. 6 improvement whose
    true minimum sits at or below the seed.
    """
    probes = 0
    low_known_failing = False
    while True:
        probes += 1
        if (yield high):
            break
        low = high
        low_known_failing = True
        high *= 2
        if high > _LIMIT_CEILING:
            raise RuntimeError("workload does not complete in any heap")
    if not low_known_failing:
        # Verify the lower bracket: halve downward while it succeeds.
        while low > 0:
            probes += 1
            if not (yield low):
                break
            high = low
            low //= 2
    while high - low > resolution:
        middle = (low + high) // 2
        probes += 1
        if (yield middle):
            high = middle
        else:
            low = middle
    return high, probes


def _replay(low: int, high: int, resolution: int,
            outcomes: Dict[int, bool]):
    """Drive the plan against cached outcomes.

    Returns ``("done", (min_heap, probes))`` when the plan finishes, or
    ``("need", limit)`` at the first probe whose outcome is unknown.
    """
    plan = _search_steps(low, high, resolution)
    try:
        limit = next(plan)
        while limit in outcomes:
            limit = plan.send(outcomes[limit])
        return "need", limit
    except StopIteration as stop:
        return "done", stop.value


def _speculative_frontier(low: int, high: int, resolution: int,
                          outcomes: Dict[int, bool],
                          width: int) -> List[int]:
    """Up to ``width`` uncached limits the plan may probe next.

    Explores the plan's decision tree from the current outcome cache:
    the single depth-1 node is the probe the serial driver would run
    now; depth-``d`` nodes are reachable after ``d - 1`` more outcomes.
    Nodes are ordered shallowest-first (they are the most certain to be
    needed), ties broken by limit value, so the frontier is
    deterministic.
    """
    # Smallest depth whose full tree has >= width nodes: 2^d - 1 >= width.
    max_depth = max(1, width).bit_length()
    depths: Dict[int, int] = {}

    def explore(hypothetical: Dict[int, bool], depth: int) -> None:
        plan = _search_steps(low, high, resolution)
        try:
            limit = next(plan)
            while True:
                if limit in outcomes:
                    limit = plan.send(outcomes[limit])
                elif limit in hypothetical:
                    limit = plan.send(hypothetical[limit])
                else:
                    break
        except StopIteration:
            return
        except RuntimeError:
            # A hypothetical all-failing branch ran off the limit
            # ceiling; nothing to probe down that branch.
            return
        previous = depths.get(limit)
        if previous is None or depth < previous:
            depths[limit] = depth
        if depth < max_depth:
            for outcome in (True, False):
                explore({**hypothetical, limit: outcome}, depth + 1)

    explore({}, 1)
    ordered = sorted(depths, key=lambda limit: (depths[limit], limit))
    return ordered[:width]


def find_min_heap(attempt: Callable[[int], bool], low: int, high: int,
                  resolution: int = 2048,
                  attempt_many: Optional[
                      Callable[[Sequence[int]], Sequence[bool]]] = None,
                  width: int = 1) -> tuple:
    """Search the smallest ``limit`` for which ``attempt(limit)``
    succeeds.

    Args:
        attempt: Runs the program under a byte limit; True on completion,
            False on OOM.  Must be deterministic.
        low: Initial lower bracket (verified; the search probes below it
            when it unexpectedly succeeds).
        high: Upper bracket; doubled until it succeeds.
        resolution: Terminate when the bracket is this tight.
        attempt_many: Optional batch evaluator: given a list of limits,
            returns their outcomes in order.  Supplying it (with
            ``width > 1``) turns on speculative parallel bisection.
        width: Maximum probes evaluated per speculative round.

    Returns:
        ``(min_heap_bytes, probes)`` -- identical for the serial and
        speculative drivers; ``probes`` counts the plan's probes, not
        the (possibly larger) number of speculative evaluations.
    """
    if low < 0 or high <= low:
        raise ValueError("need 0 <= low < high")
    if attempt_many is None or width <= 1:
        plan = _search_steps(low, high, resolution)
        try:
            limit = next(plan)
            while True:
                limit = plan.send(attempt(limit))
        except StopIteration as stop:
            return stop.value
    outcomes: Dict[int, bool] = {}
    while True:
        status, payload = _replay(low, high, resolution, outcomes)
        if status == "done":
            return payload
        frontier = _speculative_frontier(low, high, resolution, outcomes,
                                         width)
        for limit, outcome in zip(frontier, attempt_many(frontier)):
            outcomes[limit] = bool(outcome)


# ----------------------------------------------------------------------
# Probe execution (in-process and scheduler workers)
# ----------------------------------------------------------------------
#: Per-process memo of configured tools, so a pool worker builds its rule
#: engine once per ToolConfig rather than once per probe.
_PROBE_TOOLS: Dict[str, Chameleon] = {}


def _probe_tool(config: ToolConfig) -> Chameleon:
    tool = _PROBE_TOOLS.get(config.fingerprint())
    if tool is None:
        tool = Chameleon(config)
        _PROBE_TOOLS[config.fingerprint()] = tool
    return tool


def min_heap_probe(config: ToolConfig, workload: Workload,
                   policy: Optional[ReplacementMap], limit: int) -> bool:
    """One minimal-heap probe: completes under ``limit`` or OOMs.

    Top-level and argument-picklable so a :class:`~repro.analysis.
    scheduler.Scheduler` can fan probes out to pool workers; the serial
    driver funnels through it too, so both paths run the identical
    probe (fresh workload instance, same tool construction).
    """
    tool = _probe_tool(config)
    try:
        tool.plain_run(workload.fresh(), policy=policy, heap_limit=limit)
        return True
    except OutOfMemoryError:
        return False


def measure_min_heap(tool: Chameleon, workload: Workload,
                     policy: Optional[ReplacementMap] = None,
                     resolution: int = 2048,
                     scheduler=None) -> MinHeapResult:
    """Minimal heap for ``workload`` under ``tool``'s VM configuration.

    The unconstrained peak-live footprint seeds the search bracket: the
    true minimum is at least the peak live set and (for these workloads)
    at most a small multiple of it.

    A :class:`~repro.analysis.scheduler.Scheduler` with ``jobs > 1``
    enables speculative parallel bisection: each round batch-evaluates up
    to ``jobs`` candidate limits on the pool instead of one, and the
    result is byte-identical to the serial search.
    """
    _, metrics = tool.plain_run(workload.fresh(), policy=policy)
    peak = max(metrics.peak_live_bytes, resolution)

    def attempt(limit: int) -> bool:
        return min_heap_probe(tool.config, workload, policy, limit)

    attempt_many = None
    width = 1
    if scheduler is not None and scheduler.jobs > 1:
        width = scheduler.jobs
        # Ship a never-run clone: a workload that already ran may hold
        # references into a live VM, which must not cross the pool.
        clone = workload.fresh()

        def attempt_many(limits: Sequence[int]) -> List[bool]:
            return scheduler.map(
                min_heap_probe,
                [(tool.config, clone, policy, limit)
                 for limit in limits],
                prefix=f"minheap:{workload.name}")

    min_heap, probes = find_min_heap(attempt, low=max(peak // 2, 1),
                                     high=peak * 2, resolution=resolution,
                                     attempt_many=attempt_many, width=width)
    return MinHeapResult(min_heap_bytes=min_heap, probes=probes,
                         unconstrained_peak=peak)
