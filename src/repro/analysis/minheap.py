"""Minimal-heap-size search: the measurement behind Fig. 6.

The paper evaluates every fix by "the minimal-heap size required to run
the program" (section 5.2, step 6).  The simulated VM gives that measure a
precise meaning: the smallest heap byte limit under which the workload
completes without :class:`~repro.memory.heap.OutOfMemoryError` (the VM
collects when the limit would be exceeded and raises only if the live set
itself cannot fit).

:func:`find_min_heap` binary-searches the limit.  Because the workloads
are deterministic, the search is exact down to the requested resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.apply import ReplacementMap
from repro.core.chameleon import Chameleon
from repro.memory.heap import OutOfMemoryError
from repro.workloads.base import Workload

__all__ = ["MinHeapResult", "find_min_heap", "measure_min_heap"]


@dataclass(frozen=True)
class MinHeapResult:
    """Outcome of one minimal-heap search."""

    min_heap_bytes: int
    probes: int
    unconstrained_peak: int

    @property
    def headroom(self) -> float:
        """min-heap / peak-live ratio (>1: GC needs slack to operate)."""
        if self.unconstrained_peak == 0:
            return 1.0
        return self.min_heap_bytes / self.unconstrained_peak


def find_min_heap(attempt: Callable[[int], bool], low: int, high: int,
                  resolution: int = 2048) -> tuple:
    """Binary-search the smallest ``limit`` for which ``attempt(limit)``
    succeeds.

    Both brackets are *verified*, not assumed: ``high`` is doubled until
    it succeeds, and ``low`` is probed and halved downward while it
    succeeds.  An assumed-failing ``low`` that actually completes would
    otherwise inflate the reported minimum to ``low + resolution`` -- a
    seed of ``peak // 2`` then understates every Fig. 6 improvement whose
    true minimum sits at or below the seed.

    Args:
        attempt: Runs the program under a byte limit; True on completion,
            False on OOM.  Must be deterministic.
        low: Initial lower bracket (verified; the search probes below it
            when it unexpectedly succeeds).
        high: Upper bracket; doubled until it succeeds.
        resolution: Terminate when the bracket is this tight.

    Returns:
        ``(min_heap_bytes, probes)``.
    """
    if low < 0 or high <= low:
        raise ValueError("need 0 <= low < high")
    probes = 0
    low_known_failing = False
    while not attempt(high):
        probes += 1
        low = high
        low_known_failing = True
        high *= 2
        if high > 1 << 40:
            raise RuntimeError("workload does not complete in any heap")
    probes += 1
    if not low_known_failing:
        # Verify the lower bracket: halve downward while it succeeds.
        while low > 0:
            probes += 1
            if not attempt(low):
                break
            high = low
            low //= 2
    while high - low > resolution:
        middle = (low + high) // 2
        probes += 1
        if attempt(middle):
            high = middle
        else:
            low = middle
    return high, probes


def measure_min_heap(tool: Chameleon, workload: Workload,
                     policy: Optional[ReplacementMap] = None,
                     resolution: int = 2048) -> MinHeapResult:
    """Minimal heap for ``workload`` under ``tool``'s VM configuration.

    The unconstrained peak-live footprint seeds the search bracket: the
    true minimum is at least the peak live set and (for these workloads)
    at most a small multiple of it.
    """
    _, metrics = tool.plain_run(workload, policy=policy)
    peak = max(metrics.peak_live_bytes, resolution)

    def attempt(limit: int) -> bool:
        try:
            tool.plain_run(workload, policy=policy, heap_limit=limit)
            return True
        except OutOfMemoryError:
            return False

    min_heap, probes = find_min_heap(attempt, low=max(peak // 2, 1),
                                     high=peak * 2, resolution=resolution)
    return MinHeapResult(min_heap_bytes=min_heap, probes=probes,
                         unconstrained_peak=peak)
