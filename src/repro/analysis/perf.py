"""Wall-clock perf-regression harness (``benchmarks/perf/``).

The virtual clock makes the *simulated* running-time results exact, but
the simulator itself must also run "as fast as the hardware allows" --
and nothing so far measured that.  This module is the repo's perf
trajectory: a small suite of wall-clock micro-benchmarks over the two
workloads the paper's overhead analysis singles out (TVLA: op-dense;
PMD: allocation-dense), each run with allocation-context capture on and
off, plus a GC-heavy configuration that stresses mark/account/sweep.

Results are emitted as ``BENCH_chameleon.json`` with a stable,
CI-comparable schema (:data:`SCHEMA`, :data:`SCHEMA_VERSION`); CI runs a
smoke pass and fails on a schema-invalid document, and successive PRs can
diff their documents with :func:`compare` to track the trajectory.

Wall-clock numbers are machine-dependent; the schema therefore records
the interpreter and the per-phase split (setup / run / finish / report)
so a regression can be localised, and comparisons should always be
between documents produced on the same machine.

Measurement hygiene: every measured repeat runs with CPython's cyclic
collector disabled (after a pre-run ``gc.collect()``), because a cycle
collection landing inside one repeat but not another is the dominant
single-machine variance source for these sub-second runs.  Since v4 the
suite reports the *median* repeat (plus every repeat's wall in
``repeat_walls``) instead of the minimum -- the minimum systematically
rewards the repeat that dodged the most machine noise, while the median
tracks what a user actually observes.
"""

from __future__ import annotations

import gc as _pygc
import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.chameleon import Chameleon
from repro.core.config import ToolConfig
from repro.profiler.report import build_report
from repro.runtime.context import clear_capture_caches
from repro.runtime.vm import RuntimeEnvironment
from repro.workloads import default_workload_registry

__all__ = ["SCHEMA", "SCHEMA_VERSION", "BenchRecord", "median_index",
           "run_suite", "run_suite_section", "run_vm_cores_section",
           "validate_document", "compare", "tick_divergences",
           "render_summary"]

SCHEMA = "chameleon-perf"
#: v2 adds the optional top-level ``suite`` section: serial-vs-parallel
#: wall time for the Fig. 6 + Fig. 7 pair plus session-cache hit counts.
#: v3 adds the optional ``suite.overhead`` breakdown (per-job spawn /
#: worker / transfer / merge seconds from the persistent worker pool)
#: and the ``gc_mark_heavy`` synthetic benchmark.  Older documents
#: (no ``suite`` key, or a ``suite`` without ``overhead``) remain valid.
#: v4 switches aggregation from best-of-repeats to median-of-repeats
#: (recording every repeat in the new per-record ``repeat_walls`` list),
#: adds the ``op_dispatch_heavy`` synthetic benchmark, and adds the
#: optional top-level ``vm_cores`` section: reference-vs-fast
#: operation-pipeline wall clocks with a tick-identity bit and the
#: runner's CPU count (single-core runners are too noisy to gate on).
SCHEMA_VERSION = 4

#: The default workload pair: the section 5.4 extremes.
DEFAULT_WORKLOADS = ("tvla", "pmd")

#: Phase names every benchmark record reports (missing phases are 0.0).
PHASES = ("setup", "run", "finish", "report")


@dataclass
class BenchRecord:
    """One benchmark's measurements.

    ``wall_seconds`` is the *median* repeat (v4+; earlier versions
    recorded the minimum), ``repeat_walls`` every repeat's total in run
    order, and ``phases`` the per-phase split of the median repeat.
    """

    name: str
    workload: str
    capture: bool
    repeats: int
    wall_seconds: float
    phases: Dict[str, float] = field(default_factory=dict)
    ticks: int = 0
    gc_cycles: int = 0
    allocated_objects: int = 0
    repeat_walls: List[float] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "workload": self.workload,
            "capture": self.capture,
            "repeats": self.repeats,
            "wall_seconds": self.wall_seconds,
            "phases": dict(self.phases),
            "ticks": self.ticks,
            "gc_cycles": self.gc_cycles,
            "allocated_objects": self.allocated_objects,
            "repeat_walls": list(self.repeat_walls),
        }


def median_index(walls: List[float]) -> int:
    """Index (into ``walls``) of the median repeat: the lower-middle
    element of the sorted totals, so the reported wall and phase split
    always come from one actual run rather than an average of two."""
    order = sorted(range(len(walls)), key=walls.__getitem__)
    return order[(len(order) - 1) // 2]


def _phase_timed(fn: Callable[[], None], phases: Dict[str, float],
                 name: str) -> None:
    start = time.perf_counter()
    fn()
    phases[name] = phases.get(name, 0.0) + time.perf_counter() - start


def _run_once(tool: Chameleon, workload_name: str, scale: float, seed: int,
              capture: bool,
              gc_threshold_bytes: Optional[int] = None,
              ) -> Tuple[Dict[str, float], RuntimeEnvironment]:
    """One measured run; returns per-phase wall times and the VM."""
    registry = default_workload_registry()
    phases: Dict[str, float] = {name: 0.0 for name in PHASES}
    holder: dict = {}

    def setup() -> None:
        workload = registry.create(workload_name, seed=seed, scale=scale)
        profiler = tool._make_profiler() if capture else None
        vm = tool.make_vm(profiler=profiler)
        if gc_threshold_bytes is not None:
            vm.gc_threshold_bytes = gc_threshold_bytes
        holder["vm"] = vm
        holder["workload"] = workload

    _pygc.collect()
    _pygc.disable()
    try:
        _phase_timed(setup, phases, "setup")
        vm = holder["vm"]
        workload = holder["workload"]
        _phase_timed(lambda: workload.run(vm), phases, "run")
        _phase_timed(vm.finish, phases, "finish")
        if capture:
            def report() -> None:
                profile_report = build_report(vm.profiler, vm.timeline,
                                              vm.contexts)
                tool.engine.evaluate(profile_report)

            _phase_timed(report, phases, "report")
    finally:
        _pygc.enable()
    return phases, vm


def _bench(name: str, tool: Chameleon, workload_name: str, scale: float,
           seed: int, repeats: int, capture: bool,
           gc_threshold_bytes: Optional[int] = None) -> BenchRecord:
    walls: List[float] = []
    all_phases: List[Dict[str, float]] = []
    vm = None
    for _ in range(max(repeats, 1)):
        phases, vm = _run_once(tool, workload_name, scale, seed, capture,
                               gc_threshold_bytes=gc_threshold_bytes)
        all_phases.append(phases)
        walls.append(sum(phases.values()))
    median = median_index(walls)
    return BenchRecord(
        name=name,
        workload=workload_name,
        capture=capture,
        repeats=max(repeats, 1),
        wall_seconds=walls[median],
        phases=all_phases[median],
        ticks=vm.now,
        gc_cycles=vm.timeline.cycle_count,
        allocated_objects=vm.heap.total_allocated_objects,
        repeat_walls=walls,
    )


def _build_mark_heavy_heap(seed: int, scale: float):
    """Synthetic object graph that stresses the mark closure.

    Three shapes, each the worst case for a different part of the loop:
    a *deep* chain (maximum frontier rounds), a *wide* fan-out (maximum
    single-round frontier), and a *cyclic* ring with random chords
    (revisit pressure on the marked-set membership test).  A slab of
    unreachable objects gives the sweeper real work too.
    """
    import random

    from repro.memory.heap import SimHeap

    rng = random.Random(seed)
    heap = SimHeap()
    n = max(200, int(6000 * scale))

    chain = [heap.allocate("Deep", 16) for _ in range(n)]
    for parent, child in zip(chain, chain[1:]):
        parent.add_ref(child.obj_id)
    heap.add_root(chain[0])

    hub = heap.allocate("Hub", 16)
    heap.add_root(hub)
    for _ in range(n):
        hub.add_ref(heap.allocate("Wide", 16).obj_id)

    ring = [heap.allocate("Ring", 16) for _ in range(n)]
    for position, obj in enumerate(ring):
        obj.add_ref(ring[(position + 1) % n].obj_id)
    for _ in range(n // 4):
        ring[rng.randrange(n)].add_ref(ring[rng.randrange(n)].obj_id)
    heap.add_root(ring[0])

    for _ in range(n // 2):
        heap.allocate("Garbage", 16)
    return heap


def _bench_gc_mark_heavy(scale: float, seed: int, repeats: int,
                         cycles: int = 8) -> BenchRecord:
    """Mark-loop microbenchmark over the synthetic heap shapes.

    Runs ``cycles`` back-to-back collections on the graph from
    :func:`_build_mark_heavy_heap` (with a little churn between cycles
    so every cycle re-marks), charging into a plain counter.  Uses the
    GC core selected by ``ToolConfig.gc_core`` / ``REPRO_GC_CORE``, so
    core-vs-core wall comparisons come for free; the recorded ticks are
    pure counts and identical across cores.
    """
    from repro.memory.gc import MarkSweepGC

    core = ToolConfig().gc_core
    walls: List[float] = []
    ticks = 0
    allocated = 0
    for _ in range(max(repeats, 1)):
        heap = _build_mark_heavy_heap(seed, scale)
        charged: List[int] = []
        gc = MarkSweepGC(heap, charge=charged.append, core=core)
        _pygc.collect()
        _pygc.disable()
        try:
            start = time.perf_counter()
            for cycle in range(cycles):
                gc.collect(tick=cycle)
                for _ in range(64):
                    heap.allocate("Churn", 16)
            walls.append(time.perf_counter() - start)
        finally:
            _pygc.enable()
        ticks = sum(charged)
        allocated = heap.total_allocated_objects
    wall = walls[median_index(walls)]
    phases = {name: 0.0 for name in PHASES}
    phases["run"] = wall
    return BenchRecord(
        name="gc_mark_heavy",
        workload="synthetic",
        capture=False,
        repeats=max(repeats, 1),
        wall_seconds=wall,
        phases=phases,
        ticks=ticks,
        gc_cycles=cycles,
        allocated_objects=allocated,
        repeat_walls=walls,
    )


def _bench_op_dispatch_heavy(scale: float, repeats: int,
                             vm_core: Optional[str] = None) -> BenchRecord:
    """Operation-dispatch microbenchmark: read-dense wrapper traffic.

    A handful of long-lived collections take a large burst of O(1)
    recorded operations (list get/size/is_empty, map get/contains_key)
    under profiling, so the per-operation pipeline -- tick charge, op
    counter, size watermark, impl dispatch -- dominates the wall clock
    instead of allocation or impl work.  This is the configuration the
    ``vm_core`` fast path targets; run with ``vm_core`` overridden to
    compare cores on identical simulated work (the recorded ticks are
    byte-identical across cores).
    """
    from repro.collections.wrappers import ChameleonList, ChameleonMap

    n_ops = max(1000, int(160_000 * scale))
    config = ToolConfig() if vm_core is None else ToolConfig(vm_core=vm_core)
    tool = Chameleon(config)
    walls: List[float] = []
    vm = None
    for _ in range(max(repeats, 1)):
        vm = tool.make_vm(profiler=tool._make_profiler())
        _pygc.collect()
        _pygc.disable()
        try:
            start = time.perf_counter()
            lst = ChameleonList(vm)
            mapping = ChameleonMap(vm)
            for i in range(64):
                lst.add(i)
                mapping.put(i, i)
            for i in range(n_ops):
                lst.get(i & 63)
                lst.size()
                lst.is_empty()
                mapping.get(i & 63)
                mapping.contains_key(i & 63)
                lst.get((i + 7) & 63)
            vm.finish()
            walls.append(time.perf_counter() - start)
        finally:
            _pygc.enable()
    wall = walls[median_index(walls)]
    phases = {name: 0.0 for name in PHASES}
    phases["run"] = wall
    return BenchRecord(
        name="op_dispatch_heavy",
        workload="synthetic",
        capture=True,
        repeats=max(repeats, 1),
        wall_seconds=wall,
        phases=phases,
        ticks=vm.now,
        gc_cycles=vm.timeline.cycle_count,
        allocated_objects=vm.heap.total_allocated_objects,
        repeat_walls=walls,
    )


def run_suite_section(scale: float = 0.1, resolution: int = 16384,
                      jobs: int = 2) -> dict:
    """Measure the experiment-scheduler trajectory: the Fig. 6 + Fig. 7
    pair, serial (``jobs=1``, the reference path) versus fan-out on a
    ``jobs``-worker process pool, from a cold session cache each time.

    Returns the document's ``suite`` section: both wall times, the
    speedup, the serial pass's session-cache hit counts, the parallel
    pass's pool-overhead breakdown (spawn / worker / transfer / merge
    seconds from :class:`~repro.analysis.scheduler.SchedulerStats`), and
    whether the two rendered reports were byte-identical (the
    scheduler's determinism contract, asserted here on every perf run).

    The parallel pass shares sessions through a content-addressed
    :class:`~repro.analysis.index.SessionStore` in a temporary
    directory: workers are warmed up with it at pool creation, so each
    session crosses the process boundary once as a file instead of
    being re-pickled through every result queue.
    """
    import tempfile

    from repro.analysis import experiments
    from repro.analysis.scheduler import Scheduler

    experiments.reset_session_cache()
    start = time.perf_counter()
    serial = (experiments.run_fig6(scale=scale, resolution=resolution),
              experiments.run_fig7(scale=scale, resolution=resolution))
    serial_seconds = time.perf_counter() - start
    cache = experiments.get_session_cache()
    cache_hits, cache_misses = cache.hits, cache.misses

    experiments.reset_session_cache()
    with tempfile.TemporaryDirectory(prefix="chameleon-suite-") as store_dir:
        experiments.attach_session_store(store_dir)
        try:
            with Scheduler(jobs=jobs,
                           warmup=(experiments.warm_worker, (store_dir,)),
                           ) as scheduler:
                start = time.perf_counter()
                parallel = (
                    experiments.run_fig6(scale=scale, resolution=resolution,
                                         scheduler=scheduler),
                    experiments.run_fig7(scale=scale, resolution=resolution,
                                         scheduler=scheduler))
                parallel_seconds = time.perf_counter() - start
                overhead = scheduler.stats.as_dict()
        finally:
            experiments.attach_session_store(None)

    identical = all(s.render() == p.render()
                    for s, p in zip(serial, parallel))
    return {
        "scale": scale,
        "resolution": resolution,
        "jobs": jobs,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": (serial_seconds / parallel_seconds
                    if parallel_seconds else 0.0),
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "identical": identical,
        "overhead": overhead,
    }


def run_vm_cores_section(scale: float = 0.2, repeats: int = 3,
                         seed: int = 2009) -> dict:
    """Measure the operation-pipeline cores against each other.

    Runs the paper's allocation-dense extreme (``pmd`` with capture on)
    and the dispatch-dense synthetic (:func:`_bench_op_dispatch_heavy`)
    under ``vm_core="reference"`` and ``vm_core="fast"`` on identical
    simulated work, and reports both wall clocks, the speedup, and
    whether the virtual ticks matched -- they must; a tick divergence
    here is a correctness bug, not a perf result.

    The section records ``cpu_count`` because the wall numbers are only
    gateable on a multi-core runner: on a single shared core the
    run-to-run variance (frequency scaling, steal time) routinely
    exceeds the effect being measured, which is exactly the
    skip-with-reason case CI implements.
    """
    benchmarks: Dict[str, dict] = {}
    pairs = [
        ("pmd_capture_on",
         lambda core: _bench("pmd_capture_on",
                             Chameleon(ToolConfig(vm_core=core)), "pmd",
                             scale, seed, repeats, capture=True)),
        ("op_dispatch_heavy",
         lambda core: _bench_op_dispatch_heavy(scale, repeats,
                                               vm_core=core)),
    ]
    for name, bench in pairs:
        reference = bench("reference")
        fast = bench("fast")
        benchmarks[name] = {
            "reference_wall": reference.wall_seconds,
            "fast_wall": fast.wall_seconds,
            "speedup": (reference.wall_seconds / fast.wall_seconds
                        if fast.wall_seconds else 0.0),
            "ticks": reference.ticks,
            "ticks_identical": reference.ticks == fast.ticks,
        }
    return {
        "scale": scale,
        "seed": seed,
        "repeats": max(repeats, 1),
        "cpu_count": os.cpu_count() or 1,
        "benchmarks": benchmarks,
    }


def run_suite(scale: float = 0.2, repeats: int = 3, seed: int = 2009,
              workloads: Tuple[str, ...] = DEFAULT_WORKLOADS,
              include_gc_heavy: bool = True,
              cold_caches: bool = False,
              suite_jobs: Optional[int] = None,
              suite_scale: float = 0.1,
              suite_resolution: int = 16384,
              include_vm_cores: bool = True) -> dict:
    """Run the full suite; returns the ``BENCH_chameleon.json`` document.

    Args:
        scale: Workload scale factor for every benchmark.
        repeats: Runs per benchmark; the median total is reported and
            every repeat recorded.
        seed: Workload RNG seed.
        workloads: Registry names to measure capture-on/off.
        include_gc_heavy: Also run a small-GC-threshold configuration
            that multiplies collection cycles (stressing mark/account/
            sweep rather than the allocation path).
        cold_caches: Clear the allocation-context capture memo first, so
            the run measures cold-start rather than steady-state capture.
        suite_jobs: When set (> 1), also measure the experiment-scheduler
            section (:func:`run_suite_section`) at this parallelism and
            record it under the document's ``suite`` key.
        suite_scale: Workload scale for the scheduler section.
        suite_resolution: Min-heap search resolution for the scheduler
            section.
        include_vm_cores: Also measure the reference-vs-fast
            operation-pipeline comparison (:func:`run_vm_cores_section`)
            and record it under the document's ``vm_cores`` key.
    """
    if cold_caches:
        clear_capture_caches()
    tool = Chameleon(ToolConfig())
    records: List[BenchRecord] = []
    for workload_name in workloads:
        for capture in (True, False):
            suffix = "capture_on" if capture else "capture_off"
            records.append(_bench(f"{workload_name}_{suffix}", tool,
                                  workload_name, scale, seed, repeats,
                                  capture))
    if include_gc_heavy:
        records.append(_bench("gc_heavy", tool, workloads[0], scale, seed,
                              repeats, capture=False,
                              gc_threshold_bytes=16 * 1024))
        records.append(_bench_gc_mark_heavy(scale, seed, repeats))
        records.append(_bench_op_dispatch_heavy(scale, repeats))
    doc = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "python": sys.version.split()[0],
        "generated_at": time.time(),
        "scale": scale,
        "seed": seed,
        "repeats": max(repeats, 1),
        "benchmarks": [record.to_dict() for record in records],
    }
    if suite_jobs is not None and suite_jobs > 1:
        doc["suite"] = run_suite_section(scale=suite_scale,
                                         resolution=suite_resolution,
                                         jobs=suite_jobs)
    if include_vm_cores:
        doc["vm_cores"] = run_vm_cores_section(scale=scale, repeats=repeats,
                                               seed=seed)
    return doc


# ----------------------------------------------------------------------
# Schema validation (what CI smoke-checks)
# ----------------------------------------------------------------------
_TOP_LEVEL_FIELDS = {
    "schema": str,
    "schema_version": int,
    "python": str,
    "generated_at": (int, float),
    "scale": (int, float),
    "seed": int,
    "repeats": int,
    "benchmarks": list,
}

_RECORD_FIELDS = {
    "name": str,
    "workload": str,
    "capture": bool,
    "repeats": int,
    "wall_seconds": (int, float),
    "phases": dict,
    "ticks": int,
    "gc_cycles": int,
    "allocated_objects": int,
}

#: Schema of the optional (v4+) top-level ``vm_cores`` section.
_VM_CORES_FIELDS = {
    "scale": (int, float),
    "seed": int,
    "repeats": int,
    "cpu_count": int,
    "benchmarks": dict,
}

#: Schema of each entry in ``vm_cores.benchmarks``.
_VM_CORES_BENCH_FIELDS = {
    "reference_wall": (int, float),
    "fast_wall": (int, float),
    "speedup": (int, float),
    "ticks": int,
    "ticks_identical": bool,
}

#: Schema of the optional (v2+) top-level ``suite`` section.
_SUITE_FIELDS = {
    "scale": (int, float),
    "resolution": int,
    "jobs": int,
    "serial_seconds": (int, float),
    "parallel_seconds": (int, float),
    "speedup": (int, float),
    "cache_hits": int,
    "cache_misses": int,
    "identical": bool,
}

#: Schema of the optional (v3+) ``suite.overhead`` breakdown.  Mirrors
#: :meth:`repro.analysis.scheduler.SchedulerStats.as_dict`.
_OVERHEAD_FIELDS = {
    "jobs_executed": int,
    "spawn_seconds": (int, float),
    "worker_seconds": (int, float),
    "transfer_seconds": (int, float),
    "merge_seconds": (int, float),
}


def validate_document(doc: object) -> None:
    """Raise ``ValueError`` describing every way ``doc`` violates the
    ``BENCH_chameleon.json`` schema; return silently when valid."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        raise ValueError("BENCH document must be a JSON object")
    for key, expected in _TOP_LEVEL_FIELDS.items():
        if key not in doc:
            problems.append(f"missing top-level field {key!r}")
        elif not isinstance(doc[key], expected):
            problems.append(f"field {key!r} has type "
                            f"{type(doc[key]).__name__}")
    if doc.get("schema") not in (None, SCHEMA):
        problems.append(f"schema is {doc['schema']!r}, expected {SCHEMA!r}")
    if isinstance(doc.get("schema_version"), int) \
            and doc["schema_version"] > SCHEMA_VERSION:
        problems.append(f"schema_version {doc['schema_version']} is newer "
                        f"than supported {SCHEMA_VERSION}")
    seen = set()
    for position, record in enumerate(doc.get("benchmarks") or []):
        if not isinstance(record, dict):
            problems.append(f"benchmarks[{position}] is not an object")
            continue
        label = record.get("name", f"#{position}")
        for key, expected in _RECORD_FIELDS.items():
            if key not in record:
                problems.append(f"benchmark {label}: missing field {key!r}")
            elif not isinstance(record[key], expected) \
                    or (expected is int and isinstance(record[key], bool)):
                problems.append(f"benchmark {label}: field {key!r} has "
                                f"type {type(record[key]).__name__}")
        if isinstance(record.get("wall_seconds"), (int, float)) \
                and record["wall_seconds"] < 0:
            problems.append(f"benchmark {label}: negative wall_seconds")
        if isinstance(record.get("phases"), dict):
            for phase, seconds in record["phases"].items():
                if not isinstance(seconds, (int, float)) or seconds < 0:
                    problems.append(f"benchmark {label}: phase {phase!r} "
                                    f"is not a non-negative number")
        walls = record.get("repeat_walls")
        if walls is not None:
            # Optional list (schema v4+): v3 records without it stay
            # valid.
            if not isinstance(walls, list) \
                    or any(not isinstance(w, (int, float)) or w < 0
                           for w in walls):
                problems.append(f"benchmark {label}: repeat_walls is not "
                                f"a list of non-negative numbers")
        name = record.get("name")
        if name in seen:
            problems.append(f"duplicate benchmark name {name!r}")
        seen.add(name)
    if not doc.get("benchmarks"):
        problems.append("benchmarks list is empty")
    suite = doc.get("suite")
    if suite is not None:
        # Optional section (schema v2+): absent in v1 documents, which
        # therefore stay valid.
        if not isinstance(suite, dict):
            problems.append("suite section is not an object")
        else:
            for key, expected in _SUITE_FIELDS.items():
                if key not in suite:
                    problems.append(f"suite: missing field {key!r}")
                elif not isinstance(suite[key], expected) \
                        or (expected is int and isinstance(suite[key],
                                                           bool)):
                    problems.append(f"suite: field {key!r} has type "
                                    f"{type(suite[key]).__name__}")
            overhead = suite.get("overhead")
            if overhead is not None:
                # Optional breakdown (schema v3+): v2 suites without it
                # stay valid.
                if not isinstance(overhead, dict):
                    problems.append("suite.overhead is not an object")
                else:
                    for key, expected in _OVERHEAD_FIELDS.items():
                        if key not in overhead:
                            problems.append(
                                f"suite.overhead: missing field {key!r}")
                        elif not isinstance(overhead[key], expected) \
                                or (expected is int
                                    and isinstance(overhead[key], bool)):
                            problems.append(
                                f"suite.overhead: field {key!r} has type "
                                f"{type(overhead[key]).__name__}")
                        elif overhead[key] < 0:
                            problems.append(
                                f"suite.overhead: field {key!r} is "
                                f"negative")
    vm_cores = doc.get("vm_cores")
    if vm_cores is not None:
        # Optional section (schema v4+): absent in older documents,
        # which therefore stay valid.
        if not isinstance(vm_cores, dict):
            problems.append("vm_cores section is not an object")
        else:
            for key, expected in _VM_CORES_FIELDS.items():
                if key not in vm_cores:
                    problems.append(f"vm_cores: missing field {key!r}")
                elif not isinstance(vm_cores[key], expected) \
                        or (expected is int
                            and isinstance(vm_cores[key], bool)):
                    problems.append(f"vm_cores: field {key!r} has type "
                                    f"{type(vm_cores[key]).__name__}")
            for name, entry in (vm_cores.get("benchmarks") or {}).items():
                if not isinstance(entry, dict):
                    problems.append(f"vm_cores benchmark {name!r} is not "
                                    f"an object")
                    continue
                for key, expected in _VM_CORES_BENCH_FIELDS.items():
                    if key not in entry:
                        problems.append(f"vm_cores benchmark {name!r}: "
                                        f"missing field {key!r}")
                    elif not isinstance(entry[key], expected) \
                            or (expected is int
                                and isinstance(entry[key], bool)):
                        problems.append(
                            f"vm_cores benchmark {name!r}: field {key!r} "
                            f"has type {type(entry[key]).__name__}")
    if problems:
        raise ValueError("invalid BENCH document: " + "; ".join(problems))


def compare(old_doc: dict, new_doc: dict) -> Dict[str, float]:
    """Per-benchmark new/old wall-clock ratios (<1 means faster).

    Benchmarks present in only one document are skipped; ticks are also
    checked -- a tick mismatch on the same benchmark name means the two
    documents measured different simulated work and the wall ratio is
    meaningless, so it is reported as ``float('nan')``.
    """
    old_by_name = {r["name"]: r for r in old_doc.get("benchmarks", [])}
    ratios: Dict[str, float] = {}
    for record in new_doc.get("benchmarks", []):
        old = old_by_name.get(record["name"])
        if old is None or not old.get("wall_seconds"):
            continue
        if old.get("ticks") != record.get("ticks"):
            ratios[record["name"]] = float("nan")
        else:
            ratios[record["name"]] = (record["wall_seconds"]
                                      / old["wall_seconds"])
    return ratios


def tick_divergences(old_doc: dict, new_doc: dict) -> List[Tuple[str, int,
                                                                 int]]:
    """Benchmarks whose simulated ticks differ between two documents.

    Returns ``(name, old_ticks, new_ticks)`` triples in new-document
    order.  A non-empty list means the documents measured *different
    simulated work* -- a baseline comparison over them is meaningless
    and the CLI refuses it, naming each offender with both tick values.
    """
    old_by_name = {r["name"]: r for r in old_doc.get("benchmarks", [])}
    diverged = []
    for record in new_doc.get("benchmarks", []):
        old = old_by_name.get(record["name"])
        if old is not None and old.get("ticks") != record.get("ticks"):
            diverged.append((record["name"], old.get("ticks"),
                             record.get("ticks")))
    return diverged


def render_summary(doc: dict) -> str:
    """Human-readable table of a BENCH document."""
    lines = [f"perf suite (scale={doc['scale']}, repeats={doc['repeats']}, "
             f"python {doc['python']})",
             f"{'benchmark':<20} {'wall s':>9} {'run s':>9} {'ticks':>12} "
             f"{'GCs':>5} {'allocs':>9}"]
    for record in doc["benchmarks"]:
        lines.append(
            f"{record['name']:<20} {record['wall_seconds']:>9.4f} "
            f"{record['phases'].get('run', 0.0):>9.4f} "
            f"{record['ticks']:>12} {record['gc_cycles']:>5} "
            f"{record['allocated_objects']:>9}")
    vm_cores = doc.get("vm_cores")
    if vm_cores is not None:
        for name, entry in vm_cores["benchmarks"].items():
            lines.append(
                f"vm_cores {name}: reference "
                f"{entry['reference_wall']:.4f}s, fast "
                f"{entry['fast_wall']:.4f}s ({entry['speedup']:.2f}x), "
                f"ticks {'identical' if entry['ticks_identical'] else 'DIVERGED'}")
        if vm_cores.get("cpu_count", 0) < 2:
            lines.append("  (single-core runner: vm_cores walls are "
                         "indicative only)")
    suite = doc.get("suite")
    if suite is not None:
        lines.append(
            f"suite (fig6+fig7, scale={suite['scale']}, "
            f"jobs={suite['jobs']}): serial {suite['serial_seconds']:.2f}s, "
            f"parallel {suite['parallel_seconds']:.2f}s "
            f"({suite['speedup']:.2f}x), session cache "
            f"{suite['cache_hits']} hits / {suite['cache_misses']} misses, "
            f"results {'identical' if suite['identical'] else 'DIVERGED'}")
        overhead = suite.get("overhead")
        if overhead is not None:
            lines.append(
                f"  pool overhead ({overhead['jobs_executed']} jobs): "
                f"spawn {overhead['spawn_seconds']:.3f}s, "
                f"worker {overhead['worker_seconds']:.2f}s, "
                f"transfer {overhead['transfer_seconds']:.3f}s, "
                f"merge {overhead['merge_seconds']:.3f}s")
    return "\n".join(lines)


def write_document(doc: dict, path: str) -> None:
    """Validate and write ``doc`` to ``path`` as pretty-printed JSON."""
    validate_document(doc)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_document(path: str) -> dict:
    """Load and validate a BENCH document from ``path``."""
    with open(path) as handle:
        doc = json.load(handle)
    validate_document(doc)
    return doc
