"""Process-pool experiment scheduler: deterministic fan-out for the suite.

The paper's evaluation is a bag of *independent, deterministic* simulated
runs: every Fig. 6 bar is three minimal-heap searches, every Fig. 7 bar a
search plus two timed runs, and every search is itself a chain of probe
runs.  Nothing about those runs shares state, so they parallelise
perfectly -- the same structure Darwinian Data Structure Selection and
MapReplay exploit to make search-over-benchmarks tractable.

This module supplies the execution layer:

* :class:`Job` / :class:`JobGraph` -- named work units with optional
  dependency edges, validated for cycles and duplicates.
* :class:`Scheduler` -- runs a graph either **in-process** (``jobs=1``,
  the reference path: plain sequential calls, no pickling, no pool) or on
  a persistent ``multiprocessing`` worker pool (``jobs>1``).

The pool is created once per :class:`Scheduler` lifetime and reused
across every :meth:`Scheduler.run` call; a ``warmup`` hook runs once in
each worker at pool creation (pin the hash seed, attach the shared
session store, pre-import the tool stack), so per-job latency is pure
work.  Execution streams: jobs are submitted the moment their
dependencies resolve and results are merged as they arrive -- there is
no wave barrier, so one slow job no longer stalls unrelated ready work.
Per-run overhead (pool spawn, in-worker wall, transfer, merge) is
accumulated in :attr:`Scheduler.stats` so the perf harness can record a
measured breakdown instead of asserting the win.

Determinism contract: results are merged in job-insertion order, forked
workers share the parent interpreter's hash seed (so str/bytes hashing
-- which the simulated hash tables' tick counts depend on -- behaves
identically in the serial reference and in every worker), and every job
must be a pure function of its (picklable) arguments.  Under that
contract the output of ``Scheduler(jobs=n).run(graph)`` is identical for
every ``n`` -- the experiment runners and their tests rely on it.
Reproducibility *across program invocations* additionally requires
launching the whole program under a fixed ``PYTHONHASHSEED``, exactly as
for the serial suite (see PR 1's note in CHANGES.md).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Job", "JobGraph", "JobError", "Scheduler", "SchedulerStats"]

#: Hash seed exported into every worker's environment.  A forked worker
#: already shares the parent's live hash seed (that is what keeps worker
#: runs identical to the serial reference); the export only pins any
#: *further* interpreters a job might launch (grandchildren).  It cannot
#: pin a spawn-style worker's own hashing: the pool initializer runs
#: after interpreter startup, by which point the hash seed is fixed.
#: Spawn-style pools are therefore only allowed when the whole program
#: was launched under a fixed ``PYTHONHASHSEED`` (see
#: :meth:`Scheduler._ensure_pool`).
WORKER_HASHSEED = "2009"


class JobError(RuntimeError):
    """A job raised; carries the job id so failures are attributable."""

    def __init__(self, job_id: str, cause: BaseException) -> None:
        super().__init__(f"job {job_id!r} failed: "
                         f"{type(cause).__name__}: {cause}")
        self.job_id = job_id


@dataclass(frozen=True)
class Job:
    """One unit of work: a picklable top-level function plus arguments.

    When ``deps`` is non-empty the function receives one extra leading
    argument -- a dict mapping each dependency's id to its result --
    before ``args``.
    """

    job_id: str
    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    deps: Tuple[str, ...] = ()


class JobGraph:
    """An ordered collection of jobs with dependency edges."""

    def __init__(self) -> None:
        self._jobs: Dict[str, Job] = {}

    def add(self, job_id: str, fn: Callable[..., Any], *args: Any,
            deps: Sequence[str] = (), **kwargs: Any) -> Job:
        """Append a job; insertion order is the deterministic merge order."""
        if job_id in self._jobs:
            raise ValueError(f"duplicate job id {job_id!r}")
        job = Job(job_id=job_id, fn=fn, args=tuple(args),
                  kwargs=dict(kwargs), deps=tuple(deps))
        self._jobs[job_id] = job
        return job

    def add_job(self, job: Job) -> Job:
        """Append an already-built :class:`Job`."""
        if job.job_id in self._jobs:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        self._jobs[job.job_id] = job
        return job

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self):
        return iter(self._jobs.values())

    def job_ids(self) -> List[str]:
        """Job ids in insertion (merge) order."""
        return list(self._jobs)

    def waves(self) -> List[List[Job]]:
        """Topological execution waves, insertion-ordered within a wave.

        Raises ``ValueError`` on unknown dependencies or cycles.
        """
        for job in self._jobs.values():
            for dep in job.deps:
                if dep not in self._jobs:
                    raise ValueError(f"job {job.job_id!r} depends on "
                                     f"unknown job {dep!r}")
        done: set = set()
        remaining = dict(self._jobs)
        waves: List[List[Job]] = []
        while remaining:
            wave = [job for job in remaining.values()
                    if all(dep in done for dep in job.deps)]
            if not wave:
                cycle = ", ".join(sorted(remaining))
                raise ValueError(f"dependency cycle among jobs: {cycle}")
            waves.append(wave)
            for job in wave:
                done.add(job.job_id)
                del remaining[job.job_id]
        return waves


@dataclass
class SchedulerStats:
    """Accumulated overhead breakdown across a scheduler's lifetime.

    All values are wall-clock seconds measured by the parent (worker
    wall is measured in-worker and shipped back with each result):

    * ``spawn_seconds`` -- creating the worker pool (once per scheduler;
      worker warmup runs asynchronously and surfaces as first-job
      transfer time).
    * ``worker_seconds`` -- sum of in-worker job execution wall time.
    * ``transfer_seconds`` -- sum over jobs of (submit-to-result-arrival
      time minus in-worker wall): argument pickling, queue wait, and
      result shipping.
    * ``merge_seconds`` -- parent-side result folding and ready-set
      bookkeeping.
    """

    jobs_executed: int = 0
    spawn_seconds: float = 0.0
    worker_seconds: float = 0.0
    transfer_seconds: float = 0.0
    merge_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready snapshot (what the BENCH suite section records)."""
        return {
            "jobs_executed": self.jobs_executed,
            "spawn_seconds": self.spawn_seconds,
            "worker_seconds": self.worker_seconds,
            "transfer_seconds": self.transfer_seconds,
            "merge_seconds": self.merge_seconds,
        }


def _pool_initializer(hashseed: str,
                      warmup_fn: Optional[Callable[..., Any]] = None,
                      warmup_args: Tuple = ()) -> None:
    """Pin the worker's environment for deterministic grandchildren,
    then run the caller's warmup hook (shared config / session store /
    pre-imports) once per worker."""
    os.environ["PYTHONHASHSEED"] = hashseed
    if warmup_fn is not None:
        warmup_fn(*warmup_args)


def _invoke(fn: Callable[..., Any], args: Tuple, kwargs: Dict[str, Any],
            dep_results: Optional[Dict[str, Any]]) -> Any:
    """Top-level worker entry point (must stay picklable)."""
    if dep_results is not None:
        return fn(dep_results, *args, **kwargs)
    return fn(*args, **kwargs)


def _invoke_timed(fn: Callable[..., Any], args: Tuple,
                  kwargs: Dict[str, Any],
                  dep_results: Optional[Dict[str, Any]]
                  ) -> Tuple[Any, float]:
    """Pool-mode entry point: the job's result plus its in-worker wall
    time, so the parent can split transfer overhead from real work."""
    start = time.perf_counter()
    result = _invoke(fn, args, kwargs, dep_results)
    return result, time.perf_counter() - start


class Scheduler:
    """Executes a :class:`JobGraph`, serially or on a process pool.

    ``jobs=1`` is the pure in-process reference path: no pool is created,
    no argument is pickled, and execution order is exactly the graph's
    topological insertion order.  ``jobs>1`` runs jobs on a *persistent*
    ``multiprocessing`` pool (``fork`` start method where available, so
    workers inherit the parent's interned state), created once per
    scheduler lifetime, warmed by the optional ``warmup`` hook, and
    reused across every :meth:`run`.  Jobs are submitted as soon as
    their dependencies resolve and merged as they complete (no wave
    barrier); the returned mapping is nonetheless always in job-insertion
    order, so callers observe identical results at any parallelism.

    ``warmup`` is a picklable top-level function (or ``(fn, args)``
    tuple) run once in each worker at pool creation -- attach the shared
    session store, pre-import the workload stack, etc.
    """

    def __init__(self, jobs: int = 1,
                 hashseed: str = WORKER_HASHSEED,
                 warmup: Optional[Any] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self._hashseed = hashseed
        if warmup is None:
            self._warmup_fn, self._warmup_args = None, ()
        elif callable(warmup):
            self._warmup_fn, self._warmup_args = warmup, ()
        else:
            self._warmup_fn, self._warmup_args = warmup[0], tuple(warmup[1])
        self._pool = None
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            if "fork" in methods:
                # Forked workers share the parent's live hash seed, so
                # worker runs match the serial reference unconditionally.
                context = multiprocessing.get_context("fork")
            else:
                # Spawn-style workers re-run interpreter startup, which
                # fixes their hash seed from the *environment* -- the
                # pool initializer runs afterwards and cannot pin it.
                # Unless the whole program (parent included) is running
                # under a fixed PYTHONHASHSEED, jobs>1 results would
                # silently diverge from the serial reference, so fail
                # fast instead.
                if os.environ.get("PYTHONHASHSEED") is None:
                    raise RuntimeError(
                        "Scheduler(jobs>1) needs the 'fork' start method "
                        "or a program launched under a fixed "
                        "PYTHONHASHSEED: spawned workers fix their hash "
                        "seed at interpreter startup, before the pool "
                        "initializer runs, so worker tick counts could "
                        "silently diverge from the serial reference")
                context = multiprocessing.get_context()
            spawn_start = time.perf_counter()
            self._pool = context.Pool(
                processes=self.jobs,
                initializer=_pool_initializer,
                initargs=(self._hashseed, self._warmup_fn,
                          self._warmup_args))
            self.stats.spawn_seconds += time.perf_counter() - spawn_start
        return self._pool

    def close(self) -> None:
        """Graceful shutdown (idempotent): waits for outstanding work
        and lets workers run their cleanup (atexit hooks, coverage
        flushes) instead of killing them mid-write."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate(self) -> None:
        """Hard shutdown (idempotent): kill workers without waiting.
        Reserved for the error path -- on the happy path use
        :meth:`close` so workers are not killed mid-cleanup."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.terminate()
        else:
            self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, graph: JobGraph) -> Dict[str, Any]:
        """Execute ``graph``; returns ``{job_id: result}`` in insertion
        order regardless of completion order or parallelism."""
        waves = graph.waves()  # validates unknown deps and cycles
        results: Dict[str, Any] = {}
        if self.jobs == 1:
            for wave in waves:
                for job in wave:
                    results[job.job_id] = self._run_one(job, results)
            self.stats.jobs_executed += len(graph)
        else:
            self._run_streaming(graph, results)
        return {job_id: results[job_id] for job_id in graph.job_ids()}

    def _run_streaming(self, graph: JobGraph,
                       results: Dict[str, Any]) -> None:
        """Pool execution without wave barriers.

        Every job whose dependencies are resolved is in flight; results
        are folded in as they arrive (completion order), unblocking and
        submitting dependents immediately.  Only the per-job dependency
        *deltas* cross the process boundary -- each job ships its own
        arguments plus its direct dependencies' results, never a whole
        wave's state.
        """
        pool = self._ensure_pool()
        insertion_index = {job_id: i
                           for i, job_id in enumerate(graph.job_ids())}
        remaining_deps: Dict[str, int] = {}
        dependents: Dict[str, List[Job]] = {}
        ready: List[Job] = []
        for job in graph:
            remaining_deps[job.job_id] = len(job.deps)
            if job.deps:
                for dep in job.deps:
                    dependents.setdefault(dep, []).append(job)
            else:
                ready.append(job)

        cond = threading.Condition()
        arrivals: deque = deque()
        failures: List[Tuple[str, BaseException]] = []
        submit_times: Dict[str, float] = {}

        def submit(job: Job) -> None:
            deps = ({dep: results[dep] for dep in job.deps}
                    if job.deps else None)
            job_id = job.job_id

            def on_done(payload: Tuple[Any, float]) -> None:
                arrival = time.perf_counter()
                with cond:
                    arrivals.append((job_id, payload, arrival))
                    cond.notify()

            def on_error(exc: BaseException) -> None:
                with cond:
                    failures.append((job_id, exc))
                    cond.notify()

            submit_times[job_id] = time.perf_counter()
            pool.apply_async(
                _invoke_timed, (job.fn, job.args, dict(job.kwargs), deps),
                callback=on_done, error_callback=on_error)

        for job in ready:
            submit(job)

        stats = self.stats
        done = 0
        total = len(graph)
        while done < total:
            with cond:
                while not arrivals and not failures:
                    cond.wait()
                if failures:
                    job_id, exc = failures[0]
                    raise JobError(job_id, exc) from exc
                job_id, (result, worker_wall), arrival = arrivals.popleft()
            merge_start = time.perf_counter()
            results[job_id] = result
            stats.jobs_executed += 1
            stats.worker_seconds += worker_wall
            stats.transfer_seconds += max(
                0.0, (arrival - submit_times[job_id]) - worker_wall)
            newly_ready = []
            for dependent in dependents.get(job_id, ()):
                remaining_deps[dependent.job_id] -= 1
                if remaining_deps[dependent.job_id] == 0:
                    newly_ready.append(dependent)
            newly_ready.sort(key=lambda j: insertion_index[j.job_id])
            for job in newly_ready:
                submit(job)
            stats.merge_seconds += time.perf_counter() - merge_start
            done += 1

    def _run_one(self, job: Job, results: Dict[str, Any]) -> Any:
        deps = ({dep: results[dep] for dep in job.deps}
                if job.deps else None)
        try:
            return _invoke(job.fn, job.args, dict(job.kwargs), deps)
        except Exception as exc:
            raise JobError(job.job_id, exc) from exc

    def map(self, fn: Callable[..., Any],
            payloads: Sequence[Tuple],
            prefix: str = "map") -> List[Any]:
        """Run ``fn(*payload)`` for every payload; results in input order.

        The batch-probe primitive behind speculative bisection: each
        payload becomes an independent job.
        """
        graph = JobGraph()
        for index, payload in enumerate(payloads):
            graph.add(f"{prefix}:{index:04d}", fn, *payload)
        return list(self.run(graph).values())
