"""Plain-text rendering of experiment tables and series.

Every experiment runner in :mod:`repro.analysis.experiments` produces
structured rows; these helpers print them in the paper-vs-measured format
used by the benchmark harness and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = ["ExperimentRow", "render_table", "render_series",
           "render_fraction_chart", "format_pct"]


def format_pct(value: Optional[float]) -> str:
    """``0.52 -> '52.0%'``; ``None -> 'n/a'``."""
    if value is None:
        return "n/a"
    return f"{100.0 * value:.1f}%"


@dataclass
class ExperimentRow:
    """One benchmark's paper-vs-measured comparison."""

    benchmark: str
    metric: str
    paper: Optional[float]
    measured: float
    unit: str = "%"
    note: str = ""

    def render_values(self) -> tuple:
        if self.unit == "%":
            paper = format_pct(self.paper)
            measured = format_pct(self.measured)
        elif self.unit == "x":
            paper = f"{self.paper:.2f}x" if self.paper is not None else "n/a"
            measured = f"{self.measured:.2f}x"
        else:
            paper = f"{self.paper}" if self.paper is not None else "n/a"
            measured = f"{self.measured}"
        return paper, measured


def render_table(title: str, rows: Sequence[ExperimentRow]) -> str:
    """A fixed-width paper-vs-measured table."""
    lines = [title, "-" * len(title),
             f"{'benchmark':<16} {'metric':<26} {'paper':>10} "
             f"{'measured':>10}  note"]
    for row in rows:
        paper, measured = row.render_values()
        lines.append(f"{row.benchmark:<16} {row.metric:<26} {paper:>10} "
                     f"{measured:>10}  {row.note}")
    return "\n".join(lines)


def render_series(title: str, header: Sequence[str],
                  rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width numeric series (Fig. 2 / Fig. 8 style)."""
    widths = [max(len(str(h)), 9) for h in header]
    lines = [title, "-" * len(title),
             "  ".join(str(h).rjust(w) for h, w in zip(header, widths))]
    for row in rows:
        rendered = []
        for value, width in zip(row, widths):
            if isinstance(value, float):
                rendered.append(f"{value:.3f}".rjust(width))
            else:
                rendered.append(str(value).rjust(width))
        lines.append("  ".join(rendered))
    return "\n".join(lines)


def render_fraction_chart(series: Sequence[Sequence[float]],
                          width: int = 60) -> str:
    """ASCII rendering of a (cycle, live, used, core) fraction series.

    Each row draws the three nested Fig. 2 / Fig. 8 measures as stacked
    segments of one bar: ``#`` up to *core*, ``=`` up to *used*, ``-`` up
    to *live*.  Fractions are clamped to [0, 1].
    """
    if width < 10:
        raise ValueError("chart width must be at least 10 columns")
    lines = [f"{'cycle':>5}  |{'0%':<{width - 4}}100%|",
             f"{'':>5}  +{'-' * width}+"]
    for cycle, live, used, core in series:
        live = min(max(live, 0.0), 1.0)
        used = min(max(used, 0.0), live)
        core = min(max(core, 0.0), used)
        core_cols = round(core * width)
        used_cols = round(used * width)
        live_cols = round(live * width)
        bar = ("#" * core_cols
               + "=" * (used_cols - core_cols)
               + "-" * (live_cols - used_cols))
        lines.append(f"{cycle:>5}  |{bar:<{width}}|")
    lines.append(f"{'':>5}  +{'-' * width}+")
    lines.append(f"{'':>5}   # core   = used   - live "
                 "(fractions of live data)")
    return "\n".join(lines)
