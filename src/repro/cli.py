"""Command-line interface for the reproduction.

Mirrors how the paper's tool is used: run an application under semantic
profiling, read the ranked contexts and suggestions, apply the fixes and
compare, or regenerate any of the evaluation's tables and figures.

Examples::

    chameleon-repro list
    chameleon-repro profile tvla --scale 0.3 --top 5
    chameleon-repro optimize findbugs
    chameleon-repro online pmd --scale 0.3
    chameleon-repro experiment fig6 --scale 0.4 --jobs 4
    chameleon-repro experiment all --jobs 4 \\
        --session-cache benchmarks/runs/store
    chameleon-repro perf --scale 0.2 --repeats 3
    chameleon-repro perf --suite --jobs 4
    chameleon-repro perf --gate --gate-window 5
    chameleon-repro history
    chameleon-repro history tvla_capture_on --last 10
    chameleon-repro fuzz --adt all --seeds 50
    chameleon-repro fuzz --record tvla --scale 0.05
    chameleon-repro compile-trace tests/verify/corpus/tvla-map-000.json \\
        --rounds 3 --check --sanitize
    chameleon-repro compile-trace tests/verify/corpus/*.json --multi-tenant
    chameleon-repro lint --paths src/repro/workloads --format sarif \\
        --output lint.sarif
    chameleon-repro lint --drift /tmp/sessions.pkl --paths src

(Equivalently: ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List, Optional

from repro.analysis import experiments
from repro.core.chameleon import Chameleon
from repro.core.config import ToolConfig
from repro.core.online import OnlineChameleon
from repro.rules.engine import RuleEngine
from repro.workloads import default_workload_registry

__all__ = ["main", "build_parser", "default_runs_root"]


def default_runs_root() -> str:
    """Where run directories and ``runs.sqlite`` live by default."""
    return str(pathlib.Path(__file__).resolve().parents[2]
               / "benchmarks" / "runs")

_EXPERIMENTS = {
    "fig2": lambda args, sch: experiments.run_fig2(
        scale=args.scale).render(),
    "fig3": lambda args, sch: experiments.run_fig3(
        scale=args.scale).render(),
    "fig6": lambda args, sch: experiments.run_fig6(
        scale=args.scale, resolution=args.resolution,
        scheduler=sch).render(),
    "fig7": lambda args, sch: experiments.run_fig7(
        scale=args.scale, resolution=args.resolution,
        scheduler=sch).render(),
    "fig8": lambda args, sch: experiments.run_fig8(
        scale=args.scale).render(),
    "online": lambda args, sch: experiments.run_online(
        scale=args.scale).render(),
    "hybrid": lambda args, sch: experiments.run_hybrid_ablation(
        scale=args.scale).render(),
    "overhead": lambda args, sch: experiments.run_profiling_overhead(
        scale=args.scale).render(),
    "all": lambda args, sch: experiments.run_all(
        scale=args.scale, resolution=args.resolution, scheduler=sch),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="chameleon-repro",
        description="Chameleon (PLDI 2009) reproduction driver")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the bundled workloads")

    def add_gc_core_arg(p):
        # Exported as REPRO_GC_CORE / REPRO_VM_CORE before the command
        # runs, so they also reach scheduler workers (forked), ToolConfig
        # defaults and direct RuntimeEnvironment constructions.
        p.add_argument("--gc-core", choices=["reference", "fast", "vector"],
                       default=None,
                       help="mark/account core for the simulated GC "
                            "(byte-identical results; wall clock only; "
                            "default: $REPRO_GC_CORE or 'fast')")
        p.add_argument("--vm-core", choices=["reference", "fast"],
                       default=None,
                       help="operation-pipeline core for the runtime "
                            "(byte-identical results; wall clock only; "
                            "default: $REPRO_VM_CORE or 'fast')")

    def add_workload_args(p):
        p.add_argument("workload", help="workload name (see 'list')")
        p.add_argument("--scale", type=float, default=0.4,
                       help="workload scale factor (default 0.4)")
        p.add_argument("--seed", type=int, default=2009)
        add_gc_core_arg(p)

    profile = sub.add_parser(
        "profile", help="run under semantic profiling; print the report")
    add_workload_args(profile)
    profile.add_argument("--top", type=int, default=5,
                         help="contexts/suggestions to show")
    profile.add_argument("--fractions", action="store_true",
                         help="also print the per-GC-cycle fraction series")
    profile.add_argument("--json", action="store_true",
                         help="emit the report and suggestions as JSON")

    optimize = sub.add_parser(
        "optimize", help="profile, apply suggestions, compare before/after")
    add_workload_args(optimize)
    optimize.add_argument("--top", type=int, default=None,
                          help="apply only the top N suggestions")

    online = sub.add_parser(
        "online", help="run in fully automatic (online) mode")
    add_workload_args(online)
    online.add_argument("--retrofit", action="store_true",
                        help="also convert already-live instances")

    histogram = sub.add_parser(
        "histogram",
        help="jmap-style per-type heap snapshot (the pre-Chameleon view)")
    add_workload_args(histogram)
    histogram.add_argument("--limit", type=int, default=15,
                           help="rows to show")

    experiment = sub.add_parser(
        "experiment", help="regenerate a table/figure of the paper")
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS),
                            help="which artifact to regenerate")
    experiment.add_argument("--scale", type=float, default=0.4)
    experiment.add_argument("--resolution", type=int, default=8192,
                            help="min-heap search resolution in bytes")
    experiment.add_argument("--jobs", type=int, default=1,
                            help="worker processes for the experiment "
                                 "scheduler (1 = serial reference path)")
    experiment.add_argument("--session-cache", metavar="PATH", default=None,
                            help="spill the profiling-session cache here "
                                 "and reload it on later invocations; a "
                                 "directory (e.g. benchmarks/runs/store) "
                                 "uses the content-addressed per-entry "
                                 "store, a *.pkl path the legacy single "
                                 "pickle")
    experiment.add_argument("--runs-root", metavar="DIR", default=None,
                            help="write the manifest'd run directory and "
                                 "index the run here (default "
                                 "benchmarks/runs)")
    experiment.add_argument("--no-index", action="store_true",
                            help="skip writing a run directory and "
                                 "indexing this invocation")
    add_gc_core_arg(experiment)

    perf = sub.add_parser(
        "perf", help="wall-clock perf harness; emits BENCH_chameleon.json")
    perf.add_argument("--scale", type=float, default=0.2,
                      help="workload scale for every benchmark")
    perf.add_argument("--repeats", type=int, default=3,
                      help="runs per benchmark (the median wall clock "
                           "is reported; every repeat is recorded)")
    perf.add_argument("--seed", type=int, default=2009)
    perf.add_argument("--output", default=None, metavar="PATH",
                      help="write the JSON document here "
                           "(default benchmarks/perf/BENCH_chameleon.json)")
    perf.add_argument("--no-gc-heavy", action="store_true",
                      help="skip the GC-stress configuration")
    perf.add_argument("--no-vm-cores", action="store_true",
                      help="skip the reference-vs-fast operation-"
                           "pipeline comparison section")
    perf.add_argument("--check", metavar="PATH", default=None,
                      help="validate an existing BENCH json and exit")
    perf.add_argument("--baseline", metavar="PATH", default=None,
                      help="compare against a previous BENCH json "
                           "(single-file; prefer --gate, which compares "
                           "against the whole indexed history)")
    perf.add_argument("--gate", action="store_true",
                      help="fail (non-zero) when a benchmark's wall "
                           "clock regresses past the median of its "
                           "indexed history; refuses tick-diverged "
                           "history like --baseline")
    perf.add_argument("--gate-window", type=int, default=5, metavar="N",
                      help="indexed runs per benchmark the gate medians "
                           "over (default 5)")
    perf.add_argument("--gate-threshold", type=float, default=0.3,
                      metavar="F",
                      help="allowed wall-clock growth over the median "
                           "before the gate fails (default 0.3 = +30%%)")
    perf.add_argument("--runs-root", metavar="DIR", default=None,
                      help="write the manifest'd run directory and index "
                           "the run here (default benchmarks/runs)")
    perf.add_argument("--no-index", action="store_true",
                      help="skip writing a run directory and indexing "
                           "this invocation")
    perf.add_argument("--suite", action="store_true",
                      help="also benchmark the experiment scheduler "
                           "(fig6+fig7 serial vs parallel)")
    perf.add_argument("--jobs", type=int, default=4,
                      help="worker processes for the --suite section")
    perf.add_argument("--suite-scale", type=float, default=0.1,
                      help="workload scale for the --suite section")
    perf.add_argument("--suite-resolution", type=int, default=16384,
                      help="min-heap resolution for the --suite section")
    add_gc_core_arg(perf)

    history = sub.add_parser(
        "history", help="query the cross-run index: per-benchmark "
                        "trends, one benchmark's series, or ingest an "
                        "existing BENCH document")
    history.add_argument("benchmark", nargs="?", default=None,
                         help="benchmark name to print the indexed "
                              "series for (default: trend summary of "
                              "every benchmark)")
    history.add_argument("--runs-root", metavar="DIR", default=None,
                         help="runs root holding runs.sqlite (default "
                              "benchmarks/runs)")
    history.add_argument("--last", type=int, default=None, metavar="N",
                         help="limit a benchmark series to the newest N "
                              "rows")
    history.add_argument("--window", type=int, default=5, metavar="N",
                         help="runs the trend summary medians over "
                              "(default 5)")
    history.add_argument("--ingest", metavar="BENCH_JSON", default=None,
                         help="index an existing BENCH document as a new "
                              "run (seeds gating history, e.g. in CI)")

    lint = sub.add_parser(
        "lint", help="static analysis: check rule sets, lint collection "
                     "usage in sources, diff against a profiling session")
    lint.add_argument("--rules", nargs="*", metavar="FILE", default=None,
                      help="rule files to check (one Fig. 4 rule per "
                           "line; default: the builtin Table 2 set)")
    lint.add_argument("--paths", nargs="*", metavar="PATH", default=None,
                      help="Python files/directories to lint for "
                           "collection usage")
    lint.add_argument("--drift", metavar="SESSION", default=None,
                      help="session-cache spill (see 'experiment "
                           "--session-cache'; a store directory or a "
                           "legacy pickle) to diff static predictions "
                           "against")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text", help="report format (default text)")
    lint.add_argument("--output", metavar="PATH", default=None,
                      help="write the report here instead of stdout")
    lint.add_argument("--fail-on", choices=["warning", "error"],
                      default="error",
                      help="exit 1 when a finding at or above this "
                           "severity exists (default error)")
    lint.add_argument("--no-overlap", action="store_true",
                      help="skip the pairwise overlap/shadowing checks")
    lint.add_argument("--interproc", action="store_true",
                      help="run the interprocedural interval analysis "
                           "over --paths: quantitative per-site rule "
                           "verdicts through the real rule engine "
                           "(refines --drift into a three-way report)")
    lint.add_argument("--signatures", metavar="PATH", default=None,
                      help="write the interprocedural per-site op-mix "
                           "signatures (chameleon-sig JSON) here; "
                           "implies --interproc")
    lint.add_argument("--show-waived", action="store_true",
                      help="list per-id counts of findings silenced by "
                           "'# lint: ignore[...]' comments")

    fuzz = sub.add_parser(
        "fuzz", help="differential trace fuzzer: replay generated or "
                     "recorded traces against every implementation")
    fuzz.add_argument("--adt", choices=["list", "map", "set", "all"],
                      default="all", help="which ADT kind(s) to fuzz")
    fuzz.add_argument("--seeds", type=int, default=50,
                      help="trace seeds per ADT (default 50)")
    fuzz.add_argument("--budget", type=float, default=None, metavar="S",
                      help="wall-clock budget in seconds; stop cleanly "
                           "when exceeded")
    fuzz.add_argument("--ops", type=int, default=40,
                      help="operations per generated trace")
    fuzz.add_argument("--record", metavar="WORKLOAD", default=None,
                      help="instead of generating traces, record them "
                           "from this workload and diff the recording")
    fuzz.add_argument("--scale", type=float, default=0.05,
                      help="workload scale for --record")
    fuzz.add_argument("--seed", type=int, default=2009,
                      help="workload seed for --record")
    fuzz.add_argument("--save-corpus", metavar="DIR", default=None,
                      help="with --record, save the captured traces here")
    fuzz.add_argument("--out", metavar="DIR", default="fuzz-failures",
                      help="where shrunk repro scripts are written")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report failures without minimising them")
    fuzz.add_argument("--no-sanitize", action="store_true",
                      help="skip the heap sanitizer during replays")

    compile_trace = sub.add_parser(
        "compile-trace",
        help="compile recorded trace(s) into runnable workloads; "
             "optionally conformance-check against direct replay")
    compile_trace.add_argument("traces", nargs="+", metavar="TRACE",
                               help="trace JSON file(s) -- corpus entries, "
                                    "'fuzz --record --save-corpus' output "
                                    "or any repro.verify trace document")
    compile_trace.add_argument("--rounds", type=int, default=1,
                               help="rounds per compiled workload; rounds "
                                    "past the first are value-perturbed "
                                    "(default 1)")
    compile_trace.add_argument("--perturb", type=float, default=0.25,
                               help="per-value redraw probability for "
                                    "perturbed rounds (default 0.25)")
    compile_trace.add_argument("--seed", type=int, default=2009)
    compile_trace.add_argument("--impl", default=None, metavar="NAME",
                               help="run against this implementation "
                                    "instead of the trace's baseline")
    compile_trace.add_argument("--multi-tenant", action="store_true",
                               help="weave all given traces through one "
                                    "VM instead of running them one by "
                                    "one")
    compile_trace.add_argument("--check", action="store_true",
                               help="assert the compiled execution is "
                                    "tick- and outcome-identical to "
                                    "replay_trace of the source trace")
    compile_trace.add_argument("--sanitize", action="store_true",
                               help="attach the heap sanitizer to every "
                                    "compiled run")
    add_gc_core_arg(compile_trace)
    return parser


def _make_workload(args):
    registry = default_workload_registry()
    try:
        return registry.create(args.workload, seed=args.seed,
                               scale=args.scale)
    except KeyError:
        names = ", ".join(registry.names())
        raise SystemExit(
            f"unknown workload {args.workload!r}; available: {names}")


def _cmd_list(args) -> str:
    from repro.workloads.compiled import SCENARIOS

    registry = default_workload_registry()
    lines = ["bundled workloads:"]
    for name in registry.names():
        if name in SCENARIOS:
            continue
        workload = registry.create(name)
        lines.append(f"  {name:16s} {type(workload).__doc__.splitlines()[0]}")
    lines.append("")
    lines.append("scenario library (trace-compiled; see EXPERIMENTS.md):")
    for name in sorted(SCENARIOS):
        spec = SCENARIOS[name]
        lines.append(f"  {name:28s} [{spec.family}] {spec.summary}")
        lines.append(f"  {'':28s} source: "
                     + ", ".join(f"scenarios/{stem}.json"
                                 for stem in spec.sources))
    return "\n".join(lines)


def _cmd_profile(args) -> str:
    tool = Chameleon(ToolConfig())
    session = tool.profile(_make_workload(args))
    if args.json:
        import json

        return json.dumps(
            {"report": session.report.to_dict(top=args.top),
             "suggestions": [s.to_dict() for s in session.suggestions]},
            indent=2)
    parts = [session.report.render_top_contexts(args.top), "",
             RuleEngine.render(session.suggestions, limit=args.top)]
    if args.fractions:
        parts += ["", session.report.render_fractions()]
    parts += ["", f"run: {session.metrics.ticks} ticks, "
                  f"peak {session.metrics.peak_live_bytes} bytes, "
                  f"{session.metrics.gc_cycles} GC cycles"]
    return "\n".join(parts)


def _cmd_optimize(args) -> str:
    tool = Chameleon(ToolConfig())
    result = tool.optimize(_make_workload(args), top=args.top)
    return "\n".join([RuleEngine.render(result.session.suggestions,
                                        limit=args.top),
                      "", result.policy.render(), "", result.render()])


def _cmd_online(args) -> str:
    config = ToolConfig(online_retrofit_live=args.retrofit)
    result = OnlineChameleon(config).run(_make_workload(args))
    return result.render()


def _cmd_histogram(args) -> str:
    from repro.analysis.heapdump import heap_histogram, render_histogram

    tool = Chameleon(ToolConfig())
    vm, _ = tool.plain_run(_make_workload(args))
    rows = heap_histogram(vm)
    return ("Per-type heap snapshot at end of run (no ADT attribution,\n"
            "no allocation contexts -- compare with 'profile'):\n"
            + render_histogram(rows, limit=args.limit))


def _index_invocation(args, kind: str, command: List[str],
                      params: dict, results: dict, artifacts: dict,
                      wall_seconds: float,
                      benchmarks: Optional[List[dict]] = None):
    """Write this invocation's run directory and upsert it into the
    cross-run index; returns ``(run_id, runs_root)``.

    ``artifacts`` maps file name to text content; ``benchmarks`` (BENCH-
    record-shaped dicts) become one indexed row each.
    """
    from repro.analysis.index import RunDirectory, RunIndex

    runs_root = args.runs_root or default_runs_root()
    run = RunDirectory.create(runs_root, kind, command=command,
                              params=params,
                              config_fingerprint=ToolConfig().fingerprint())
    for name, text in artifacts.items():
        run.add_artifact(name, text)
    manifest_path = run.finalize(results=results, wall_seconds=wall_seconds)
    with RunIndex.at_root(runs_root) as index:
        index.record_run(run.manifest, manifest_path=manifest_path)
        for record in benchmarks or []:
            index.record_benchmark(run.run_id, record)
    return run.run_id, runs_root


def _cmd_experiment(args) -> str:
    from repro.analysis.scheduler import Scheduler

    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.session_cache:
        experiments.load_session_cache(args.session_cache)
    start = time.perf_counter()
    with Scheduler(jobs=args.jobs) as scheduler:
        output = _EXPERIMENTS[args.name](args, scheduler)
    wall_seconds = time.perf_counter() - start
    if args.session_cache:
        experiments.spill_session_cache(args.session_cache)
    if not args.no_index:
        cache = experiments.get_session_cache()
        run_id, _ = _index_invocation(
            args, "experiment", ["experiment", args.name],
            params={"name": args.name, "scale": args.scale,
                    "resolution": args.resolution, "jobs": args.jobs},
            results={"wall_seconds": wall_seconds,
                     "cache_hits": cache.hits,
                     "cache_misses": cache.misses},
            artifacts={"output.txt": output + "\n"},
            wall_seconds=wall_seconds,
            # Experiment wall clocks have no tick identity (many runs
            # fold into one number), so the row carries ticks=None and
            # is never gate-compared against perf benchmarks.
            benchmarks=[{"name": f"experiment:{args.name}",
                         "wall_seconds": wall_seconds}])
        output += f"\n\nindexed run {run_id}"
    return output


def _cmd_perf(args) -> str:
    import json

    from repro.analysis import perf

    if args.check is not None:
        try:
            perf.load_document(args.check)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"{args.check}: {exc}")
        return f"{args.check}: valid {perf.SCHEMA} v{perf.SCHEMA_VERSION}"

    if args.gate and args.no_index:
        raise SystemExit("--gate needs the index; drop --no-index")

    start = time.perf_counter()
    doc = perf.run_suite(scale=args.scale, repeats=args.repeats,
                         seed=args.seed,
                         include_gc_heavy=not args.no_gc_heavy,
                         suite_jobs=args.jobs if args.suite else None,
                         suite_scale=args.suite_scale,
                         suite_resolution=args.suite_resolution,
                         include_vm_cores=not args.no_vm_cores)
    wall_seconds = time.perf_counter() - start
    output = args.output
    if output is None:
        output = pathlib.Path(__file__).resolve().parents[2] \
            / "benchmarks" / "perf" / "BENCH_chameleon.json"
    pathlib.Path(output).parent.mkdir(parents=True, exist_ok=True)
    perf.write_document(doc, str(output))
    parts = [perf.render_summary(doc), "", f"wrote {output}"]

    run_id = None
    runs_root = None
    if not args.no_index:
        run_id, runs_root = _index_invocation(
            args, "perf", ["perf"],
            params={"scale": args.scale, "seed": args.seed,
                    "repeats": args.repeats,
                    "suite_jobs": args.jobs if args.suite else None},
            results={"benchmarks": {r["name"]: r["wall_seconds"]
                                    for r in doc["benchmarks"]},
                     "ticks": {r["name"]: r["ticks"]
                               for r in doc["benchmarks"]}},
            artifacts={"BENCH_chameleon.json":
                       json.dumps(doc, indent=2, sort_keys=True) + "\n",
                       "summary.txt": perf.render_summary(doc) + "\n"},
            wall_seconds=wall_seconds,
            benchmarks=doc["benchmarks"])
        parts.append(f"indexed run {run_id} under {runs_root}")

    if args.baseline is not None:
        baseline_doc = perf.load_document(args.baseline)
        diverged = perf.tick_divergences(baseline_doc, doc)
        if diverged:
            details = "; ".join(
                f"benchmark {name!r}: ticks {old_ticks} (baseline) vs "
                f"{new_ticks} (current)"
                for name, old_ticks, new_ticks in diverged)
            raise SystemExit(
                f"cannot compare against {args.baseline}: the documents "
                f"measured different simulated work -- {details}")
        ratios = perf.compare(baseline_doc, doc)
        parts.append("")
        parts.append(f"vs baseline {args.baseline}:")
        for name, ratio in sorted(ratios.items()):
            parts.append(f"  {name:<20} {ratio:.2f}x wall clock")

    if args.gate:
        from repro.analysis.index import (GateDivergenceError, RunIndex,
                                          gate_document)

        with RunIndex.at_root(runs_root) as index:
            try:
                report = gate_document(
                    index, doc, window=args.gate_window,
                    threshold=args.gate_threshold, exclude_run=run_id)
            except GateDivergenceError as exc:
                raise SystemExit(
                    f"cannot gate against {index.path}: {exc}")
        parts.append("")
        parts.append(report.render())
        if not report.ok:
            print("\n".join(parts))
            raise SystemExit(1)
    return "\n".join(parts)


def _cmd_history(args) -> str:
    from repro.analysis import perf
    from repro.analysis.index import (RunDirectory, RunIndex,
                                      render_history, render_trends)

    runs_root = args.runs_root or default_runs_root()
    if args.ingest is not None:
        import json

        try:
            doc = perf.load_document(args.ingest)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"{args.ingest}: {exc}")
        run = RunDirectory.create(
            runs_root, "perf", command=["history", "--ingest"],
            params={"scale": doc["scale"], "seed": doc["seed"],
                    "repeats": doc["repeats"], "ingested_from": args.ingest},
            config_fingerprint=ToolConfig().fingerprint())
        run.add_artifact("BENCH_chameleon.json",
                         json.dumps(doc, indent=2, sort_keys=True) + "\n")
        manifest_path = run.finalize(
            results={"benchmarks": {r["name"]: r["wall_seconds"]
                                    for r in doc["benchmarks"]}},
            wall_seconds=0.0)
        with RunIndex.at_root(runs_root) as index:
            index.record_run(run.manifest, manifest_path=manifest_path)
            rows = index.index_perf_document(run.run_id, doc)
        return (f"ingested {args.ingest} as run {run.run_id} "
                f"({rows} benchmark row(s))")

    import os

    from repro.analysis.index import INDEX_NAME

    db_path = os.path.join(runs_root, INDEX_NAME)
    if not os.path.exists(db_path):
        raise SystemExit(
            f"no index at {db_path}; run 'perf' or 'experiment' first "
            f"(or point --runs-root at an existing runs root)")
    with RunIndex.at_root(runs_root) as index:
        if args.benchmark is not None:
            return render_history(index, args.benchmark, last=args.last)
        return render_trends(index, window=args.window)


def _cmd_lint(args) -> str:
    from repro.lint import findings as findings_mod
    from repro.lint.drift import (drift_report, load_sessions,
                                  three_way_report)
    from repro.lint.rule_checker import check_rules, load_rules_file
    from repro.lint.sarif import emit_sarif
    from repro.lint.usage import lint_paths_detailed
    from repro.rules.builtin import BUILTIN_RULES
    from repro.rules.parser import ParseError

    interproc = args.interproc or args.signatures is not None

    all_findings = []
    if args.rules:
        for rules_path in args.rules:
            try:
                specs = load_rules_file(rules_path)
            except OSError as exc:
                raise SystemExit(f"{rules_path}: {exc}")
            except ParseError as exc:
                raise SystemExit(str(exc))
            all_findings.extend(check_rules(specs))
    else:
        all_findings.extend(check_rules(BUILTIN_RULES))
    if args.no_overlap:
        all_findings = [f for f in all_findings
                        if not f.id.startswith("L1-overlap")
                        and f.id != "L1-shadowed-duplicate"]

    predictions = []
    waived = {}
    if args.paths:
        usage_findings, predictions, waived = \
            lint_paths_detailed(args.paths)
        all_findings.extend(usage_findings)

    interproc_report = None
    if interproc:
        if not args.paths:
            raise SystemExit("--interproc/--signatures require --paths")
        from repro.lint.interproc import analyze_paths, export_signatures
        interproc_report = analyze_paths(args.paths)
        all_findings.extend(interproc_report.findings)
        if args.signatures:
            import json as json_mod
            specs = export_signatures(interproc_report)
            with open(args.signatures, "w", encoding="utf-8") as handle:
                json_mod.dump({"schema": "chameleon-sig-bundle",
                               "version": 1,
                               "source": " ".join(args.paths),
                               "signatures": specs},
                              handle, indent=2, sort_keys=True)
                handle.write("\n")

    if args.drift is not None:
        try:
            sessions = load_sessions(args.drift)
        except OSError as exc:
            raise SystemExit(f"{args.drift}: {exc}")
        if interproc_report is not None:
            drift_findings, _entries = three_way_report(
                predictions, sessions, interproc_report.classify,
                interproc_report.proposal_rows())
        else:
            drift_findings, _entries = drift_report(predictions, sessions)
        all_findings.extend(drift_findings)

    if args.format == "json":
        report = findings_mod.emit_json(all_findings, waived=waived)
    elif args.format == "sarif":
        report = emit_sarif(all_findings)
    else:
        report = findings_mod.emit_text(all_findings, waived=waived,
                                        show_waived=args.show_waived)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        report = f"wrote {args.output} ({len(all_findings)} finding(s))"

    threshold = (findings_mod.Severity.WARNING
                 if args.fail_on == "warning"
                 else findings_mod.Severity.ERROR)
    worst = findings_mod.worst_severity(all_findings)
    if worst is not None and worst >= threshold:
        print(report)
        raise SystemExit(1)
    return report


def _cmd_fuzz(args) -> str:
    from repro.verify import diff_trace, record_workload, run_fuzz

    sanitize = not args.no_sanitize
    if args.record is not None:
        traces = record_workload(args.record, scale=args.scale,
                                 seed=args.seed, out_dir=args.save_corpus)
        lines = [f"recorded {len(traces)} trace(s) from "
                 f"{args.record!r} at scale {args.scale}"]
        failed = False
        for trace in traces:
            report = diff_trace(trace, sanitize=sanitize)
            if not report.ok:
                failed = True
                lines.append(report.summary())
        lines.append("recorded-trace diff: "
                     + ("FAILED" if failed else "ok"))
        if args.save_corpus:
            lines.append(f"corpus saved under {args.save_corpus}")
        if failed:
            print("\n".join(lines))
            raise SystemExit(1)
        return "\n".join(lines)

    adts = ["list", "set", "map"] if args.adt == "all" else [args.adt]
    result = run_fuzz(adts, seeds=args.seeds, budget_s=args.budget,
                      n_ops=args.ops, out_dir=args.out,
                      shrink=not args.no_shrink, sanitize=sanitize,
                      log=lambda line: print(f"fuzz: {line}"))
    if not result.ok:
        print(result.summary())
        raise SystemExit(1)
    return result.summary()


def _cmd_compile_trace(args) -> str:
    from repro.runtime.vm import RuntimeEnvironment
    from repro.verify import replay_trace
    from repro.verify.compile import (TraceInstance, compile_trace,
                                      load_trace_file)
    from repro.verify.sanitizer import HeapSanitizer
    from repro.workloads.compiled import (CompiledTraceWorkload,
                                          MultiTenantWorkload)

    programs = []
    for path in args.traces:
        try:
            trace = load_trace_file(path)
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"{path}: not a readable trace: {exc}")
        programs.append((path, compile_trace(trace)))

    if args.multi_tenant and len(programs) > 1:
        tenants = tuple(program for _, program in programs)
        workloads = [("multi-tenant(" + "+".join(
            pathlib.Path(path).stem for path, _ in programs) + ")",
            MultiTenantWorkload(tenants, "compile-trace-multi-tenant",
                                rounds=args.rounds, perturb=args.perturb,
                                seed=args.seed))]
    else:
        workloads = [
            (path, CompiledTraceWorkload(
                program, f"compile-trace/{pathlib.Path(path).stem}",
                rounds=args.rounds, perturb=args.perturb, impl=args.impl,
                seed=args.seed))
            for path, program in programs]

    # Output stays core-agnostic on purpose: CI byte-diffs this text
    # across every gc-core/vm-core leg, so only simulated observables
    # (ticks, cycle counts, verdicts) may appear.
    lines = []
    failed = False
    for label, workload in workloads:
        vm = RuntimeEnvironment(gc_threshold_bytes=64 * 1024)
        sanitizer = None
        if args.sanitize:
            sanitizer = HeapSanitizer()
            sanitizer.attach(vm)
        workload.run(vm)
        vm.finish()
        line = (f"{label}: rounds={args.rounds} ticks={vm.now} "
                f"gc_cycles={len(vm.timeline.cycles)}")
        if sanitizer is not None:
            count = len(sanitizer.violations)
            line += (" sanitizer=clean" if not count
                     else f" sanitizer={count} violation(s)")
            failed = failed or bool(count)
        lines.append(line)

    if args.check:
        for path, program in programs:
            trace = program.trace
            impl = args.impl or trace.baseline_impl
            ref = replay_trace(trace, impl)
            vm = RuntimeEnvironment(gc_threshold_bytes=None)
            instance = TraceInstance(vm, program, impl=impl,
                                     collect_outcomes=True)
            instance.run()
            vm.collect()
            ok = (vm.now == ref.ticks
                  and instance.outcomes == ref.outcomes
                  and instance.dropped_at == ref.dropped_at)
            lines.append(f"{path}: replay-anchor "
                         + ("ok" if ok else "MISMATCH")
                         + f" ops={len(trace.ops)} ticks={vm.now}")
            failed = failed or not ok

    if failed:
        print("\n".join(lines))
        raise SystemExit(1)
    return "\n".join(lines)


_COMMANDS = {
    "list": _cmd_list,
    "profile": _cmd_profile,
    "optimize": _cmd_optimize,
    "online": _cmd_online,
    "histogram": _cmd_histogram,
    "experiment": _cmd_experiment,
    "perf": _cmd_perf,
    "history": _cmd_history,
    "lint": _cmd_lint,
    "fuzz": _cmd_fuzz,
    "compile-trace": _cmd_compile_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "gc_core", None):
        import os

        os.environ["REPRO_GC_CORE"] = args.gc_core
    if getattr(args, "vm_core", None):
        import os

        os.environ["REPRO_VM_CORE"] = args.vm_core
    output = _COMMANDS[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
