"""The interchangeable collections library and its Chameleon wrappers."""

from repro.collections.base import (BoxPool, CollectionImpl, CollectionKind,
                                    ListImpl, MapImpl, SetImpl,
                                    UnsupportedOperation)
from repro.collections.hashed_list import HashBackedListImpl
from repro.collections.iterators import CollectionIterator, make_iterator
from repro.collections.open_addressing import OpenAddressingMapImpl
from repro.collections.primitive_arrays import (BoolArrayImpl,
                                                DoubleArrayImpl,
                                                LongArrayImpl,
                                                PrimitiveArrayImpl,
                                                make_primitive_array_impl)
from repro.collections.lists import (ArrayListImpl, EmptyListImpl,
                                     IntArrayImpl, LazyArrayListImpl,
                                     LinkedListImpl, SingletonListImpl)
from repro.collections.maps import (ArrayMapImpl, HashMapImpl, LazyMapImpl,
                                    LinkedHashMapImpl, SizeAdaptingMapImpl)
from repro.collections.registry import ImplementationRegistry, default_registry
from repro.collections.sets import (ArraySetImpl, HashSetImpl, LazySetImpl,
                                    LinkedHashSetImpl, SizeAdaptingSetImpl)
from repro.collections.wrappers import (ChameleonCollection, ChameleonList,
                                        ChameleonMap, ChameleonSet)

__all__ = [
    "BoxPool", "CollectionImpl", "CollectionKind", "ListImpl", "MapImpl",
    "SetImpl", "UnsupportedOperation", "HashBackedListImpl",
    "CollectionIterator", "make_iterator", "ArrayListImpl", "EmptyListImpl",
    "IntArrayImpl", "LazyArrayListImpl", "LinkedListImpl",
    "SingletonListImpl", "ArrayMapImpl", "HashMapImpl", "LazyMapImpl",
    "OpenAddressingMapImpl", "BoolArrayImpl", "DoubleArrayImpl",
    "LongArrayImpl", "PrimitiveArrayImpl", "make_primitive_array_impl",
    "LinkedHashMapImpl", "SizeAdaptingMapImpl", "ImplementationRegistry",
    "default_registry", "ArraySetImpl", "HashSetImpl", "LazySetImpl",
    "LinkedHashSetImpl", "SizeAdaptingSetImpl", "ChameleonCollection",
    "ChameleonList", "ChameleonMap", "ChameleonSet",
]
