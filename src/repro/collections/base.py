"""Shared machinery of the interchangeable collection implementations.

Every implementation in :mod:`repro.collections` is a Python object that
*models a Java collection's memory behaviour* on the simulated heap: it
allocates an anchor heap object for itself, backing arrays / entry objects
for its internals, charges the virtual clock for every operation, and
answers the :class:`~repro.memory.semantic_maps.AdtFootprint` protocol so
the collection-aware GC can attribute its bytes.

Element identity follows Java semantics: application records
(:class:`~repro.memory.heap.HeapObject` values) compare by identity, while
primitives compare by value and are *boxed* -- storing the int ``7`` in a
reference-based collection allocates a 16-byte box object on the simulated
heap, which is precisely the overhead the paper's ``IntArray``
implementation exists to avoid.
"""

from __future__ import annotations

import enum
from typing import (TYPE_CHECKING, Any, Dict, Hashable, Iterable,
                    Iterator, Optional, Tuple)

from repro.memory.heap import HeapObject
from repro.memory.semantic_maps import FootprintTriple

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.runtime.vm import RuntimeEnvironment

__all__ = [
    "CollectionKind",
    "UnsupportedOperation",
    "element_key",
    "values_equal",
    "element_hash",
    "BoxPool",
    "CollectionImpl",
    "ListImpl",
    "SetImpl",
    "MapImpl",
]


class CollectionKind(enum.Enum):
    """The three abstract data types the library provides."""

    LIST = "List"
    SET = "Set"
    MAP = "Map"


class UnsupportedOperation(Exception):
    """An implementation does not support the requested operation
    (immutable singletons, index access on hash-backed lists, ...)."""


def element_key(value: Any) -> Hashable:
    """A hashable identity key for ``value`` under Java-like semantics.

    Heap objects key by identity; everything else keys by type and value
    (so ``1`` and ``True`` stay distinct, as ``Integer``/``Boolean`` would).
    """
    if isinstance(value, HeapObject):
        return ("obj", value.obj_id)
    return ("val", type(value).__name__, value)


def values_equal(a: Any, b: Any) -> bool:
    """Java-like element equality: identity for records, value otherwise."""
    if isinstance(a, HeapObject) or isinstance(b, HeapObject):
        return a is b
    if type(a) is not type(b):
        return False
    return a == b


def element_hash(value: Any) -> int:
    """A deterministic hash code for ``value``."""
    if isinstance(value, HeapObject):
        # Identity hash, as Object.hashCode() would give.
        return value.obj_id * 0x9E3779B1 & 0x7FFFFFFF
    return hash(element_key(value)) & 0x7FFFFFFF


class BoxPool:
    """Per-collection boxing of primitive elements.

    Maps each stored primitive to a heap-allocated box object with a
    reference count equal to the number of occurrences in the collection.
    Storage sites (backing arrays, entries) reference the box's heap id;
    once the last occurrence is released the pool forgets the box and it
    becomes garbage.

    Heap-object elements pass through unboxed: :meth:`ref_for` simply
    returns their own id.
    """

    def __init__(self, vm: "RuntimeEnvironment") -> None:
        self._vm = vm
        self._boxes: Dict[Hashable, Tuple[int, int]] = {}  # key -> (id, rc)

    def ref_for(self, value: Any) -> int:
        """The heap id a storage site should reference for ``value``,
        allocating a box for primitives.  Call once per stored occurrence."""
        if isinstance(value, HeapObject):
            return value.obj_id
        key = element_key(value)
        entry = self._boxes.get(key)
        if entry is None:
            box = self._vm.allocate("Box", self._vm.model.box_size())
            self._boxes[key] = (box.obj_id, 1)
            return box.obj_id
        box_id, refcount = entry
        self._boxes[key] = (box_id, refcount + 1)
        return box_id

    def release(self, value: Any) -> int:
        """Release one stored occurrence of ``value``; returns the heap id
        the storage site must now drop its reference to."""
        if isinstance(value, HeapObject):
            return value.obj_id
        key = element_key(value)
        box_id, refcount = self._boxes[key]
        if refcount == 1:
            del self._boxes[key]
        else:
            self._boxes[key] = (box_id, refcount - 1)
        return box_id

    def peek(self, value: Any) -> Optional[int]:
        """The current heap id for ``value`` without changing refcounts."""
        if isinstance(value, HeapObject):
            return value.obj_id
        entry = self._boxes.get(element_key(value))
        return entry[0] if entry is not None else None

    @property
    def box_count(self) -> int:
        """Number of live boxes in the pool."""
        return len(self._boxes)


class CollectionImpl:
    """Base class of every backing implementation.

    Subclasses allocate ``self.anchor`` (their heap presence) in their
    constructor via :meth:`_allocate_anchor` and keep its ``refs`` edges in
    sync with their internal structure.  The anchor's payload is the
    implementation instance itself, which is what the semantic-map registry
    dispatches on.
    """

    IMPL_NAME = "CollectionImpl"
    KINDS: frozenset = frozenset()
    DEFAULT_CAPACITY = 0

    def __init__(self, vm: "RuntimeEnvironment",
                 initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None) -> None:
        if initial_capacity is not None and initial_capacity < 0:
            raise ValueError("initial capacity cannot be negative")
        self.vm = vm
        self.context_id = context_id
        self.initial_capacity = initial_capacity
        self.boxes = BoxPool(vm)
        self.anchor: Optional[HeapObject] = None
        # Shortcut the charge chain (impl -> vm -> clock) to a single
        # bound-method call; operation hot loops bill the clock directly.
        self.charge = vm.charge

    # -- anchor management -------------------------------------------------
    def _allocate_anchor(self, ref_fields: int, int_fields: int) -> HeapObject:
        size = self.vm.model.object_size(ref_fields=ref_fields,
                                         int_fields=int_fields)
        self.anchor = self.vm.allocate(self.IMPL_NAME, size, payload=self,
                                       context_id=self.context_id)
        # Construction root: until an owner (wrapper, enclosing hybrid)
        # links the anchor into the object graph, the only reference to it
        # is the constructing code's stack -- which the simulated heap
        # cannot see.  Pin it so a GC triggered by one of the ADT's own
        # internal allocations (backing array, bucket table) cannot sweep
        # the half-built collection; :meth:`adopt` releases the pin.
        self.vm.add_root(self.anchor)
        self._construction_rooted = True
        return self.anchor

    def adopt(self) -> int:
        """Release the construction root; returns the anchor id.

        Called by the new owner immediately *after* it has added its own
        reference to the anchor, so the ADT is continuously reachable.
        """
        if getattr(self, "_construction_rooted", False):
            self.vm.remove_root(self.anchor)
            self._construction_rooted = False
        return self.anchor.obj_id

    @property
    def anchor_id(self) -> int:
        """Heap id of the implementation's anchor object."""
        return self.anchor.obj_id

    # -- timing ------------------------------------------------------------
    def charge(self, ticks: int) -> None:
        """Bill ``ticks`` of operation cost to the VM clock.

        Shadowed by a bound ``vm.charge`` instance attribute set in
        ``__init__``; this definition documents the contract and covers
        subclasses that skip the base constructor in tests.
        """
        self.vm.charge(ticks)

    # -- AdtFootprint protocol ----------------------------------------------
    def adt_footprint(self) -> FootprintTriple:
        raise NotImplementedError

    def adt_footprint_token(self) -> Optional[int]:
        """A cheap token that changes whenever :meth:`adt_footprint` or
        :meth:`adt_internal_ids` could return something new.

        ``None`` (the default) means "no token": callers must recompute
        every time.  Hash-backed impls return their engine's structural
        version so per-cycle footprint work can be cached; impls whose
        footprint is already O(1) stay at ``None``.
        """
        return None

    def adt_internal_ids(self) -> Iterable[int]:
        raise NotImplementedError

    def adt_element_count(self) -> int:
        return self.size

    # -- common collection surface -------------------------------------------
    @property
    def size(self) -> int:
        """Number of stored elements."""
        raise NotImplementedError

    @property
    def is_empty(self) -> bool:
        """Whether the collection holds no elements."""
        return self.size == 0

    def iter_values(self) -> Iterator[Any]:
        """Iterate stored values, charging per-step traversal cost."""
        raise NotImplementedError

    def peek_values(self) -> list:
        """Stored values as a list, without charging (test/debug hook)."""
        raise NotImplementedError

    def clear(self) -> None:
        """Remove every element."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.IMPL_NAME} size={self.size}>"


class ListImpl(CollectionImpl):
    """Operation surface of list implementations (``java.util.List``)."""

    KINDS = frozenset({CollectionKind.LIST})

    def add(self, value: Any) -> None:
        """Append ``value``."""
        raise NotImplementedError

    def add_at(self, index: int, value: Any) -> None:
        """Insert ``value`` at ``index`` (shifting the tail)."""
        raise NotImplementedError

    def get(self, index: int) -> Any:
        """The element at ``index``."""
        raise NotImplementedError

    def set_at(self, index: int, value: Any) -> Any:
        """Replace the element at ``index``; returns the old element."""
        raise NotImplementedError

    def remove_at(self, index: int) -> Any:
        """Remove and return the element at ``index``."""
        raise NotImplementedError

    def remove_first(self) -> Any:
        """Remove and return the head element."""
        if self.is_empty:
            raise IndexError("remove_first on empty list")
        return self.remove_at(0)

    def remove_value(self, value: Any) -> bool:
        """Remove the first occurrence of ``value``; True if found."""
        index = self.index_of(value)
        if index < 0:
            return False
        self.remove_at(index)
        return True

    def index_of(self, value: Any) -> int:
        """Index of the first occurrence of ``value``, or -1."""
        raise NotImplementedError

    def contains(self, value: Any) -> bool:
        """Whether ``value`` occurs in the list."""
        return self.index_of(value) >= 0

    def _check_index(self, index: int, upper: int) -> None:
        if not 0 <= index < upper:
            raise IndexError(f"index {index} out of range [0, {upper})")


class SetImpl(CollectionImpl):
    """Operation surface of set implementations (``java.util.Set``)."""

    KINDS = frozenset({CollectionKind.SET})

    def add(self, value: Any) -> bool:
        """Add ``value``; returns False if it was already present."""
        raise NotImplementedError

    def remove_value(self, value: Any) -> bool:
        """Remove ``value``; True if it was present."""
        raise NotImplementedError

    def contains(self, value: Any) -> bool:
        """Membership test."""
        raise NotImplementedError


class MapImpl(CollectionImpl):
    """Operation surface of map implementations (``java.util.Map``)."""

    KINDS = frozenset({CollectionKind.MAP})

    def put(self, key: Any, value: Any) -> Any:
        """Associate ``key`` with ``value``; returns the previous value."""
        raise NotImplementedError

    def get(self, key: Any) -> Any:
        """The value for ``key``, or ``None``."""
        raise NotImplementedError

    def remove_key(self, key: Any) -> Any:
        """Remove ``key``'s mapping; returns the removed value or ``None``."""
        raise NotImplementedError

    def contains_key(self, key: Any) -> bool:
        """Whether ``key`` is mapped."""
        raise NotImplementedError

    def contains_value(self, value: Any) -> bool:
        """Whether any mapping has ``value`` (linear in all impls)."""
        for _, stored in self.iter_items():
            if values_equal(stored, value):
                return True
        return False

    def iter_items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate ``(key, value)`` pairs, charging traversal cost."""
        raise NotImplementedError

    def peek_items(self) -> list:
        """Stored pairs as a list, without charging (test/debug hook)."""
        raise NotImplementedError

    def peek_values(self) -> list:
        return [value for _, value in self.peek_items()]

    def iter_values(self) -> Iterator[Any]:
        for _, value in self.iter_items():
            yield value

    def iter_keys(self) -> Iterator[Any]:
        """Iterate keys, charging traversal cost."""
        for key, _ in self.iter_items():
            yield key
