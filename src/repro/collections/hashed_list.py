"""A list API backed by an insertion-ordered hash set.

Table 2's first rule replaces an ``ArrayList`` that performs "a large
volume of contains operations on a large sized list" with a
``LinkedHashSet``.  The program still speaks the List interface, so this
adapter provides list semantics (insertion order, positional reads) over a
linked hash table: ``contains`` becomes O(1) while ``get(i)`` degrades to
an order-walk -- which is exactly why the built-in rule only fires when
indexed reads are absent.

Like a real replacement by a set, duplicates are dropped; Chameleon only
suggests this replacement for contexts whose usage never relies on
duplicates (add/contains/iterate-dominated), mirroring the paper's remark
that it optimises selection and leaves equivalence to the user/rules.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.collections.base import ListImpl, UnsupportedOperation, values_equal
from repro.collections.hashing import HashTableEngine
from repro.memory.semantic_maps import FootprintTriple

__all__ = ["HashBackedListImpl"]


class HashBackedListImpl(ListImpl):
    """Insertion-ordered, deduplicating hash-backed list."""

    IMPL_NAME = "LinkedHashSet"
    DEFAULT_CAPACITY = 16

    def __init__(self, vm, initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None) -> None:
        super().__init__(vm, initial_capacity, context_id)
        self._allocate_anchor(ref_fields=1, int_fields=3)
        self._table = HashTableEngine(
            self, is_map=False, linked=True,
            initial_capacity=(initial_capacity if initial_capacity is not None
                              else self.DEFAULT_CAPACITY))

    def add(self, value: Any) -> None:
        self._table.put(value, None)

    def add_at(self, index: int, value: Any) -> None:
        raise UnsupportedOperation(
            "hash-backed list does not support positional insertion")

    def get(self, index: int) -> Any:
        self._check_index(index, self._table.count)
        for i, entry in enumerate(self._table.iter_entries()):
            if i == index:
                return entry.key
        raise AssertionError("unreachable: index checked against count")

    def set_at(self, index: int, value: Any) -> Any:
        raise UnsupportedOperation(
            "hash-backed list does not support positional update")

    def remove_at(self, index: int) -> Any:
        value = self.get(index)
        self._table.remove(value)
        return value

    def remove_value(self, value: Any) -> bool:
        return self._table.remove(value) is not HashTableEngine.missing()

    def index_of(self, value: Any) -> int:
        # Membership is a hash probe; the position (rarely wanted by the
        # workloads this backs) costs an order walk.
        if self._table.get_entry(value) is None:
            return -1
        for i, entry in enumerate(self._table.iter_entries()):
            if values_equal(entry.key, value):
                return i
        raise AssertionError("unreachable: entry known present")

    def contains(self, value: Any) -> bool:
        return self._table.get_entry(value) is not None

    def clear(self) -> None:
        self._table.clear()

    def iter_values(self) -> Iterator[Any]:
        for entry in self._table.iter_entries():
            yield entry.key

    @property
    def size(self) -> int:
        return self._table.count

    def peek_values(self) -> list:
        return self._table.peek_keys()

    def adt_footprint(self) -> FootprintTriple:
        n = self._table.count
        live = self.anchor.size + self._table.live_bytes()
        used = self.anchor.size + self._table.used_bytes()
        core = self.vm.model.core_size(n) if n else 0
        return FootprintTriple(live, used, core)

    def adt_footprint_token(self) -> Optional[int]:
        return self._table.footprint_version

    def adt_internal_ids(self) -> Iterator[int]:
        return self._table.internal_ids()
