"""Chained hash-table engine shared by the hash-backed sets and maps.

Models the classic ``java.util.HashMap`` design the paper's space analysis
is built on: an ``Object[]`` bucket table plus one *entry object per
mapping*.  On the 32-bit layout an entry weighs 24 bytes (header + three
pointers / cached hash) -- the figure section 2.3 uses to explain why
shrinking initial capacities cannot fix HashMap bloat.  The linked variant
(``LinkedHashMap``/``LinkedHashSet``) carries two extra references per
entry and iterates in insertion order without scanning empty buckets.

The engine is *not* an ADT itself: it attaches its table array and entry
objects to an owning :class:`~repro.collections.base.CollectionImpl`'s
anchor, and the owner reports them as ADT internals to the collector.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.collections.base import CollectionImpl, element_hash, values_equal
from repro.memory.heap import HeapObject

__all__ = ["HashEntry", "HashTableEngine", "next_power_of_two"]

_MISSING = object()


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= max(value, 1)."""
    power = 1
    while power < value:
        power <<= 1
    return power


class HashEntry:
    """One chained entry: key, optional value, cached hash, heap object."""

    __slots__ = ("key", "value", "hash_code", "heap_obj")

    def __init__(self, key: Any, value: Any, hash_code: int,
                 heap_obj: HeapObject) -> None:
        self.key = key
        self.value = value
        self.hash_code = hash_code
        self.heap_obj = heap_obj


class HashTableEngine:
    """Bucket table + entry-object management for an owning ADT."""

    def __init__(self, owner: CollectionImpl, *, is_map: bool,
                 linked: bool = False, initial_capacity: Optional[int] = None,
                 load_factor: float = 0.75, lazy: bool = False) -> None:
        if load_factor <= 0:
            raise ValueError("load factor must be positive")
        self.owner = owner
        self.is_map = is_map
        self.linked = linked
        self.load_factor = load_factor
        self.default_capacity = next_power_of_two(
            initial_capacity if initial_capacity is not None else 16)
        self._table_obj: Optional[HeapObject] = None
        self._buckets: List[List[HashEntry]] = []
        self._order: List[HashEntry] = []  # insertion order (linked variant)
        self._count = 0
        self._occupied = 0  # non-empty buckets, maintained incrementally
        # Structural version: bumped whenever the footprint or the
        # internal-object set could have changed (new/removed entries,
        # table (re)allocation, clear).  Footprint caches key on it.
        self._version = 0
        self._ids_version = -1
        self._ids_list: List[int] = []
        model = owner.vm.model
        refs = 5 if linked else 3
        self._entry_size = model.object_size(ref_fields=refs, int_fields=1)
        if not lazy:
            self._allocate_table(self.default_capacity)

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    @property
    def entry_size(self) -> int:
        """Bytes per entry object (3 refs + hash; linked adds 2 refs).

        The layout model is immutable, so the size is computed once at
        construction -- this property sits on the per-GC-cycle footprint
        path.
        """
        return self._entry_size

    @property
    def entry_type_name(self) -> str:
        base = "LinkedHashMap" if self.linked else "HashMap"
        return f"{base}$Entry"

    def _allocate_table(self, capacity: int) -> None:
        vm = self.owner.vm
        old = self._table_obj
        new = vm.allocate("Object[]", vm.model.ref_array_size(capacity),
                          context_id=self.owner.context_id)
        if old is not None:
            for ref_id, count in old.refs.items():
                new.refs[ref_id] = count
            old.clear_refs()
            self.owner.anchor.remove_ref(old.obj_id)
        self.owner.anchor.add_ref(new.obj_id)
        self._table_obj = new
        old_buckets = self._buckets
        self._buckets = [[] for _ in range(capacity)]
        relinked = 0
        for bucket in old_buckets:
            for entry in bucket:
                self._buckets[entry.hash_code & (capacity - 1)].append(entry)
                relinked += 1
        self._occupied = sum(1 for bucket in self._buckets if bucket)
        self._version += 1
        if relinked:
            self.owner.charge(vm.costs.entry_link * relinked)

    def _ensure_table(self) -> None:
        if self._table_obj is None:
            self._allocate_table(self.default_capacity)

    @property
    def capacity(self) -> int:
        """Current bucket-table capacity (0 before lazy allocation)."""
        return len(self._buckets)

    @property
    def count(self) -> int:
        """Number of stored entries."""
        return self._count

    @property
    def table_allocated(self) -> bool:
        """Whether the bucket table exists yet."""
        return self._table_obj is not None

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def _find(self, key: Any) -> Tuple[int, Optional[HashEntry]]:
        """Hash and probe for ``key``; returns (hash, entry-or-None).

        Charges the hash computation plus one probe per chain link
        examined -- the constant-factor cost that makes small ArrayMaps
        faster than small HashMaps.
        """
        costs = self.owner.vm.costs
        hash_code = element_hash(key)
        self.owner.charge(costs.hash_compute)
        if not self._buckets:
            self.owner.charge(costs.hash_probe)
            return hash_code, None
        bucket = self._buckets[hash_code & (len(self._buckets) - 1)]
        probes = 1
        found = None
        for entry in bucket:
            if entry.hash_code == hash_code and values_equal(entry.key, key):
                found = entry
                break
            probes += 1
        self.owner.charge(costs.hash_probe * probes)
        return hash_code, found

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def put(self, key: Any, value: Any) -> Any:
        """Insert or update; returns the previous value (or ``_MISSING``
        sentinel exposed via :meth:`missing`)."""
        vm = self.owner.vm
        self._ensure_table()
        hash_code, entry = self._find(key)
        if entry is not None:
            old = entry.value
            if self.is_map:
                entry.heap_obj.remove_ref(self.owner.boxes.release(old))
                entry.heap_obj.add_ref(self.owner.boxes.ref_for(value))
            entry.value = value
            return old
        heap_entry = vm.allocate(self.entry_type_name, self.entry_size,
                                 context_id=self.owner.context_id)
        # The entry is unreachable until linked into the table, and
        # ref_for() may allocate boxes (and hence trigger a GC); keep it
        # pinned across that window.
        vm.add_root(heap_entry)
        heap_entry.add_ref(self.owner.boxes.ref_for(key))
        if self.is_map:
            heap_entry.add_ref(self.owner.boxes.ref_for(value))
        self._table_obj.add_ref(heap_entry.obj_id)
        vm.remove_root(heap_entry)
        new_entry = HashEntry(key, value, hash_code, heap_entry)
        bucket = self._buckets[hash_code & (len(self._buckets) - 1)]
        if not bucket:
            self._occupied += 1
        bucket.append(new_entry)
        self._order.append(new_entry)
        self._count += 1
        self._version += 1
        self.owner.charge(vm.costs.entry_link)
        if self._count > len(self._buckets) * self.load_factor:
            self._allocate_table(len(self._buckets) * 2)
        return _MISSING

    def remove(self, key: Any) -> Any:
        """Remove ``key``'s entry; returns old value or the missing
        sentinel."""
        if self._table_obj is None:
            _, _ = self._find(key)
            return _MISSING
        hash_code, entry = self._find(key)
        if entry is None:
            return _MISSING
        bucket = self._buckets[hash_code & (len(self._buckets) - 1)]
        bucket.remove(entry)
        if not bucket:
            self._occupied -= 1
        self._order.remove(entry)
        entry.heap_obj.remove_ref(self.owner.boxes.release(entry.key))
        if self.is_map:
            entry.heap_obj.remove_ref(self.owner.boxes.release(entry.value))
        self._table_obj.remove_ref(entry.heap_obj.obj_id)
        self._count -= 1
        self._version += 1
        self.owner.charge(self.owner.vm.costs.entry_link)
        return entry.value

    def get_entry(self, key: Any) -> Optional[HashEntry]:
        """Probe for ``key`` without mutating."""
        if self._table_obj is None and self._count == 0:
            self.owner.charge(self.owner.vm.costs.hash_compute
                              + self.owner.vm.costs.hash_probe)
            return None
        _, entry = self._find(key)
        return entry

    def clear(self) -> None:
        """Drop every entry (table retained, as in Java)."""
        for entry in self._order:
            entry.heap_obj.remove_ref(self.owner.boxes.release(entry.key))
            if self.is_map:
                entry.heap_obj.remove_ref(self.owner.boxes.release(entry.value))
            self._table_obj.remove_ref(entry.heap_obj.obj_id)
        self.owner.charge(self.owner.vm.costs.entry_link * self._count)
        self._order.clear()
        for bucket in self._buckets:
            bucket.clear()
        self._count = 0
        self._occupied = 0
        self._version += 1

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def iter_entries(self) -> Iterator[HashEntry]:
        """Iterate entries, charging the variant-appropriate cost.

        The plain table scans every bucket slot (paying for empty slots,
        which is why iterating sparse HashMaps is slow); the linked
        variant walks the insertion-order chain only.
        """
        costs = self.owner.vm.costs
        if self.linked:
            for entry in list(self._order):
                self.owner.charge(costs.link_traverse_per_node)
                yield entry
        else:
            # Snapshot the bucket table at iteration start so a rehash
            # mid-iteration cannot reorder or repeat entries (uniform
            # mutation-during-iteration semantics across impls).  Charges
            # are unchanged: one array access per bucket slot, one link
            # traversal per entry.
            for bucket in [list(b) for b in self._buckets]:
                self.owner.charge(costs.array_access)
                for entry in bucket:
                    self.owner.charge(costs.link_traverse_per_node)
                    yield entry

    # ------------------------------------------------------------------
    # Footprint pieces
    # ------------------------------------------------------------------
    def live_bytes(self) -> int:
        """Table array + all entry objects."""
        table = self._table_obj.size if self._table_obj is not None else 0
        return table + self.entry_size * self._count

    @property
    def footprint_version(self) -> int:
        """Structural version for footprint/internal-id caches.

        Unchanged version guarantees :meth:`live_bytes`,
        :meth:`used_bytes`, and :meth:`internal_ids` all return the same
        values as last time; value-only updates don't bump it.
        """
        return self._version

    def used_bytes(self) -> int:
        """Occupied table slots + all entry objects."""
        if self._table_obj is None:
            return 0
        model = self.owner.vm.model
        return (model.align(model.array_header_bytes
                            + self._occupied * model.pointer_bytes)
                + self.entry_size * self._count)

    def internal_ids(self) -> List[int]:
        """Heap ids of the table and every entry object.

        Cached per structural version: the GC asks for this once per
        anchor per cycle, and between collections the set only changes
        when the version does.
        """
        if self._ids_version != self._version:
            ids = ([self._table_obj.obj_id]
                   if self._table_obj is not None else [])
            ids.extend(entry.heap_obj.obj_id for entry in self._order)
            self._ids_list = ids
            self._ids_version = self._version
        return self._ids_list

    def peek_keys(self) -> List[Any]:
        """Keys in insertion order, without charging."""
        return [entry.key for entry in self._order]

    def peek_pairs(self) -> List[Tuple[Any, Any]]:
        """(key, value) pairs in insertion order, without charging."""
        return [(entry.key, entry.value) for entry in self._order]

    @staticmethod
    def missing() -> Any:
        """The not-present sentinel returned by :meth:`put`/:meth:`remove`."""
        return _MISSING
