"""Iterator objects and the shared-empty-iterator optimisation.

Section 5.4 ("Iterators") reports massive creation of iterator objects,
"quite often ... over empty collections", and observes that for interfaces
that do not allow insertion through the iterator a shared static empty
iterator can be returned instead.

Accordingly, :func:`make_iterator` allocates one small iterator object on
the simulated heap per iteration -- transient garbage that shows up as
allocation pressure, exactly the effect the paper measured -- unless the
collection is empty *and* the empty-iterator optimisation is switched on,
in which case no allocation happens at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.memory.heap import HeapObject

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.runtime.vm import RuntimeEnvironment

__all__ = ["CollectionIterator", "make_iterator"]


class CollectionIterator:
    """A Python iterator paired with its simulated heap presence.

    ``heap_obj`` is ``None`` when the shared empty iterator was used.
    """

    __slots__ = ("_source", "heap_obj", "returned")

    def __init__(self, source: Iterator[Any],
                 heap_obj: Optional[HeapObject]) -> None:
        self._source = source
        self.heap_obj = heap_obj
        self.returned = 0

    def __iter__(self) -> "CollectionIterator":
        return self

    def __next__(self) -> Any:
        value = next(self._source)
        self.returned += 1
        return value

    @property
    def is_shared_empty(self) -> bool:
        """Whether this iteration avoided allocating an iterator object."""
        return self.heap_obj is None


def iterator_object_size(vm: "RuntimeEnvironment") -> int:
    """Bytes of one iterator object (cursor + collection reference)."""
    return vm.model.object_size(ref_fields=2, int_fields=1)


def make_iterator(vm: "RuntimeEnvironment", source: Iterator[Any], *,
                  empty: bool, use_shared_empty: bool = False,
                  context_id: Optional[int] = None) -> CollectionIterator:
    """Create an iterator over ``source``.

    Args:
        vm: The runtime to allocate the iterator object in.
        source: The (cost-charging) value stream from the implementation.
        empty: Whether the underlying collection is currently empty.
        use_shared_empty: Enable the section 5.4 optimisation: empty
            collections hand out a shared iterator with no allocation.
        context_id: Allocation context attributed to the iterator object.
    """
    if empty and use_shared_empty:
        return CollectionIterator(iter(()), None)
    heap_obj = vm.allocate("Iterator", iterator_object_size(vm),
                           context_id=context_id)
    return CollectionIterator(source, heap_obj)
