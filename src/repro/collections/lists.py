"""List implementations: ArrayList, LazyArrayList, LinkedList,
SingletonList, EmptyList and IntArray.

These mirror the alternative implementations listed in section 4.2 of the
paper.  Each models the memory layout and operation costs of its Java
counterpart on the simulated heap:

* ``ArrayList`` -- resizable ``Object[]``; grows by the paper's formula
  ``newCapacity = (oldCapacity * 3) / 2 + 1``.
* ``LazyArrayList`` -- identical, but the backing array is only allocated
  on the first update (the Table 2 fix for redundant allocations).
* ``LinkedList`` -- doubly-linked list whose per-element ``Entry`` objects
  weigh ``linked_entry_size()`` bytes each, *plus a sentinel entry that
  exists even when the list is empty* -- the overhead behind the bloat
  benchmark's 25%-of-heap spike (section 5.3).
* ``SingletonList`` -- immutable one-element list (the SOOT fix).
* ``EmptyList`` -- immutable empty list (PMD's ``EMPTY_LIST`` idiom).
* ``IntArray`` -- primitive ``int[]`` storage with no boxing.
"""

from __future__ import annotations

import numbers
from typing import Any, Iterator, List, Optional

from repro.collections.base import (ListImpl, UnsupportedOperation,
                                    values_equal)
from repro.memory.heap import HeapObject
from repro.memory.semantic_maps import FootprintTriple

__all__ = [
    "ArrayListImpl",
    "LazyArrayListImpl",
    "LinkedListImpl",
    "SingletonListImpl",
    "EmptyListImpl",
    "IntArrayImpl",
    "grow_capacity",
]


def grow_capacity(old_capacity: int, needed: int) -> int:
    """The paper's ArrayList growth function, clamped to ``needed``."""
    grown = (old_capacity * 3) // 2 + 1
    return max(grown, needed)


class ArrayListImpl(ListImpl):
    """Resizable-array list (``java.util.ArrayList``)."""

    IMPL_NAME = "ArrayList"
    DEFAULT_CAPACITY = 10
    LAZY = False

    def __init__(self, vm, initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None) -> None:
        super().__init__(vm, initial_capacity, context_id)
        self._items: List[Any] = []
        self._array: Optional[HeapObject] = None
        self._capacity = 0
        self._allocate_anchor(ref_fields=1, int_fields=2)
        if not self.LAZY:
            self._grow_to(self._requested_capacity())

    def _requested_capacity(self) -> int:
        if self.initial_capacity is not None:
            return self.initial_capacity
        return self.DEFAULT_CAPACITY

    # ------------------------------------------------------------------
    # Backing array management
    # ------------------------------------------------------------------
    def _grow_to(self, capacity: int) -> None:
        """(Re)allocate the backing array at exactly ``capacity`` slots."""
        old = self._array
        new = self.vm.allocate("Object[]",
                               self.vm.model.ref_array_size(capacity),
                               context_id=self.context_id)
        if old is not None:
            for ref_id, count in old.refs.items():
                new.refs[ref_id] = count
            old.clear_refs()
            self.anchor.remove_ref(old.obj_id)
            self.charge(self.vm.costs.copy_per_element * len(self._items))
        self.anchor.add_ref(new.obj_id)
        self._array = new
        self._capacity = capacity

    def _ensure_capacity(self, needed: int) -> None:
        if self._array is None:
            # Lazy first update: honour the requested capacity if it is
            # large enough, otherwise allocate exactly what is needed.
            self._grow_to(max(self._requested_capacity(), needed))
        elif needed > self._capacity:
            self._grow_to(grow_capacity(self._capacity, needed))

    # ------------------------------------------------------------------
    # List operations
    # ------------------------------------------------------------------
    def add(self, value: Any) -> None:
        self._ensure_capacity(len(self._items) + 1)
        self._array.add_ref(self.boxes.ref_for(value))
        self._items.append(value)
        self.charge(self.vm.costs.array_access)

    def add_at(self, index: int, value: Any) -> None:
        size = len(self._items)
        if not 0 <= index <= size:
            raise IndexError(f"index {index} out of range [0, {size}]")
        self._ensure_capacity(size + 1)
        self._array.add_ref(self.boxes.ref_for(value))
        self._items.insert(index, value)
        self.charge(self.vm.costs.array_access
                    + self.vm.costs.copy_per_element * (size - index))

    def get(self, index: int) -> Any:
        self._check_index(index, len(self._items))
        self.charge(self.vm.costs.array_access)
        return self._items[index]

    def set_at(self, index: int, value: Any) -> Any:
        self._check_index(index, len(self._items))
        old = self._items[index]
        self._array.remove_ref(self.boxes.release(old))
        self._array.add_ref(self.boxes.ref_for(value))
        self._items[index] = value
        self.charge(self.vm.costs.array_access)
        return old

    def remove_at(self, index: int) -> Any:
        self._check_index(index, len(self._items))
        old = self._items.pop(index)
        self._array.remove_ref(self.boxes.release(old))
        self.charge(self.vm.costs.array_access
                    + self.vm.costs.copy_per_element
                    * (len(self._items) - index))
        return old

    def index_of(self, value: Any) -> int:
        scanned = 0
        found = -1
        for i, item in enumerate(self._items):
            scanned += 1
            if values_equal(item, value):
                found = i
                break
        self.charge(self.vm.costs.array_scan_per_element * max(scanned, 1))
        return found

    def clear(self) -> None:
        for item in self._items:
            self._array.remove_ref(self.boxes.release(item))
        self.charge(self.vm.costs.array_access * len(self._items))
        self._items.clear()

    def iter_values(self) -> Iterator[Any]:
        # Snapshot at iteration start: all impls pin snapshot semantics
        # for mutation-during-iteration (tests/collections/test_iterators).
        for item in list(self._items):
            self.charge(self.vm.costs.array_access)
            yield item

    @property
    def size(self) -> int:
        return len(self._items)

    @property
    def capacity(self) -> int:
        """Current backing-array capacity (0 before lazy allocation)."""
        return self._capacity

    def peek_values(self) -> List[Any]:
        return list(self._items)

    # ------------------------------------------------------------------
    # Footprint
    # ------------------------------------------------------------------
    def adt_footprint(self) -> FootprintTriple:
        model = self.vm.model
        n = len(self._items)
        array_live = self._array.size if self._array is not None else 0
        array_used = (model.align(model.array_header_bytes
                                  + n * model.pointer_bytes)
                      if self._array is not None else 0)
        live = self.anchor.size + array_live
        used = self.anchor.size + array_used
        core = model.core_size(n) if n else 0
        return FootprintTriple(live, used, core)

    def adt_internal_ids(self) -> Iterator[int]:
        if self._array is not None:
            yield self._array.obj_id


class LazyArrayListImpl(ArrayListImpl):
    """ArrayList whose backing array appears only on the first update."""

    IMPL_NAME = "LazyArrayList"
    LAZY = True


class LinkedListImpl(ListImpl):
    """Doubly-linked list (``java.util.LinkedList``) with a sentinel entry.

    The sentinel models Java 6's header ``Entry``: it is allocated at
    construction and never stores an element, so every empty LinkedList
    still carries ``linked_entry_size()`` bytes of pure overhead.
    """

    IMPL_NAME = "LinkedList"
    DEFAULT_CAPACITY = 0

    def __init__(self, vm, initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None) -> None:
        super().__init__(vm, initial_capacity, context_id)
        self._items: List[Any] = []
        self._entries: List[HeapObject] = []
        self._allocate_anchor(ref_fields=1, int_fields=2)
        self._sentinel = self._new_entry()

    def _new_entry(self) -> HeapObject:
        entry = self.vm.allocate("LinkedList$Entry",
                                 self.vm.model.linked_entry_size(),
                                 context_id=self.context_id)
        self.anchor.add_ref(entry.obj_id)
        return entry

    def _traverse_cost(self, index: int) -> int:
        """Ticks to reach ``index`` from the nearer end."""
        size = len(self._items)
        steps = min(index, size - index) + 1 if size else 1
        return self.vm.costs.link_traverse_per_node * steps

    # ------------------------------------------------------------------
    # List operations
    # ------------------------------------------------------------------
    def add(self, value: Any) -> None:
        entry = self._new_entry()
        entry.add_ref(self.boxes.ref_for(value))
        self._items.append(value)
        self._entries.append(entry)
        self.charge(self.vm.costs.entry_link)

    def add_at(self, index: int, value: Any) -> None:
        size = len(self._items)
        if not 0 <= index <= size:
            raise IndexError(f"index {index} out of range [0, {size}]")
        self.charge(self._traverse_cost(min(index, size - 1) if size else 0))
        entry = self._new_entry()
        entry.add_ref(self.boxes.ref_for(value))
        self._items.insert(index, value)
        self._entries.insert(index, entry)
        self.charge(self.vm.costs.entry_link)

    def get(self, index: int) -> Any:
        self._check_index(index, len(self._items))
        self.charge(self._traverse_cost(index))
        return self._items[index]

    def set_at(self, index: int, value: Any) -> Any:
        self._check_index(index, len(self._items))
        self.charge(self._traverse_cost(index))
        old = self._items[index]
        entry = self._entries[index]
        entry.remove_ref(self.boxes.release(old))
        entry.add_ref(self.boxes.ref_for(value))
        self._items[index] = value
        return old

    def remove_at(self, index: int) -> Any:
        self._check_index(index, len(self._items))
        self.charge(self._traverse_cost(index) + self.vm.costs.entry_link)
        old = self._items.pop(index)
        entry = self._entries.pop(index)
        entry.remove_ref(self.boxes.release(old))
        self.anchor.remove_ref(entry.obj_id)
        return old

    def remove_first(self) -> Any:
        if self.is_empty:
            raise IndexError("remove_first on empty list")
        return self.remove_at(0)

    def index_of(self, value: Any) -> int:
        scanned = 0
        found = -1
        for i, item in enumerate(self._items):
            scanned += 1
            if values_equal(item, value):
                found = i
                break
        self.charge(self.vm.costs.link_traverse_per_node * max(scanned, 1))
        return found

    def clear(self) -> None:
        for item, entry in zip(self._items, self._entries):
            entry.remove_ref(self.boxes.release(item))
            self.anchor.remove_ref(entry.obj_id)
        self.charge(self.vm.costs.entry_link * len(self._items))
        self._items.clear()
        self._entries.clear()

    def iter_values(self) -> Iterator[Any]:
        # Snapshot at iteration start (uniform mutation-during-iteration
        # semantics across impls).
        for item in list(self._items):
            self.charge(self.vm.costs.link_traverse_per_node)
            yield item

    @property
    def size(self) -> int:
        return len(self._items)

    def peek_values(self) -> List[Any]:
        return list(self._items)

    # ------------------------------------------------------------------
    # Footprint
    # ------------------------------------------------------------------
    def adt_footprint(self) -> FootprintTriple:
        model = self.vm.model
        n = len(self._items)
        entry = model.linked_entry_size()
        live = self.anchor.size + entry * (n + 1)
        used = self.anchor.size + entry * n
        core = model.core_size(n) if n else 0
        return FootprintTriple(live, used, core)

    def adt_internal_ids(self) -> Iterator[int]:
        yield self._sentinel.obj_id
        for entry in self._entries:
            yield entry.obj_id


class SingletonListImpl(ListImpl):
    """Immutable one-element list (the SOOT ``SingletonList`` fix).

    The single element may be supplied once via :meth:`add` (modelling
    construction); every later mutation raises
    :class:`UnsupportedOperation`.
    """

    IMPL_NAME = "SingletonList"
    DEFAULT_CAPACITY = 1

    def __init__(self, vm, initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None) -> None:
        super().__init__(vm, initial_capacity, context_id)
        self._value: Any = None
        self._filled = False
        self._allocate_anchor(ref_fields=1, int_fields=0)

    def add(self, value: Any) -> None:
        if self._filled:
            raise UnsupportedOperation("SingletonList already holds its element")
        self.anchor.add_ref(self.boxes.ref_for(value))
        self._value = value
        self._filled = True
        self.charge(self.vm.costs.array_access)

    def add_at(self, index: int, value: Any) -> None:
        # Fullness wins over the index check: a filled singleton refuses
        # *any* insertion (UnsupportedOperation), while an empty one only
        # accepts index 0 -- the same IndexError an empty ArrayList gives
        # for any other index.
        if self._filled:
            raise UnsupportedOperation(
                "SingletonList already holds its element")
        if index != 0:
            raise IndexError(f"index {index} out of range for singleton")
        self.add(value)

    def get(self, index: int) -> Any:
        self._check_index(index, self.size)
        self.charge(self.vm.costs.array_access)
        return self._value

    def set_at(self, index: int, value: Any) -> Any:
        raise UnsupportedOperation("SingletonList is immutable")

    def remove_at(self, index: int) -> Any:
        raise UnsupportedOperation("SingletonList is immutable")

    def remove_value(self, value: Any) -> bool:
        raise UnsupportedOperation("SingletonList is immutable")

    def index_of(self, value: Any) -> int:
        self.charge(self.vm.costs.compare)
        if self._filled and values_equal(self._value, value):
            return 0
        return -1

    def clear(self) -> None:
        raise UnsupportedOperation("SingletonList is immutable")

    def iter_values(self) -> Iterator[Any]:
        if self._filled:
            self.charge(self.vm.costs.array_access)
            yield self._value

    @property
    def size(self) -> int:
        return 1 if self._filled else 0

    def peek_values(self) -> List[Any]:
        return [self._value] if self._filled else []

    def adt_footprint(self) -> FootprintTriple:
        live = used = self.anchor.size
        core = self.vm.model.core_size(1) if self._filled else 0
        core = min(core, used)
        return FootprintTriple(live, used, core)

    def adt_internal_ids(self) -> Iterator[int]:
        return iter(())


class EmptyListImpl(ListImpl):
    """Immutable empty list (``Collections.EMPTY_LIST``)."""

    IMPL_NAME = "EmptyList"
    DEFAULT_CAPACITY = 0

    def __init__(self, vm, initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None) -> None:
        super().__init__(vm, initial_capacity, context_id)
        self._allocate_anchor(ref_fields=0, int_fields=0)

    def add(self, value: Any) -> None:
        raise UnsupportedOperation("EmptyList is immutable")

    add_at = set_at = lambda self, *a: (_ for _ in ()).throw(
        UnsupportedOperation("EmptyList is immutable"))

    def get(self, index: int) -> Any:
        raise IndexError("EmptyList has no elements")

    def remove_at(self, index: int) -> Any:
        raise UnsupportedOperation("EmptyList is immutable")

    def remove_value(self, value: Any) -> bool:
        raise UnsupportedOperation("EmptyList is immutable")

    def index_of(self, value: Any) -> int:
        self.charge(self.vm.costs.compare)
        return -1

    def clear(self) -> None:
        self.charge(self.vm.costs.compare)

    def iter_values(self) -> Iterator[Any]:
        return iter(())

    @property
    def size(self) -> int:
        return 0

    def peek_values(self) -> List[Any]:
        return []

    def adt_footprint(self) -> FootprintTriple:
        return FootprintTriple(self.anchor.size, self.anchor.size, 0)

    def adt_internal_ids(self) -> Iterator[int]:
        return iter(())


class IntArrayImpl(ListImpl):
    """Primitive ``int[]`` list: no boxing, 4 bytes per element.

    Only integral values are accepted; storing anything else is a type
    error, matching the paper's per-primitive specialised arrays.
    """

    IMPL_NAME = "IntArray"
    DEFAULT_CAPACITY = 10

    def __init__(self, vm, initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None) -> None:
        super().__init__(vm, initial_capacity, context_id)
        self._items: List[int] = []
        self._array: Optional[HeapObject] = None
        self._capacity = 0
        self._allocate_anchor(ref_fields=1, int_fields=2)
        self._grow_to(self.initial_capacity
                      if self.initial_capacity is not None
                      else self.DEFAULT_CAPACITY)

    @staticmethod
    def _check_value(value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, numbers.Integral):
            raise TypeError(f"IntArray stores ints, not {type(value).__name__}")
        return int(value)

    def _grow_to(self, capacity: int) -> None:
        old = self._array
        new = self.vm.allocate("int[]", self.vm.model.int_array_size(capacity),
                               context_id=self.context_id)
        if old is not None:
            self.anchor.remove_ref(old.obj_id)
            self.charge(self.vm.costs.copy_per_element * len(self._items))
        self.anchor.add_ref(new.obj_id)
        self._array = new
        self._capacity = capacity

    def _ensure_capacity(self, needed: int) -> None:
        if needed > self._capacity:
            self._grow_to(grow_capacity(self._capacity, needed))

    def add(self, value: Any) -> None:
        value = self._check_value(value)
        self._ensure_capacity(len(self._items) + 1)
        self._items.append(value)
        self.charge(self.vm.costs.array_access)

    def add_at(self, index: int, value: Any) -> None:
        value = self._check_value(value)
        size = len(self._items)
        if not 0 <= index <= size:
            raise IndexError(f"index {index} out of range [0, {size}]")
        self._ensure_capacity(size + 1)
        self._items.insert(index, value)
        self.charge(self.vm.costs.array_access
                    + self.vm.costs.copy_per_element * (size - index))

    def get(self, index: int) -> int:
        self._check_index(index, len(self._items))
        self.charge(self.vm.costs.array_access)
        return self._items[index]

    def set_at(self, index: int, value: Any) -> int:
        value = self._check_value(value)
        self._check_index(index, len(self._items))
        old = self._items[index]
        self._items[index] = value
        self.charge(self.vm.costs.array_access)
        return old

    def remove_at(self, index: int) -> int:
        self._check_index(index, len(self._items))
        old = self._items.pop(index)
        self.charge(self.vm.costs.array_access
                    + self.vm.costs.copy_per_element
                    * (len(self._items) - index))
        return old

    def index_of(self, value: Any) -> int:
        scanned = 0
        found = -1
        for i, item in enumerate(self._items):
            scanned += 1
            # values_equal, not ==: 1 must not match True/1.0 (Java-like
            # element equality, consistent with every boxed impl).
            if values_equal(item, value):
                found = i
                break
        self.charge(self.vm.costs.array_scan_per_element * max(scanned, 1))
        return found

    def clear(self) -> None:
        self.charge(self.vm.costs.array_access)
        self._items.clear()

    def iter_values(self) -> Iterator[int]:
        # Snapshot at iteration start (uniform across impls).
        for item in list(self._items):
            self.charge(self.vm.costs.array_access)
            yield item

    @property
    def size(self) -> int:
        return len(self._items)

    @property
    def capacity(self) -> int:
        """Current backing-array capacity."""
        return self._capacity

    def peek_values(self) -> List[int]:
        return list(self._items)

    def adt_footprint(self) -> FootprintTriple:
        model = self.vm.model
        n = len(self._items)
        live = self.anchor.size + self._array.size
        used = self.anchor.size + model.align(model.array_header_bytes
                                              + n * model.int_bytes)
        core = model.int_array_size(n) if n else 0
        return FootprintTriple(live, used, core)

    def adt_internal_ids(self) -> Iterator[int]:
        yield self._array.obj_id
