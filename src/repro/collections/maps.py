"""Map implementations: HashMap, LinkedHashMap, ArrayMap, LazyMap and
SizeAdaptingMap.

* ``HashMap`` (default) -- chained hash table; every mapping costs a
  24-byte entry object plus bucket-table slack.  Section 2.3 shows why
  this dominates TVLA's footprint even at tiny initial capacities.
* ``LinkedHashMap`` -- insertion-order variant with heavier entries.
* ``ArrayMap`` -- a single interleaved ``Object[2*capacity]`` of key/value
  slots with linear lookup; the replacement that cut TVLA's minimal heap
  by 53.95%.
* ``LazyMap`` -- HashMap whose table is allocated on first ``put`` (the
  FindBugs fix for contexts where most maps stay empty).
* ``SizeAdaptingMap`` -- ArrayMap until a size threshold, then a one-way
  conversion to HashMap (the section 2.3 hybrid; threshold ablated in
  E-Hybrid).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.collections.base import MapImpl, values_equal
from repro.collections.hashing import HashTableEngine, next_power_of_two
from repro.memory.heap import HeapObject
from repro.memory.semantic_maps import FootprintTriple

__all__ = [
    "HashMapImpl",
    "LinkedHashMapImpl",
    "LazyMapImpl",
    "ArrayMapImpl",
    "SizeAdaptingMapImpl",
]


class HashMapImpl(MapImpl):
    """Chained hash map (``java.util.HashMap``)."""

    IMPL_NAME = "HashMap"
    DEFAULT_CAPACITY = 16
    LINKED = False
    LAZY = False

    def __init__(self, vm, initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None) -> None:
        super().__init__(vm, initial_capacity, context_id)
        self._allocate_anchor(ref_fields=1, int_fields=3)
        self._table = HashTableEngine(
            self, is_map=True, linked=self.LINKED,
            initial_capacity=(initial_capacity if initial_capacity is not None
                              else self.DEFAULT_CAPACITY),
            lazy=self.LAZY)

    def put(self, key: Any, value: Any) -> Any:
        previous = self._table.put(key, value)
        return None if previous is HashTableEngine.missing() else previous

    def get(self, key: Any) -> Any:
        entry = self._table.get_entry(key)
        return entry.value if entry is not None else None

    def remove_key(self, key: Any) -> Any:
        removed = self._table.remove(key)
        return None if removed is HashTableEngine.missing() else removed

    def contains_key(self, key: Any) -> bool:
        return self._table.get_entry(key) is not None

    def clear(self) -> None:
        self._table.clear()

    def iter_items(self) -> Iterator[Tuple[Any, Any]]:
        for entry in self._table.iter_entries():
            yield entry.key, entry.value

    @property
    def size(self) -> int:
        return self._table.count

    @property
    def capacity(self) -> int:
        """Current bucket-table capacity."""
        return self._table.capacity

    def peek_items(self) -> List[Tuple[Any, Any]]:
        return self._table.peek_pairs()

    def adt_footprint(self) -> FootprintTriple:
        n = self._table.count
        live = self.anchor.size + self._table.live_bytes()
        used = self.anchor.size + self._table.used_bytes()
        core = self.vm.model.core_size(2 * n) if n else 0
        return FootprintTriple(live, used, core)

    def adt_footprint_token(self) -> Optional[int]:
        return self._table.footprint_version

    def adt_internal_ids(self) -> Iterator[int]:
        return self._table.internal_ids()


class LinkedHashMapImpl(HashMapImpl):
    """Hash map with insertion-order iteration (heavier entries)."""

    IMPL_NAME = "LinkedHashMap"
    LINKED = True


class LazyMapImpl(HashMapImpl):
    """HashMap whose bucket table appears only on the first ``put``."""

    IMPL_NAME = "LazyMap"
    LAZY = True


class ArrayMapImpl(MapImpl):
    """Interleaved key/value array map with linear lookup.

    Stores pairs in one ``Object[2*capacity]``; lookup scans keys at even
    slots.  No entry objects, no table slack beyond unused pair slots --
    which is the entire space win over HashMap for small maps.
    """

    IMPL_NAME = "ArrayMap"
    DEFAULT_CAPACITY = 4

    def __init__(self, vm, initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None) -> None:
        super().__init__(vm, initial_capacity, context_id)
        self._keys: List[Any] = []
        self._values: List[Any] = []
        self._array: Optional[HeapObject] = None
        self._capacity = 0  # capacity in *pairs*
        self._allocate_anchor(ref_fields=1, int_fields=1)
        self._grow_to(initial_capacity if initial_capacity is not None
                      else self.DEFAULT_CAPACITY)

    def _grow_to(self, pair_capacity: int) -> None:
        old = self._array
        new = self.vm.allocate(
            "Object[]", self.vm.model.ref_array_size(2 * pair_capacity),
            context_id=self.context_id)
        if old is not None:
            for ref_id, count in old.refs.items():
                new.refs[ref_id] = count
            old.clear_refs()
            self.anchor.remove_ref(old.obj_id)
            self.charge(self.vm.costs.copy_per_element * 2 * len(self._keys))
        self.anchor.add_ref(new.obj_id)
        self._array = new
        self._capacity = pair_capacity

    def _scan(self, key: Any) -> int:
        scanned = 0
        found = -1
        for i, stored in enumerate(self._keys):
            scanned += 1
            if values_equal(stored, key):
                found = i
                break
        self.charge(self.vm.costs.array_scan_per_element * max(scanned, 1))
        return found

    def put(self, key: Any, value: Any) -> Any:
        index = self._scan(key)
        if index >= 0:
            old = self._values[index]
            self._array.remove_ref(self.boxes.release(old))
            self._array.add_ref(self.boxes.ref_for(value))
            self._values[index] = value
            self.charge(self.vm.costs.array_access)
            return old
        needed = len(self._keys) + 1
        if needed > self._capacity:
            self._grow_to(max((self._capacity * 3) // 2 + 1, needed))
        self._array.add_ref(self.boxes.ref_for(key))
        self._array.add_ref(self.boxes.ref_for(value))
        self._keys.append(key)
        self._values.append(value)
        self.charge(self.vm.costs.array_access * 2)
        return None

    def get(self, key: Any) -> Any:
        index = self._scan(key)
        if index < 0:
            return None
        self.charge(self.vm.costs.array_access)
        return self._values[index]

    def remove_key(self, key: Any) -> Any:
        index = self._scan(key)
        if index < 0:
            return None
        old_key = self._keys.pop(index)
        old_value = self._values.pop(index)
        self._array.remove_ref(self.boxes.release(old_key))
        self._array.remove_ref(self.boxes.release(old_value))
        self.charge(self.vm.costs.copy_per_element
                    * 2 * (len(self._keys) - index))
        return old_value

    def contains_key(self, key: Any) -> bool:
        return self._scan(key) >= 0

    def clear(self) -> None:
        for key, value in zip(self._keys, self._values):
            self._array.remove_ref(self.boxes.release(key))
            self._array.remove_ref(self.boxes.release(value))
        self.charge(self.vm.costs.array_access * 2 * len(self._keys))
        self._keys.clear()
        self._values.clear()

    def iter_items(self) -> Iterator[Tuple[Any, Any]]:
        for key, value in zip(list(self._keys), list(self._values)):
            self.charge(self.vm.costs.array_access * 2)
            yield key, value

    @property
    def size(self) -> int:
        return len(self._keys)

    @property
    def capacity(self) -> int:
        """Current capacity in key/value pairs."""
        return self._capacity

    def peek_items(self) -> List[Tuple[Any, Any]]:
        return list(zip(self._keys, self._values))

    def adt_footprint(self) -> FootprintTriple:
        model = self.vm.model
        n = len(self._keys)
        live = self.anchor.size + (self._array.size if self._array else 0)
        used = self.anchor.size + (model.align(model.array_header_bytes
                                               + 2 * n * model.pointer_bytes)
                                   if self._array else 0)
        core = model.core_size(2 * n) if n else 0
        return FootprintTriple(live, used, core)

    def adt_internal_ids(self) -> Iterator[int]:
        if self._array is not None:
            yield self._array.obj_id


class SizeAdaptingMapImpl(MapImpl):
    """Hybrid map: ArrayMap until ``conversion_threshold``, then HashMap.

    One-way conversion, matching section 2.3: "whenever the size of the
    collection increases beyond a certain bound, we can convert the array
    structure to the original implementation".
    """

    IMPL_NAME = "SizeAdaptingMap"
    DEFAULT_CAPACITY = 4
    DEFAULT_THRESHOLD = 16

    def __init__(self, vm, initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None,
                 conversion_threshold: Optional[int] = None) -> None:
        super().__init__(vm, initial_capacity, context_id)
        self.conversion_threshold = (conversion_threshold
                                     if conversion_threshold is not None
                                     else self.DEFAULT_THRESHOLD)
        if self.conversion_threshold < 1:
            raise ValueError("conversion threshold must be >= 1")
        self._allocate_anchor(ref_fields=1, int_fields=1)
        self._inner: MapImpl = ArrayMapImpl(vm, initial_capacity, context_id)
        self.anchor.add_ref(self._inner.anchor_id)
        self._inner.adopt()
        self.conversions = 0

    def _maybe_convert(self) -> None:
        if (isinstance(self._inner, ArrayMapImpl)
                and self._inner.size > self.conversion_threshold):
            hashed = HashMapImpl(
                self.vm,
                initial_capacity=next_power_of_two(self._inner.size * 2),
                context_id=self.context_id)
            for key, value in list(self._inner.iter_items()):
                hashed.put(key, value)
            self._inner.clear()
            self.anchor.remove_ref(self._inner.anchor_id)
            self.anchor.add_ref(hashed.anchor_id)
            hashed.adopt()
            self._inner = hashed
            self.conversions += 1

    def put(self, key: Any, value: Any) -> Any:
        old = self._inner.put(key, value)
        self._maybe_convert()
        return old

    def get(self, key: Any) -> Any:
        return self._inner.get(key)

    def remove_key(self, key: Any) -> Any:
        return self._inner.remove_key(key)

    def contains_key(self, key: Any) -> bool:
        return self._inner.contains_key(key)

    def clear(self) -> None:
        self._inner.clear()

    def iter_items(self) -> Iterator[Tuple[Any, Any]]:
        return self._inner.iter_items()

    @property
    def size(self) -> int:
        return self._inner.size

    @property
    def is_hashed(self) -> bool:
        """Whether the one-way conversion has happened."""
        return isinstance(self._inner, HashMapImpl)

    def peek_items(self) -> List[Tuple[Any, Any]]:
        return self._inner.peek_items()

    def adt_footprint(self) -> FootprintTriple:
        inner = self._inner.adt_footprint()
        return FootprintTriple(self.anchor.size + inner.live,
                               self.anchor.size + inner.used,
                               inner.core)

    def adt_footprint_token(self) -> Optional[int]:
        # Pre-conversion the array inner has no token (no caching);
        # post-conversion the hash engine's version is safe to reuse
        # because the conversion is one-way -- no stale cross-phase hits.
        return self._inner.adt_footprint_token()

    def adt_internal_ids(self) -> Iterator[int]:
        yield self._inner.anchor_id
        yield from self._inner.adt_internal_ids()
