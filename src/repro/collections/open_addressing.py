"""An open-addressing (Trove-style) hash map -- with the paper's caveat.

Section 4.2: alternative open-source implementations "can be swapped-in as
additional possible implementations", but "selecting an open-addressing
implementation of a HashMap (e.g., from the Trove collections) requires
some guarantees on the quality of the hash function being used to avoid
disastrous performance implications".

:class:`OpenAddressingMapImpl` makes both halves of that sentence
measurable:

* **the win** -- no entry objects at all: keys and values live inline in
  one interleaved table, so the per-mapping overhead of the chained
  ``HashMap`` (24 bytes each) disappears;
* **the hazard** -- linear probing clusters catastrophically under a poor
  hash.  The constructor accepts a ``hash_fn`` override; the test suite
  demonstrates the "disastrous performance implications" with a constant
  hash, which a chained table tolerates far better.

Deliberately *not* in the default registry or the built-in rules: per the
paper, the tool cannot see hash quality, so this swap stays a deliberate
user decision (``registry.register("OpenHashMap", ...)``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.collections.base import MapImpl, element_hash, values_equal
from repro.collections.hashing import next_power_of_two
from repro.memory.heap import HeapObject
from repro.memory.semantic_maps import FootprintTriple

__all__ = ["OpenAddressingMapImpl"]

_EMPTY = object()
_TOMBSTONE = object()


class OpenAddressingMapImpl(MapImpl):
    """Linear-probing hash map with inline key/value storage."""

    IMPL_NAME = "OpenHashMap"
    DEFAULT_CAPACITY = 16
    LOAD_FACTOR = 0.5

    def __init__(self, vm, initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None,
                 hash_fn: Optional[Callable[[Any], int]] = None) -> None:
        super().__init__(vm, initial_capacity, context_id)
        self._hash = hash_fn or element_hash
        self._allocate_anchor(ref_fields=1, int_fields=3)
        self._table_obj: Optional[HeapObject] = None
        self._keys: List[Any] = []
        self._values: List[Any] = []
        self._count = 0
        self._allocate_table(next_power_of_two(
            initial_capacity if initial_capacity is not None
            else self.DEFAULT_CAPACITY))

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------
    def _allocate_table(self, capacity: int) -> None:
        vm = self.vm
        old = self._table_obj
        # One interleaved Object[2 * capacity]: key slot, value slot.
        new = vm.allocate("Object[]", vm.model.ref_array_size(2 * capacity),
                          context_id=self.context_id)
        if old is not None:
            for ref_id, count in old.refs.items():
                new.refs[ref_id] = count
            old.clear_refs()
            self.anchor.remove_ref(old.obj_id)
        self.anchor.add_ref(new.obj_id)
        self._table_obj = new
        old_keys, old_values = self._keys, self._values
        self._keys = [_EMPTY] * capacity
        self._values = [None] * capacity
        self._count = 0
        if old is not None:
            rehashed = 0
            for key, value in zip(old_keys, old_values):
                if key is not _EMPTY and key is not _TOMBSTONE:
                    self._insert_fresh(key, value)
                    rehashed += 1
            self.charge(vm.costs.copy_per_element * 2 * rehashed)

    @property
    def capacity(self) -> int:
        """Slots in the probe table."""
        return len(self._keys)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def _probe(self, key: Any) -> Tuple[int, bool]:
        """Linear-probe for ``key``.

        Returns ``(index, found)``: the key's slot if present, else the
        first insertable slot.  Charges one hash computation plus one
        probe per slot examined -- this is where a degenerate hash
        becomes "disastrous": every probe walks the cluster.
        """
        costs = self.vm.costs
        self.charge(costs.hash_compute)
        mask = len(self._keys) - 1
        index = self._hash(key) & mask
        first_free = -1
        probes = 0
        while True:
            probes += 1
            slot = self._keys[index]
            if slot is _EMPTY:
                self.charge(costs.hash_probe * probes)
                return (first_free if first_free >= 0 else index), False
            if slot is _TOMBSTONE:
                if first_free < 0:
                    first_free = index
            elif values_equal(slot, key):
                self.charge(costs.hash_probe * probes)
                return index, True
            index = (index + 1) & mask

    def _insert_fresh(self, key: Any, value: Any) -> None:
        """Insert into a table known not to contain ``key``."""
        mask = len(self._keys) - 1
        index = self._hash(key) & mask
        while self._keys[index] is not _EMPTY:
            index = (index + 1) & mask
        self._keys[index] = key
        self._values[index] = value
        self._table_obj.add_ref(self.boxes.ref_for(key))
        self._table_obj.add_ref(self.boxes.ref_for(value))
        self._count += 1

    # ------------------------------------------------------------------
    # Map operations
    # ------------------------------------------------------------------
    def put(self, key: Any, value: Any) -> Any:
        index, found = self._probe(key)
        if found:
            old = self._values[index]
            self._table_obj.remove_ref(self.boxes.release(old))
            self._table_obj.add_ref(self.boxes.ref_for(value))
            self._values[index] = value
            self.charge(self.vm.costs.array_access)
            return old
        if (self._count + 1) > len(self._keys) * self.LOAD_FACTOR:
            self._allocate_table(len(self._keys) * 2)
            index, _ = self._probe(key)
        self._keys[index] = key
        self._values[index] = value
        self._table_obj.add_ref(self.boxes.ref_for(key))
        self._table_obj.add_ref(self.boxes.ref_for(value))
        self._count += 1
        self.charge(self.vm.costs.array_access * 2)
        return None

    def get(self, key: Any) -> Any:
        index, found = self._probe(key)
        if not found:
            return None
        self.charge(self.vm.costs.array_access)
        return self._values[index]

    def remove_key(self, key: Any) -> Any:
        index, found = self._probe(key)
        if not found:
            return None
        old_key, old_value = self._keys[index], self._values[index]
        self._table_obj.remove_ref(self.boxes.release(old_key))
        self._table_obj.remove_ref(self.boxes.release(old_value))
        self._keys[index] = _TOMBSTONE
        self._values[index] = None
        self._count -= 1
        self.charge(self.vm.costs.array_access * 2)
        return old_value

    def contains_key(self, key: Any) -> bool:
        _, found = self._probe(key)
        return found

    def clear(self) -> None:
        for key, value in zip(self._keys, self._values):
            if key is not _EMPTY and key is not _TOMBSTONE:
                self._table_obj.remove_ref(self.boxes.release(key))
                self._table_obj.remove_ref(self.boxes.release(value))
        self.charge(self.vm.costs.array_access * len(self._keys))
        self._keys = [_EMPTY] * len(self._keys)
        self._values = [None] * len(self._values)
        self._count = 0

    def iter_items(self) -> Iterator[Tuple[Any, Any]]:
        for key, value in zip(list(self._keys), list(self._values)):
            self.charge(self.vm.costs.array_access)
            if key is not _EMPTY and key is not _TOMBSTONE:
                yield key, value

    def peek_items(self) -> List[Tuple[Any, Any]]:
        return [(key, value)
                for key, value in zip(self._keys, self._values)
                if key is not _EMPTY and key is not _TOMBSTONE]

    @property
    def size(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Footprint
    # ------------------------------------------------------------------
    def adt_footprint(self) -> FootprintTriple:
        model = self.vm.model
        live = self.anchor.size + self._table_obj.size
        used = self.anchor.size + model.align(
            model.array_header_bytes
            + 2 * self._count * model.pointer_bytes)
        core = model.core_size(2 * self._count) if self._count else 0
        return FootprintTriple(live, used, core)

    def adt_internal_ids(self) -> Iterator[int]:
        yield self._table_obj.obj_id
