"""Primitive-array list family: "IntArray -- array of ints. (Similar for
other primitives)" (section 4.2).

:class:`~repro.collections.lists.IntArrayImpl` is the hand-written member
of the family; this module generates the siblings from a slot description,
so ``LongArray``, ``DoubleArray``, ``BoolArray`` (and any user-defined
primitive) share one implementation of the storage logic while differing
in slot width and accepted values -- exactly how such families are stamped
out in real collection libraries.
"""

from __future__ import annotations

import numbers
from typing import Any, Callable, Iterator, List, Optional, Type

from repro.collections.base import ListImpl, values_equal
from repro.collections.lists import grow_capacity
from repro.memory.heap import HeapObject
from repro.memory.semantic_maps import FootprintTriple

__all__ = ["PrimitiveArrayImpl", "make_primitive_array_impl",
           "LongArrayImpl", "DoubleArrayImpl", "BoolArrayImpl"]


class PrimitiveArrayImpl(ListImpl):
    """Generic unboxed array list; subclasses fix slot width and checks.

    Class attributes set by :func:`make_primitive_array_impl`:

    * ``SLOT_BYTES`` -- bytes per element slot;
    * ``ARRAY_TYPE_NAME`` -- simulated array type (``"long[]"``...);
    * ``CHECK`` -- value validator/normaliser (raises ``TypeError``).
    """

    IMPL_NAME = "PrimitiveArray"
    DEFAULT_CAPACITY = 10
    SLOT_BYTES = 4
    ARRAY_TYPE_NAME = "prim[]"
    CHECK: Callable[[Any], Any] = staticmethod(lambda value: value)

    def __init__(self, vm, initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None) -> None:
        super().__init__(vm, initial_capacity, context_id)
        self._items: List[Any] = []
        self._array: Optional[HeapObject] = None
        self._capacity = 0
        self._allocate_anchor(ref_fields=1, int_fields=2)
        self._grow_to(initial_capacity if initial_capacity is not None
                      else self.DEFAULT_CAPACITY)

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def _array_bytes(self, slots: int) -> int:
        model = self.vm.model
        return model.align(model.array_header_bytes
                           + slots * self.SLOT_BYTES)

    def _grow_to(self, capacity: int) -> None:
        old = self._array
        new = self.vm.allocate(self.ARRAY_TYPE_NAME,
                               self._array_bytes(capacity),
                               context_id=self.context_id)
        if old is not None:
            self.anchor.remove_ref(old.obj_id)
            self.charge(self.vm.costs.copy_per_element * len(self._items))
        self.anchor.add_ref(new.obj_id)
        self._array = new
        self._capacity = capacity

    def _ensure_capacity(self, needed: int) -> None:
        if needed > self._capacity:
            self._grow_to(grow_capacity(self._capacity, needed))

    # ------------------------------------------------------------------
    # List operations
    # ------------------------------------------------------------------
    def add(self, value: Any) -> None:
        value = self.CHECK(value)
        self._ensure_capacity(len(self._items) + 1)
        self._items.append(value)
        self.charge(self.vm.costs.array_access)

    def add_at(self, index: int, value: Any) -> None:
        value = self.CHECK(value)
        size = len(self._items)
        if not 0 <= index <= size:
            raise IndexError(f"index {index} out of range [0, {size}]")
        self._ensure_capacity(size + 1)
        self._items.insert(index, value)
        self.charge(self.vm.costs.array_access
                    + self.vm.costs.copy_per_element * (size - index))

    def get(self, index: int) -> Any:
        self._check_index(index, len(self._items))
        self.charge(self.vm.costs.array_access)
        return self._items[index]

    def set_at(self, index: int, value: Any) -> Any:
        value = self.CHECK(value)
        self._check_index(index, len(self._items))
        old = self._items[index]
        self._items[index] = value
        self.charge(self.vm.costs.array_access)
        return old

    def remove_at(self, index: int) -> Any:
        self._check_index(index, len(self._items))
        old = self._items.pop(index)
        self.charge(self.vm.costs.array_access
                    + self.vm.costs.copy_per_element
                    * (len(self._items) - index))
        return old

    def index_of(self, value: Any) -> int:
        scanned = 0
        found = -1
        for i, item in enumerate(self._items):
            scanned += 1
            if values_equal(item, value):
                found = i
                break
        self.charge(self.vm.costs.array_scan_per_element * max(scanned, 1))
        return found

    def clear(self) -> None:
        self.charge(self.vm.costs.array_access)
        self._items.clear()

    def iter_values(self) -> Iterator[Any]:
        # Snapshot at iteration start (uniform across impls).
        for item in list(self._items):
            self.charge(self.vm.costs.array_access)
            yield item

    def peek_values(self) -> List[Any]:
        return list(self._items)

    @property
    def size(self) -> int:
        return len(self._items)

    @property
    def capacity(self) -> int:
        """Current backing-array capacity in slots."""
        return self._capacity

    # ------------------------------------------------------------------
    # Footprint
    # ------------------------------------------------------------------
    def adt_footprint(self) -> FootprintTriple:
        n = len(self._items)
        live = self.anchor.size + self._array.size
        used = self.anchor.size + self._array_bytes(n)
        core = self._array_bytes(n) if n else 0
        return FootprintTriple(live, used, min(core, used))

    def adt_internal_ids(self) -> Iterator[int]:
        yield self._array.obj_id


def make_primitive_array_impl(name: str, slot_bytes: int,
                              check: Callable[[Any], Any],
                              array_type_name: Optional[str] = None,
                              ) -> Type[PrimitiveArrayImpl]:
    """Stamp out one member of the primitive-array family.

    Args:
        name: Implementation name (``"LongArray"``).
        slot_bytes: Bytes per element slot.
        check: Validator; must raise ``TypeError`` on foreign values and
            return the (possibly normalised) stored value.
        array_type_name: Simulated array type; defaults from ``name``.
    """
    if slot_bytes <= 0:
        raise ValueError("slot width must be positive")
    return type(name + "Impl", (PrimitiveArrayImpl,), {
        "IMPL_NAME": name,
        "SLOT_BYTES": slot_bytes,
        "ARRAY_TYPE_NAME": array_type_name or name.replace("Array", "").lower() + "[]",
        "CHECK": staticmethod(check),
        "__doc__": f"Unboxed {slot_bytes}-byte-per-slot list ({name}).",
    })


def _check_integral(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"expected an int, not {type(value).__name__}")
    return int(value)


def _check_real(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"expected a float, not {type(value).__name__}")
    return float(value)


def _check_bool(value: Any) -> bool:
    if not isinstance(value, bool):
        raise TypeError(f"expected a bool, not {type(value).__name__}")
    return value


LongArrayImpl = make_primitive_array_impl("LongArray", 8, _check_integral)
DoubleArrayImpl = make_primitive_array_impl("DoubleArray", 8, _check_real)
BoolArrayImpl = make_primitive_array_impl("BoolArray", 1, _check_bool)
