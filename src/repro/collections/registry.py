"""The implementation registry: name -> factory, per-ADT-kind.

Section 4.2: "Our library provides a number of alternative implementations,
and we allow the user to add her own implementations".  The registry is that
extension point.  It maps implementation names (the strings the rule
language's ``implType`` production uses) to factories, records which ADT
kinds each implementation can back, and knows the default implementation
for every source type (``HashMap`` allocations default to ``HashMapImpl``,
and so on).

A process-wide :func:`default_registry` carries the built-ins; tests and
users may build isolated registries or register custom implementations on
the default one.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.collections.base import CollectionImpl, CollectionKind
from repro.collections.hashed_list import HashBackedListImpl
from repro.collections.lists import (ArrayListImpl, EmptyListImpl,
                                     IntArrayImpl, LazyArrayListImpl,
                                     LinkedListImpl, SingletonListImpl)
from repro.collections.primitive_arrays import (BoolArrayImpl,
                                                DoubleArrayImpl,
                                                LongArrayImpl)
from repro.collections.maps import (ArrayMapImpl, HashMapImpl, LazyMapImpl,
                                    LinkedHashMapImpl, SizeAdaptingMapImpl)
from repro.collections.sets import (ArraySetImpl, HashSetImpl, LazySetImpl,
                                    LinkedHashSetImpl, SizeAdaptingSetImpl)

__all__ = ["ImplementationRegistry", "default_registry"]

ImplFactory = Callable[..., CollectionImpl]


class ImplementationRegistry:
    """Named collection-implementation factories, queried by ADT kind."""

    def __init__(self) -> None:
        self._factories: Dict[CollectionKind, Dict[str, ImplFactory]] = {
            kind: {} for kind in CollectionKind}
        self._defaults: Dict[str, str] = {}
        self._src_kinds: Dict[str, CollectionKind] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, factory: ImplFactory,
                 kinds: Iterable[CollectionKind]) -> None:
        """Register ``factory`` under ``name`` for the given ADT kinds."""
        kinds = list(kinds)
        if not kinds:
            raise ValueError("an implementation must back at least one kind")
        for kind in kinds:
            self._factories[kind][name] = factory

    def register_source_type(self, src_type: str, kind: CollectionKind,
                             default_impl: str) -> None:
        """Declare a program-visible source type and its default backing."""
        if default_impl not in self._factories[kind]:
            raise KeyError(f"unknown implementation {default_impl!r} "
                           f"for kind {kind.value}")
        self._defaults[src_type] = default_impl
        self._src_kinds[src_type] = kind

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def create(self, vm, name: str, kind: CollectionKind,
               initial_capacity: Optional[int] = None,
               context_id: Optional[int] = None,
               **kwargs) -> CollectionImpl:
        """Instantiate implementation ``name`` backing ADT ``kind``."""
        factory = self._factories[kind].get(name)
        if factory is None:
            raise KeyError(
                f"no implementation named {name!r} can back a {kind.value}")
        return factory(vm, initial_capacity=initial_capacity,
                       context_id=context_id, **kwargs)

    def supports(self, name: str, kind: CollectionKind) -> bool:
        """Whether ``name`` can back ADT ``kind``."""
        return name in self._factories[kind]

    def names_for_kind(self, kind: CollectionKind) -> Iterable[str]:
        """All implementation names registered for ``kind``."""
        return sorted(self._factories[kind].keys())

    def default_impl_for(self, src_type: str) -> str:
        """The default implementation behind a source type."""
        default = self._defaults.get(src_type)
        if default is None:
            raise KeyError(f"unknown source type {src_type!r}")
        return default

    def kind_of(self, src_type: str) -> CollectionKind:
        """The ADT kind of a source type."""
        kind = self._src_kinds.get(src_type)
        if kind is None:
            raise KeyError(f"unknown source type {src_type!r}")
        return kind

    def known_source_types(self) -> Iterable[str]:
        """Every declared source type."""
        return sorted(self._defaults.keys())


def _build_default_registry() -> ImplementationRegistry:
    registry = ImplementationRegistry()
    L, S, M = CollectionKind.LIST, CollectionKind.SET, CollectionKind.MAP

    registry.register("ArrayList", ArrayListImpl, [L])
    registry.register("LazyArrayList", LazyArrayListImpl, [L])
    registry.register("LinkedList", LinkedListImpl, [L])
    registry.register("SingletonList", SingletonListImpl, [L])
    registry.register("EmptyList", EmptyListImpl, [L])
    registry.register("IntArray", IntArrayImpl, [L])
    registry.register("LongArray", LongArrayImpl, [L])
    registry.register("DoubleArray", DoubleArrayImpl, [L])
    registry.register("BoolArray", BoolArrayImpl, [L])
    # "LinkedHashSet" backs sets natively and lists via the order-keeping
    # hash adapter (the Table 2 ArrayList-with-heavy-contains replacement).
    registry.register("LinkedHashSet", LinkedHashSetImpl, [S])
    registry.register("LinkedHashSet", HashBackedListImpl, [L])

    registry.register("HashSet", HashSetImpl, [S])
    registry.register("ArraySet", ArraySetImpl, [S])
    registry.register("LazySet", LazySetImpl, [S])
    registry.register("SizeAdaptingSet", SizeAdaptingSetImpl, [S])

    registry.register("HashMap", HashMapImpl, [M])
    registry.register("LinkedHashMap", LinkedHashMapImpl, [M])
    registry.register("ArrayMap", ArrayMapImpl, [M])
    registry.register("LazyMap", LazyMapImpl, [M])
    registry.register("SizeAdaptingMap", SizeAdaptingMapImpl, [M])

    registry.register_source_type("ArrayList", L, "ArrayList")
    registry.register_source_type("LinkedList", L, "LinkedList")
    registry.register_source_type("List", L, "ArrayList")
    registry.register_source_type("HashSet", S, "HashSet")
    registry.register_source_type("LinkedHashSet", S, "LinkedHashSet")
    registry.register_source_type("Set", S, "HashSet")
    registry.register_source_type("HashMap", M, "HashMap")
    registry.register_source_type("LinkedHashMap", M, "LinkedHashMap")
    registry.register_source_type("Map", M, "HashMap")
    return registry


_DEFAULT = _build_default_registry()


def default_registry() -> ImplementationRegistry:
    """The process-wide registry pre-loaded with the built-in library."""
    return _DEFAULT
