"""Set implementations: HashSet, LinkedHashSet, ArraySet, LazySet and
SizeAdaptingSet.

These mirror section 4.2's alternatives:

* ``HashSet`` (default) -- hash-table backed; pays a 24-byte entry per
  element plus bucket-table slack, fast membership at any size.
* ``LinkedHashSet`` -- hash set with insertion-order iteration (the Table 2
  target for ArrayLists doing heavy ``contains``).
* ``ArraySet`` -- plain array with linear membership; no per-element
  overhead, faster than hashing at small sizes ("constants matter").
* ``LazySet`` -- HashSet whose table is only allocated on first update.
* ``SizeAdaptingSet`` -- starts as an array and converts itself to a hash
  set when it outgrows a threshold (the section 2.3 hybrid, ablated in
  the E-Hybrid benchmark).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from repro.collections.base import SetImpl, values_equal
from repro.collections.hashing import HashTableEngine, next_power_of_two
from repro.memory.heap import HeapObject
from repro.memory.semantic_maps import FootprintTriple

__all__ = [
    "HashSetImpl",
    "LinkedHashSetImpl",
    "LazySetImpl",
    "ArraySetImpl",
    "SizeAdaptingSetImpl",
]


class HashSetImpl(SetImpl):
    """Hash-table backed set (``java.util.HashSet``)."""

    IMPL_NAME = "HashSet"
    DEFAULT_CAPACITY = 16
    LINKED = False
    LAZY = False

    def __init__(self, vm, initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None) -> None:
        super().__init__(vm, initial_capacity, context_id)
        self._allocate_anchor(ref_fields=1, int_fields=3)
        self._table = HashTableEngine(
            self, is_map=False, linked=self.LINKED,
            initial_capacity=(initial_capacity if initial_capacity is not None
                              else self.DEFAULT_CAPACITY),
            lazy=self.LAZY)

    def add(self, value: Any) -> bool:
        previous = self._table.put(value, None)
        return previous is HashTableEngine.missing()

    def remove_value(self, value: Any) -> bool:
        return self._table.remove(value) is not HashTableEngine.missing()

    def contains(self, value: Any) -> bool:
        return self._table.get_entry(value) is not None

    def clear(self) -> None:
        self._table.clear()

    def iter_values(self) -> Iterator[Any]:
        for entry in self._table.iter_entries():
            yield entry.key

    @property
    def size(self) -> int:
        return self._table.count

    @property
    def capacity(self) -> int:
        """Current bucket-table capacity."""
        return self._table.capacity

    def peek_values(self) -> List[Any]:
        return self._table.peek_keys()

    def adt_footprint(self) -> FootprintTriple:
        n = self._table.count
        live = self.anchor.size + self._table.live_bytes()
        used = self.anchor.size + self._table.used_bytes()
        core = self.vm.model.core_size(n) if n else 0
        return FootprintTriple(live, used, core)

    def adt_footprint_token(self) -> Optional[int]:
        return self._table.footprint_version

    def adt_internal_ids(self) -> Iterator[int]:
        return self._table.internal_ids()


class LinkedHashSetImpl(HashSetImpl):
    """Hash set with insertion-order iteration (heavier entries)."""

    IMPL_NAME = "LinkedHashSet"
    LINKED = True


class LazySetImpl(HashSetImpl):
    """HashSet whose bucket table appears only on the first update."""

    IMPL_NAME = "LazySet"
    LAZY = True


class ArraySetImpl(SetImpl):
    """Array-backed set: linear membership, zero per-element overhead."""

    IMPL_NAME = "ArraySet"
    DEFAULT_CAPACITY = 4

    def __init__(self, vm, initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None) -> None:
        super().__init__(vm, initial_capacity, context_id)
        self._items: List[Any] = []
        self._array: Optional[HeapObject] = None
        self._capacity = 0
        self._allocate_anchor(ref_fields=1, int_fields=1)
        self._grow_to(initial_capacity if initial_capacity is not None
                      else self.DEFAULT_CAPACITY)

    def _grow_to(self, capacity: int) -> None:
        old = self._array
        new = self.vm.allocate("Object[]",
                               self.vm.model.ref_array_size(capacity),
                               context_id=self.context_id)
        if old is not None:
            for ref_id, count in old.refs.items():
                new.refs[ref_id] = count
            old.clear_refs()
            self.anchor.remove_ref(old.obj_id)
            self.charge(self.vm.costs.copy_per_element * len(self._items))
        self.anchor.add_ref(new.obj_id)
        self._array = new
        self._capacity = capacity

    def _scan(self, value: Any) -> int:
        scanned = 0
        found = -1
        for i, item in enumerate(self._items):
            scanned += 1
            if values_equal(item, value):
                found = i
                break
        self.charge(self.vm.costs.array_scan_per_element * max(scanned, 1))
        return found

    def add(self, value: Any) -> bool:
        if self._scan(value) >= 0:
            return False
        needed = len(self._items) + 1
        if needed > self._capacity:
            self._grow_to(max((self._capacity * 3) // 2 + 1, needed))
        self._array.add_ref(self.boxes.ref_for(value))
        self._items.append(value)
        self.charge(self.vm.costs.array_access)
        return True

    def remove_value(self, value: Any) -> bool:
        index = self._scan(value)
        if index < 0:
            return False
        old = self._items.pop(index)
        self._array.remove_ref(self.boxes.release(old))
        self.charge(self.vm.costs.copy_per_element
                    * (len(self._items) - index))
        return True

    def contains(self, value: Any) -> bool:
        return self._scan(value) >= 0

    def clear(self) -> None:
        for item in self._items:
            self._array.remove_ref(self.boxes.release(item))
        self.charge(self.vm.costs.array_access * len(self._items))
        self._items.clear()

    def iter_values(self) -> Iterator[Any]:
        # Snapshot at iteration start (uniform across impls).
        for item in list(self._items):
            self.charge(self.vm.costs.array_access)
            yield item

    @property
    def size(self) -> int:
        return len(self._items)

    @property
    def capacity(self) -> int:
        """Current backing-array capacity."""
        return self._capacity

    def peek_values(self) -> List[Any]:
        return list(self._items)

    def adt_footprint(self) -> FootprintTriple:
        model = self.vm.model
        n = len(self._items)
        live = self.anchor.size + (self._array.size if self._array else 0)
        used = self.anchor.size + (model.align(model.array_header_bytes
                                               + n * model.pointer_bytes)
                                   if self._array else 0)
        core = model.core_size(n) if n else 0
        return FootprintTriple(live, used, core)

    def adt_internal_ids(self) -> Iterator[int]:
        if self._array is not None:
            yield self._array.obj_id


class SizeAdaptingSetImpl(SetImpl):
    """Hybrid set: array storage until ``conversion_threshold``, then a
    one-way conversion to a hash set (section 2.3's second solution).

    The threshold is the knob the paper found "very tricky": 16 gave TVLA
    a low footprint at an 8% slowdown, 13 gave no footprint win, and
    larger values only degraded time.  The E-Hybrid ablation benchmark
    sweeps it.
    """

    IMPL_NAME = "SizeAdaptingSet"
    DEFAULT_CAPACITY = 4
    DEFAULT_THRESHOLD = 16

    def __init__(self, vm, initial_capacity: Optional[int] = None,
                 context_id: Optional[int] = None,
                 conversion_threshold: Optional[int] = None) -> None:
        super().__init__(vm, initial_capacity, context_id)
        self.conversion_threshold = (conversion_threshold
                                     if conversion_threshold is not None
                                     else self.DEFAULT_THRESHOLD)
        if self.conversion_threshold < 1:
            raise ValueError("conversion threshold must be >= 1")
        self._allocate_anchor(ref_fields=1, int_fields=1)
        self._inner: SetImpl = ArraySetImpl(vm, initial_capacity, context_id)
        self.anchor.add_ref(self._inner.anchor_id)
        self._inner.adopt()
        self.conversions = 0

    def _maybe_convert(self) -> None:
        if (isinstance(self._inner, ArraySetImpl)
                and self._inner.size > self.conversion_threshold):
            hashed = HashSetImpl(
                self.vm,
                initial_capacity=next_power_of_two(self._inner.size * 2),
                context_id=self.context_id)
            for value in list(self._inner.iter_values()):
                hashed.add(value)
            self._inner.clear()
            self.anchor.remove_ref(self._inner.anchor_id)
            self.anchor.add_ref(hashed.anchor_id)
            hashed.adopt()
            self._inner = hashed
            self.conversions += 1

    def add(self, value: Any) -> bool:
        added = self._inner.add(value)
        if added:
            self._maybe_convert()
        return added

    def remove_value(self, value: Any) -> bool:
        return self._inner.remove_value(value)

    def contains(self, value: Any) -> bool:
        return self._inner.contains(value)

    def clear(self) -> None:
        self._inner.clear()

    def iter_values(self) -> Iterator[Any]:
        return self._inner.iter_values()

    @property
    def size(self) -> int:
        return self._inner.size

    @property
    def is_hashed(self) -> bool:
        """Whether the one-way conversion has happened."""
        return isinstance(self._inner, HashSetImpl)

    def peek_values(self) -> List[Any]:
        return self._inner.peek_values()

    def adt_footprint(self) -> FootprintTriple:
        inner = self._inner.adt_footprint()
        return FootprintTriple(self.anchor.size + inner.live,
                               self.anchor.size + inner.used,
                               inner.core)

    def adt_footprint_token(self) -> Optional[int]:
        # One-way array->hash conversion: no token until hashed, then the
        # engine version (never a stale cross-phase hit).
        return self._inner.adt_footprint_token()

    def adt_internal_ids(self) -> Iterator[int]:
        yield self._inner.anchor_id
        yield from self._inner.adt_internal_ids()
