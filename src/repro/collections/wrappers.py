"""The Chameleon wrappers: one level of indirection over implementations.

Section 4.1: rather than rewriting type declarations, every collection the
program allocates is "a small wrapper object" whose single field points at
the backing implementation, which can therefore be chosen per allocation
context -- by the programmer, by the offline tool, or online -- and even
swapped while the collection is live.

The wrapper is also where the *library half* of the semantic profiler
lives (Fig. 5): at construction it captures the allocation context
(subject to sampling and the cost model), consults the replacement policy,
and obtains its ``ObjectContextInfo``; every delegated operation then
updates the instance's operation counters and maximal size.  When the
wrapper's heap object dies, the GC death hook folds the record into the
context's aggregate.

Python-protocol conveniences (``__len__``, ``snapshot``) are *unrecorded*
accessors for tests and debugging; the Java-like methods (``size()``,
``get``...) are the simulated program operations that charge ticks and
update profiles.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Dict, Iterable, Iterator, List,
                    Optional, Tuple, Union)

from repro.collections.base import (CollectionImpl, CollectionKind, ListImpl,
                                    MapImpl, SetImpl)
from repro.collections.iterators import CollectionIterator, make_iterator
from repro.collections.registry import ImplementationRegistry, default_registry
from repro.memory.heap import HeapObject
from repro.memory.semantic_maps import FootprintTriple
from repro.profiler.counters import Op
from repro.runtime.context import ContextKey

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.runtime.vm import RuntimeEnvironment

__all__ = ["ChameleonCollection", "ChameleonList", "ChameleonSet",
           "ChameleonMap"]


class ChameleonCollection:
    """Common wrapper machinery for the three ADT kinds."""

    KIND: CollectionKind
    DEFAULT_SRC_TYPE: str

    #: Inline-cached dispatch plan (``vm_core="fast"`` only).  ``None``
    #: means "stale": the next recorded op rebuilds it.  Kept as a class
    #: default so reference instances carry it for free and ``swap_to``
    #: can invalidate unconditionally.
    _plan: Optional[tuple] = None

    def __new__(cls, vm: "RuntimeEnvironment", *args: Any, **kwargs: Any):
        # Core selection happens at construction: under the fast
        # operation pipeline the concrete class is swapped for its
        # inline-cached variant, so per-op dispatch pays no core check.
        # getattr keeps duck-typed stand-in VMs (tests) on the
        # reference path.
        if getattr(vm, "vm_core", None) == "fast":
            cls = _FAST_VARIANTS.get(cls, cls)
        return object.__new__(cls)

    def __init__(self, vm: "RuntimeEnvironment", *,
                 src_type: Optional[str] = None,
                 initial_capacity: Optional[int] = None,
                 context: Optional[ContextKey] = None,
                 impl: Optional[str] = None,
                 copy_from: Optional["ChameleonCollection"] = None,
                 registry: Optional[ImplementationRegistry] = None,
                 use_shared_empty_iterator: bool = False,
                 impl_kwargs: Optional[Dict[str, Any]] = None) -> None:
        self.vm = vm
        self.registry = registry or default_registry()
        self.src_type = src_type or self.DEFAULT_SRC_TYPE
        self.use_shared_empty_iterator = use_shared_empty_iterator
        self._explicit_capacity = initial_capacity

        profile = (vm.profiling_enabled
                   and vm.profiler.should_sample(self.src_type))
        if vm.profiling_enabled and not profile:
            vm.profiler.on_unsampled_allocation(self.src_type)

        self.context_id = self._resolve_context(context, profile)
        choice = vm.choose_implementation(self.src_type, self.context_id)

        impl_name = impl
        capacity = initial_capacity
        merged_kwargs = dict(impl_kwargs or {})
        if choice is not None:
            if impl_name is None and choice.impl_name is not None:
                impl_name = choice.impl_name
            if choice.initial_capacity is not None:
                capacity = choice.initial_capacity
            if choice.impl_kwargs:
                merged_kwargs.update(choice.impl_kwargs)
        if impl_name is None:
            impl_name = self.registry.default_impl_for(self.src_type)

        self.impl: CollectionImpl = self.registry.create(
            vm, impl_name, kind=self.KIND, initial_capacity=capacity,
            context_id=self.context_id, **merged_kwargs)

        # Per-cycle footprint caches, keyed on the impl's structural
        # token (None = impl opted out of caching).  Invalidated on
        # swap_to, which replaces the impl outright.
        self._fp_token: Optional[int] = None
        self._fp_triple: Optional[FootprintTriple] = None
        self._ids_token: Optional[int] = None
        self._ids_list: List[int] = []

        self._oci = None
        on_death = None
        if profile:
            self._oci = vm.profiler.on_allocation(
                self.context_id, self.src_type, impl_name,
                initial_capacity=initial_capacity)
            oci = self._oci
            profiler = vm.profiler
            on_death = lambda heap_obj: profiler.on_death(oci)

        wrapper_size = vm.model.object_size(ref_fields=1)
        self.heap_obj: HeapObject = vm.allocate(
            self.src_type, wrapper_size, payload=self,
            context_id=self.context_id, on_death=on_death)
        self.heap_obj.add_ref(self.impl.anchor_id)
        self.impl.adopt()

        if copy_from is not None:
            self._fill_from(copy_from)

        # Observation hook (repro.verify trace recording).  Last, so the
        # tracer sees a fully constructed wrapper; the tracer must stay a
        # pure observer (no charges, no simulated allocation).
        tracer = vm.tracer
        if tracer is not None:
            tracer.on_collection_created(self)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _resolve_context(self, explicit: Optional[ContextKey],
                         profile: bool) -> Optional[int]:
        """Capture/intern the allocation context when anything needs it.

        Instrumented capture (profiling or online policy) is charged to
        the clock; offline-policy lookup models a source edit and is free.
        """
        vm = self.vm
        if explicit is not None:
            return vm.capture_allocation_context(explicit=explicit)
        online = (vm.policy is not None
                  and vm.policy.requires_runtime_capture)
        if profile or vm.policy is not None:
            return vm.capture_allocation_context(
                charged=profile or online)
        return None

    def _fill_from(self, source: "ChameleonCollection") -> None:
        """Copy-constructor fill: counts as ``copied`` on the source and
        as *no* operations on the new collection (section 3.2.2)."""
        source.record_copied()
        self._bulk_absorb(source)
        self._after_mutation()

    def _bulk_absorb(self, source: "ChameleonCollection") -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Profiling plumbing
    # ------------------------------------------------------------------
    def _record(self, op: Op) -> None:
        self.vm.charge(self.vm.costs.wrapper_delegation)
        if self._oci is not None:
            if self.vm.costs.profile_op:
                self.vm.charge(self.vm.costs.profile_op)
            self._oci.record_op(op)

    def _after_mutation(self) -> None:
        if self._oci is not None:
            self._oci.record_size(self.impl.size)

    def _pin_args(self, values: Iterable[Any]) -> List[HeapObject]:
        """Model Java stack roots for heap-object arguments.

        The caller holds its argument in a local for the duration of the
        call, keeping it reachable even while the ADT allocates (array
        growth, entry objects) *before* linking the element in.  The
        simulated heap cannot see Python locals, so the wrapper roots
        heap-object arguments for the span of the delegated operation.
        """
        pinned = [v for v in values if isinstance(v, HeapObject)]
        for value in pinned:
            self.vm.add_root(value)
        return pinned

    def _unpin_args(self, pinned: List[HeapObject]) -> None:
        for value in pinned:
            self.vm.remove_root(value)

    def record_copied(self) -> None:
        """This collection was the source of an addAll/putAll/copy-ctor."""
        if self._oci is not None:
            self._oci.record_copied()

    @property
    def object_info(self):
        """The instance's profiling record, if it was sampled."""
        return self._oci

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------
    def pin(self) -> "ChameleonCollection":
        """Register this collection as a GC root; returns self."""
        self.vm.add_root(self.heap_obj)
        return self

    def unpin(self) -> None:
        """Drop the root registration (the collection may now die)."""
        self.vm.remove_root(self.heap_obj)

    def swap_to(self, impl_name: str,
                initial_capacity: Optional[int] = None,
                impl_kwargs: Optional[Dict[str, Any]] = None) -> None:
        """Swap the backing implementation while live.

        Elements are migrated through charged operations (the real cost of
        an online conversion); the old implementation and its internals
        become garbage.
        """
        capacity = initial_capacity
        if capacity is None:
            capacity = max(self.impl.size, 1)
        new_impl = self.registry.create(
            self.vm, impl_name, kind=self.KIND, initial_capacity=capacity,
            context_id=self.context_id, **(impl_kwargs or {}))
        old_impl = self.impl
        self.impl = new_impl
        self._fp_token = None
        self._ids_token = None
        # The dispatch plan folds bound methods of the *old* impl;
        # drop it so the next recorded op rebuilds against the new one.
        self._plan = None
        self._migrate(old_impl, new_impl)
        self.heap_obj.remove_ref(old_impl.anchor_id)
        self.heap_obj.add_ref(new_impl.anchor_id)
        new_impl.adopt()
        if self._oci is not None:
            self._oci.record_swap()
            self._oci.impl_name = impl_name

    def _migrate(self, old_impl: CollectionImpl,
                 new_impl: CollectionImpl) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared recorded operations
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Recorded ``size()`` operation."""
        self._record(Op.SIZE)
        return self.impl.size

    def is_empty(self) -> bool:
        """Recorded ``isEmpty()`` operation."""
        self._record(Op.IS_EMPTY)
        return self.impl.is_empty

    def clear(self) -> None:
        """Recorded ``clear()`` operation."""
        self._record(Op.CLEAR)
        self.impl.clear()
        self._after_mutation()

    def iterate(self) -> CollectionIterator:
        """Recorded iterator creation over the collection's values."""
        empty = self.impl.is_empty
        self._record(Op.ITERATE)
        if self._oci is not None and empty:
            self._oci.record_op(Op.ITER_EMPTY)
        return make_iterator(self.vm, self.impl.iter_values(), empty=empty,
                             use_shared_empty=self.use_shared_empty_iterator,
                             context_id=self.context_id)

    # ------------------------------------------------------------------
    # Unrecorded conveniences (tests/debugging only)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.impl.size

    def __iter__(self) -> Iterator[Any]:
        return self.iterate()

    def snapshot(self) -> List[Any]:
        """Current values without charging ticks or recording ops."""
        return self.impl.peek_values()

    def footprint(self) -> FootprintTriple:
        """Current ADT footprint including the wrapper object."""
        return self.adt_footprint()

    # ------------------------------------------------------------------
    # AdtFootprint protocol (the wrapper anchors the whole ADT)
    # ------------------------------------------------------------------
    def adt_footprint(self) -> FootprintTriple:
        token = self.impl.adt_footprint_token()
        if token is not None and token == self._fp_token:
            return self._fp_triple
        inner = self.impl.adt_footprint()
        triple = FootprintTriple(inner.live + self.heap_obj.size,
                                 inner.used + self.heap_obj.size,
                                 inner.core)
        if token is not None:
            self._fp_token = token
            self._fp_triple = triple
        return triple

    def adt_internal_ids(self) -> Iterable[int]:
        token = self.impl.adt_footprint_token()
        if token is not None and token == self._ids_token:
            return self._ids_list
        ids = [self.impl.anchor_id]
        ids.extend(self.impl.adt_internal_ids())
        if token is not None:
            self._ids_token = token
            self._ids_list = ids
        return ids

    def adt_element_count(self) -> int:
        return self.impl.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.src_type}->"
                f"{self.impl.IMPL_NAME} size={self.impl.size}>")


class ChameleonList(ChameleonCollection):
    """The wrapped List ADT."""

    KIND = CollectionKind.LIST
    DEFAULT_SRC_TYPE = "ArrayList"

    impl: ListImpl

    def add(self, value: Any) -> None:
        """Append ``value`` (``add(Object)``)."""
        self._record(Op.ADD)
        pinned = self._pin_args((value,))
        try:
            self.impl.add(value)
        finally:
            self._unpin_args(pinned)
        self._after_mutation()

    def add_at(self, index: int, value: Any) -> None:
        """Insert at position (``add(int, Object)``)."""
        self._record(Op.ADD_INDEX)
        pinned = self._pin_args((value,))
        try:
            self.impl.add_at(index, value)
        finally:
            self._unpin_args(pinned)
        self._after_mutation()

    def add_all(self, source: Union["ChameleonCollection", Iterable[Any]],
                ) -> None:
        """Append every element of ``source`` (``addAll(Collection)``).

        Records one ``addAll`` here and one ``copied`` on a wrapped
        source -- both sides of the interaction, per section 3.2.2.
        """
        self._record(Op.ADD_ALL)
        values, pinned = self._source_values(source)
        try:
            for value in values:
                self.impl.add(value)
        finally:
            self._unpin_args(pinned)
        self._after_mutation()

    def add_all_at(self, index: int,
                   source: Union["ChameleonCollection", Iterable[Any]],
                   ) -> None:
        """Insert every element of ``source`` at ``index``."""
        self._record(Op.ADD_ALL_INDEX)
        values, pinned = self._source_values(source)
        try:
            for offset, value in enumerate(values):
                self.impl.add_at(index + offset, value)
        finally:
            self._unpin_args(pinned)
        self._after_mutation()

    def _source_values(self, source):
        """``(values, pinned)`` for a bulk insert.

        Elements of a wrapped source stay reachable through the source
        itself; plain Python iterables get stack-root treatment.
        """
        if isinstance(source, ChameleonCollection):
            source.record_copied()
            return source.impl.iter_values(), []
        values = list(source)
        return values, self._pin_args(values)

    def get(self, index: int) -> Any:
        """Positional read (``get(int)``)."""
        self._record(Op.GET_INDEX)
        return self.impl.get(index)

    def set_at(self, index: int, value: Any) -> Any:
        """Positional replace (``set(int, Object)``)."""
        self._record(Op.SET_INDEX)
        old = self.impl.set_at(index, value)
        self._after_mutation()
        return old

    def remove_at(self, index: int) -> Any:
        """Positional removal (``remove(int)``)."""
        self._record(Op.REMOVE_INDEX)
        old = self.impl.remove_at(index)
        self._after_mutation()
        return old

    def remove_first(self) -> Any:
        """Head removal (``removeFirst()``)."""
        self._record(Op.REMOVE_FIRST)
        old = self.impl.remove_first()
        self._after_mutation()
        return old

    def remove_value(self, value: Any) -> bool:
        """First-occurrence removal (``remove(Object)``)."""
        self._record(Op.REMOVE_OBJECT)
        removed = self.impl.remove_value(value)
        self._after_mutation()
        return removed

    def contains(self, value: Any) -> bool:
        """Membership test (``contains(Object)``)."""
        self._record(Op.CONTAINS)
        return self.impl.contains(value)

    def index_of(self, value: Any) -> int:
        """First-occurrence search (``indexOf(Object)``)."""
        self._record(Op.INDEX_OF)
        return self.impl.index_of(value)

    def to_list(self) -> List[Any]:
        """Recorded ``toArray()``: a charged copy of the contents."""
        self._record(Op.TO_ARRAY)
        return list(self.impl.iter_values())

    def _bulk_absorb(self, source: ChameleonCollection) -> None:
        for value in source.impl.iter_values():
            self.impl.add(value)

    def _migrate(self, old_impl: CollectionImpl,
                 new_impl: CollectionImpl) -> None:
        for value in old_impl.iter_values():
            new_impl.add(value)


class ChameleonSet(ChameleonCollection):
    """The wrapped Set ADT."""

    KIND = CollectionKind.SET
    DEFAULT_SRC_TYPE = "HashSet"

    impl: SetImpl

    def add(self, value: Any) -> bool:
        """Insert ``value``; False if already present."""
        self._record(Op.ADD)
        pinned = self._pin_args((value,))
        try:
            added = self.impl.add(value)
        finally:
            self._unpin_args(pinned)
        self._after_mutation()
        return added

    def add_all(self, source: Union["ChameleonCollection", Iterable[Any]],
                ) -> None:
        """Insert every element of ``source``."""
        self._record(Op.ADD_ALL)
        if isinstance(source, ChameleonCollection):
            source.record_copied()
            values, pinned = source.impl.iter_values(), []
        else:
            values = list(source)
            pinned = self._pin_args(values)
        try:
            for value in values:
                self.impl.add(value)
        finally:
            self._unpin_args(pinned)
        self._after_mutation()

    def remove_value(self, value: Any) -> bool:
        """Remove ``value``; True if it was present."""
        self._record(Op.REMOVE_OBJECT)
        removed = self.impl.remove_value(value)
        self._after_mutation()
        return removed

    def contains(self, value: Any) -> bool:
        """Membership test."""
        self._record(Op.CONTAINS)
        return self.impl.contains(value)

    def _bulk_absorb(self, source: ChameleonCollection) -> None:
        for value in source.impl.iter_values():
            self.impl.add(value)

    def _migrate(self, old_impl: CollectionImpl,
                 new_impl: CollectionImpl) -> None:
        for value in old_impl.iter_values():
            new_impl.add(value)


class ChameleonMap(ChameleonCollection):
    """The wrapped Map ADT."""

    KIND = CollectionKind.MAP
    DEFAULT_SRC_TYPE = "HashMap"

    impl: MapImpl

    def put(self, key: Any, value: Any) -> Any:
        """Associate ``key`` with ``value``; returns the previous value."""
        self._record(Op.PUT)
        pinned = self._pin_args((key, value))
        try:
            old = self.impl.put(key, value)
        finally:
            self._unpin_args(pinned)
        self._after_mutation()
        return old

    def get(self, key: Any) -> Any:
        """Lookup (``get(Object)``)."""
        self._record(Op.GET_OBJECT)
        return self.impl.get(key)

    def remove_key(self, key: Any) -> Any:
        """Remove ``key``'s mapping; returns the removed value."""
        self._record(Op.REMOVE_KEY)
        old = self.impl.remove_key(key)
        self._after_mutation()
        return old

    def contains_key(self, key: Any) -> bool:
        """Key-membership test."""
        self._record(Op.CONTAINS_KEY)
        return self.impl.contains_key(key)

    def contains_value(self, value: Any) -> bool:
        """Value-membership test (linear)."""
        self._record(Op.CONTAINS_VALUE)
        return self.impl.contains_value(value)

    def put_all(self, source: Union["ChameleonMap", Dict[Any, Any]]) -> None:
        """Copy every mapping of ``source`` in (``putAll(Map)``)."""
        self._record(Op.PUT_ALL)
        if isinstance(source, ChameleonMap):
            source.record_copied()
            items, pinned = source.impl.iter_items(), []
        else:
            items = list(source.items())
            pinned = self._pin_args(
                part for pair in items for part in pair)
        try:
            for key, value in items:
                self.impl.put(key, value)
        finally:
            self._unpin_args(pinned)
        self._after_mutation()

    def iterate_items(self) -> CollectionIterator:
        """Recorded iterator over ``(key, value)`` pairs."""
        empty = self.impl.is_empty
        self._record(Op.ITERATE)
        if self._oci is not None and empty:
            self._oci.record_op(Op.ITER_EMPTY)
        return make_iterator(self.vm, self.impl.iter_items(), empty=empty,
                             use_shared_empty=self.use_shared_empty_iterator,
                             context_id=self.context_id)

    def iterate_keys(self) -> CollectionIterator:
        """Recorded iterator over keys."""
        empty = self.impl.is_empty
        self._record(Op.ITERATE)
        if self._oci is not None and empty:
            self._oci.record_op(Op.ITER_EMPTY)
        return make_iterator(self.vm, self.impl.iter_keys(), empty=empty,
                             use_shared_empty=self.use_shared_empty_iterator,
                             context_id=self.context_id)

    def snapshot_items(self) -> List[Tuple[Any, Any]]:
        """Current mappings without charging or recording."""
        return self.impl.peek_items()

    def _bulk_absorb(self, source: ChameleonCollection) -> None:
        for key, value in source.impl.iter_items():
            self.impl.put(key, value)

    def _migrate(self, old_impl: CollectionImpl,
                 new_impl: CollectionImpl) -> None:
        for key, value in old_impl.iter_items():
            new_impl.put(key, value)


# ----------------------------------------------------------------------
# vm_core="fast": inline-cached dispatch variants
# ----------------------------------------------------------------------
#
# One subclass per wrapper kind, selected by ChameleonCollection.__new__
# when the owning VM runs the fast operation pipeline.  Each recorded op
# goes through a per-instance *plan*: a tuple built lazily on first use
# that folds everything the reference `_record` -> charge -> record_op ->
# impl-op -> `_after_mutation` chain re-derives on every call.
#
# Plan layout (shared prefix, then kind-specific bound impl methods):
#
#   plan[0]  stamp        vm.dispatch_stamp captured at build time; the
#                         op path rebuilds when the VM bumped it
#                         (set_tracer / enable_profiling /
#                         disable_profiling), and swap_to resets the
#                         plan to None directly.
#   plan[1]  clock        vm.clock -- per-op constants are added to its
#                         `pending` accumulator (flushed at every
#                         vm.now read; see VMClock).
#   plan[2]  ticks        wrapper_delegation (+ profile_op when the
#                         instance is profiled), validated non-negative
#                         once at build time.
#   plan[3]  counts       the ObjectContextInfo's dense counter array,
#                         or None for unprofiled instances.
#   plan[4]  oci          the ObjectContextInfo itself, or None.
#   plan[5]  add_root     vm.add_root   (argument pinning, refcounted).
#   plan[6]  remove_root  vm.remove_root.
#   plan[7:] bound impl methods, one slot per recorded operation of the
#            kind (invalidated with the plan on swap_to).
#
# Byte-identity discipline mirrors the reference chain exactly: ticks
# are charged and the op counter incremented *before* the impl call (a
# raising op stays counted, as in `_record`), the size watermark is
# updated *after* it, and heap-object arguments are rooted for the span
# of the delegated operation in argument order.  Bulk operations
# (add_all, put_all, ...) and everything else not overridden here
# inherit the reference methods -- interleaving immediate `charge`
# calls with batched `pending` adds commutes, so mixing the two lanes
# is unobservable.

_OP_SIZE = Op.SIZE.index
_OP_IS_EMPTY = Op.IS_EMPTY.index
_OP_CLEAR = Op.CLEAR.index
_OP_ITERATE = Op.ITERATE.index
_OP_ITER_EMPTY = Op.ITER_EMPTY.index


class _FastDispatchMixin:
    """Shared plan machinery + the kind-agnostic recorded operations."""

    def __init__(self, vm: "RuntimeEnvironment", *,
                 src_type: Optional[str] = None,
                 initial_capacity: Optional[int] = None,
                 context: Optional[ContextKey] = None,
                 impl: Optional[str] = None,
                 copy_from: Optional["ChameleonCollection"] = None,
                 registry: Optional[ImplementationRegistry] = None,
                 use_shared_empty_iterator: bool = False,
                 impl_kwargs: Optional[Dict[str, Any]] = None) -> None:
        """Byte-identical twin of :meth:`ChameleonCollection.__init__`.

        Same events in the same order (sampling decision, context
        capture, policy consultation, impl creation, profiler
        registration, wrapper heap allocation, adoption, copy fill,
        tracer callback) with the constant-per-VM work hoisted: the
        wrapper object size is computed once per VM, and the policy /
        context helper frames are inlined for the policy-free common
        case.  The differential vm-core tests hold the two constructors
        to the same observables.
        """
        self.vm = vm
        self.registry = registry = registry or default_registry()
        self.src_type = src_type = src_type or self.DEFAULT_SRC_TYPE
        self.use_shared_empty_iterator = use_shared_empty_iterator
        self._explicit_capacity = initial_capacity

        profiler = vm.profiler
        if vm.profiling_enabled:
            profile = profiler.should_sample(src_type)
            if not profile:
                profiler.on_unsampled_allocation(src_type)
        else:
            profile = False

        # Not inlined: capture_context charges per *walked* stack frame
        # (internal frames included), so the helper frame is part of the
        # priced semantics -- eliding it would change the tick total.
        self.context_id = context_id = self._resolve_context(context,
                                                             profile)
        policy = vm.policy

        impl_name = impl
        capacity = initial_capacity
        if policy is None:
            merged_kwargs = impl_kwargs
        else:
            choice = vm.choose_implementation(src_type, context_id)
            merged_kwargs = dict(impl_kwargs or {})
            if choice is not None:
                if impl_name is None and choice.impl_name is not None:
                    impl_name = choice.impl_name
                if choice.initial_capacity is not None:
                    capacity = choice.initial_capacity
                if choice.impl_kwargs:
                    merged_kwargs.update(choice.impl_kwargs)
        if impl_name is None:
            impl_name = registry.default_impl_for(src_type)

        if merged_kwargs:
            self.impl = registry.create(
                vm, impl_name, kind=self.KIND, initial_capacity=capacity,
                context_id=context_id, **merged_kwargs)
        else:
            self.impl = registry.create(
                vm, impl_name, kind=self.KIND, initial_capacity=capacity,
                context_id=context_id)

        self._fp_token = None
        self._fp_triple = None
        self._ids_token = None
        self._ids_list = []

        self._oci = None
        on_death = None
        if profile:
            oci = self._oci = profiler.on_allocation(
                context_id, src_type, impl_name,
                initial_capacity=initial_capacity)
            on_death = lambda heap_obj: profiler.on_death(oci)

        try:
            wrapper_size = vm._wrapper_size
        except AttributeError:
            wrapper_size = vm._wrapper_size = \
                vm.model.object_size(ref_fields=1)
        heap_obj = self.heap_obj = vm.allocate(
            src_type, wrapper_size, payload=self,
            context_id=context_id, on_death=on_death)
        heap_obj.add_ref(self.impl.anchor_id)
        self.impl.adopt()

        if copy_from is not None:
            self._fill_from(copy_from)

        tracer = vm.tracer
        if tracer is not None:
            tracer.on_collection_created(self)

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def _plan_prefix(self) -> tuple:
        vm = self.vm
        costs = vm.costs
        oci = self._oci
        delegation = costs.wrapper_delegation
        profile_op = costs.profile_op if oci is not None else 0
        if delegation < 0 or profile_op < 0:
            # The reference path surfaces negative ablation constants
            # through the validated VMClock.charge on the op itself;
            # a batched accumulator must never go negative silently.
            raise ValueError("cannot charge negative ticks")
        counts = oci.counts if oci is not None else None
        # Root pins bind the heap's methods directly: vm.add_root /
        # vm.remove_root are pure one-line delegates to them.
        heap = vm.heap
        return (vm.dispatch_stamp, vm.clock, delegation + profile_op,
                counts, oci, heap.add_root, heap.remove_root)

    def _build_plan(self) -> tuple:  # pragma: no cover - kind-specific
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Kind-agnostic recorded operations
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Recorded ``size()`` operation."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_OP_SIZE] += 1
        return self.impl.size

    def is_empty(self) -> bool:
        """Recorded ``isEmpty()`` operation."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_OP_IS_EMPTY] += 1
        return self.impl.is_empty

    def clear(self) -> None:
        """Recorded ``clear()`` operation."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        impl = self.impl
        impl.clear()
        oci = plan[4]
        if oci is not None:
            # clear() cannot fail mid-way, so count + size fuse into
            # one post-op call.
            oci.record_op_size(_OP_CLEAR, impl.size)

    def iterate(self) -> CollectionIterator:
        """Recorded iterator creation over the collection's values."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        impl = self.impl
        empty = impl.is_empty
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_OP_ITERATE] += 1
            if empty:
                counts[_OP_ITER_EMPTY] += 1
        return make_iterator(self.vm, impl.iter_values(), empty=empty,
                             use_shared_empty=self.use_shared_empty_iterator,
                             context_id=self.context_id)


class _FastChameleonList(_FastDispatchMixin, ChameleonList):
    """``ChameleonList`` with inline-cached op dispatch."""

    def _build_plan(self) -> tuple:
        impl = self.impl
        plan = self._plan_prefix() + (
            impl.add, impl.add_at, impl.get, impl.set_at, impl.remove_at,
            impl.remove_first, impl.remove_value, impl.contains,
            impl.index_of)
        self._plan = plan
        return plan

    def add(self, value: Any, _idx: int = Op.ADD.index) -> None:
        """Append ``value`` (``add(Object)``)."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        if isinstance(value, HeapObject):
            plan[5](value)
            try:
                plan[7](value)
            finally:
                plan[6](value)
        else:
            plan[7](value)
        oci = plan[4]
        if oci is not None:
            size = self.impl.size
            oci.final_size = size
            if size > oci.max_size:
                oci.max_size = size

    def add_at(self, index: int, value: Any,
               _idx: int = Op.ADD_INDEX.index) -> None:
        """Insert at position (``add(int, Object)``)."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        if isinstance(value, HeapObject):
            plan[5](value)
            try:
                plan[8](index, value)
            finally:
                plan[6](value)
        else:
            plan[8](index, value)
        oci = plan[4]
        if oci is not None:
            size = self.impl.size
            oci.final_size = size
            if size > oci.max_size:
                oci.max_size = size

    def get(self, index: int, _idx: int = Op.GET_INDEX.index) -> Any:
        """Positional read (``get(int)``)."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        return plan[9](index)

    def set_at(self, index: int, value: Any,
               _idx: int = Op.SET_INDEX.index) -> Any:
        """Positional replace (``set(int, Object)``)."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        old = plan[10](index, value)
        oci = plan[4]
        if oci is not None:
            size = self.impl.size
            oci.final_size = size
            if size > oci.max_size:
                oci.max_size = size
        return old

    def remove_at(self, index: int,
                  _idx: int = Op.REMOVE_INDEX.index) -> Any:
        """Positional removal (``remove(int)``)."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        old = plan[11](index)
        oci = plan[4]
        if oci is not None:
            size = self.impl.size
            oci.final_size = size
            if size > oci.max_size:
                oci.max_size = size
        return old

    def remove_first(self, _idx: int = Op.REMOVE_FIRST.index) -> Any:
        """Head removal (``removeFirst()``)."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        old = plan[12]()
        oci = plan[4]
        if oci is not None:
            size = self.impl.size
            oci.final_size = size
            if size > oci.max_size:
                oci.max_size = size
        return old

    def remove_value(self, value: Any,
                     _idx: int = Op.REMOVE_OBJECT.index) -> bool:
        """First-occurrence removal (``remove(Object)``)."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        removed = plan[13](value)
        oci = plan[4]
        if oci is not None:
            size = self.impl.size
            oci.final_size = size
            if size > oci.max_size:
                oci.max_size = size
        return removed

    def contains(self, value: Any, _idx: int = Op.CONTAINS.index) -> bool:
        """Membership test (``contains(Object)``)."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        return plan[14](value)

    def index_of(self, value: Any, _idx: int = Op.INDEX_OF.index) -> int:
        """First-occurrence search (``indexOf(Object)``)."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        return plan[15](value)


class _FastChameleonSet(_FastDispatchMixin, ChameleonSet):
    """``ChameleonSet`` with inline-cached op dispatch."""

    def _build_plan(self) -> tuple:
        impl = self.impl
        plan = self._plan_prefix() + (
            impl.add, impl.remove_value, impl.contains)
        self._plan = plan
        return plan

    def add(self, value: Any, _idx: int = Op.ADD.index) -> bool:
        """Insert ``value``; False if already present."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        if isinstance(value, HeapObject):
            plan[5](value)
            try:
                added = plan[7](value)
            finally:
                plan[6](value)
        else:
            added = plan[7](value)
        oci = plan[4]
        if oci is not None:
            size = self.impl.size
            oci.final_size = size
            if size > oci.max_size:
                oci.max_size = size
        return added

    def remove_value(self, value: Any,
                     _idx: int = Op.REMOVE_OBJECT.index) -> bool:
        """Remove ``value``; True if it was present."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        removed = plan[8](value)
        oci = plan[4]
        if oci is not None:
            size = self.impl.size
            oci.final_size = size
            if size > oci.max_size:
                oci.max_size = size
        return removed

    def contains(self, value: Any, _idx: int = Op.CONTAINS.index) -> bool:
        """Membership test."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        return plan[9](value)


class _FastChameleonMap(_FastDispatchMixin, ChameleonMap):
    """``ChameleonMap`` with inline-cached op dispatch."""

    def _build_plan(self) -> tuple:
        impl = self.impl
        plan = self._plan_prefix() + (
            impl.put, impl.get, impl.remove_key, impl.contains_key,
            impl.contains_value)
        self._plan = plan
        return plan

    def put(self, key: Any, value: Any, _idx: int = Op.PUT.index) -> Any:
        """Associate ``key`` with ``value``; returns the previous value."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        key_pinned = isinstance(key, HeapObject)
        value_pinned = isinstance(value, HeapObject)
        if key_pinned or value_pinned:
            if key_pinned:
                plan[5](key)
            if value_pinned:
                plan[5](value)
            try:
                old = plan[7](key, value)
            finally:
                if key_pinned:
                    plan[6](key)
                if value_pinned:
                    plan[6](value)
        else:
            old = plan[7](key, value)
        oci = plan[4]
        if oci is not None:
            size = self.impl.size
            oci.final_size = size
            if size > oci.max_size:
                oci.max_size = size
        return old

    def get(self, key: Any, _idx: int = Op.GET_OBJECT.index) -> Any:
        """Lookup (``get(Object)``)."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        return plan[8](key)

    def remove_key(self, key: Any, _idx: int = Op.REMOVE_KEY.index) -> Any:
        """Remove ``key``'s mapping; returns the removed value."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        old = plan[9](key)
        oci = plan[4]
        if oci is not None:
            size = self.impl.size
            oci.final_size = size
            if size > oci.max_size:
                oci.max_size = size
        return old

    def contains_key(self, key: Any,
                     _idx: int = Op.CONTAINS_KEY.index) -> bool:
        """Key-membership test."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        return plan[10](key)

    def contains_value(self, value: Any,
                       _idx: int = Op.CONTAINS_VALUE.index) -> bool:
        """Value-membership test (linear)."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_idx] += 1
        return plan[11](value)

    def iterate_items(self) -> CollectionIterator:
        """Recorded iterator over ``(key, value)`` pairs."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        impl = self.impl
        empty = impl.is_empty
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_OP_ITERATE] += 1
            if empty:
                counts[_OP_ITER_EMPTY] += 1
        return make_iterator(self.vm, impl.iter_items(), empty=empty,
                             use_shared_empty=self.use_shared_empty_iterator,
                             context_id=self.context_id)

    def iterate_keys(self) -> CollectionIterator:
        """Recorded iterator over keys."""
        plan = self._plan
        if plan is None or plan[0] is not self.vm.dispatch_stamp:
            plan = self._build_plan()
        impl = self.impl
        empty = impl.is_empty
        plan[1].pending += plan[2]
        counts = plan[3]
        if counts is not None:
            counts[_OP_ITERATE] += 1
            if empty:
                counts[_OP_ITER_EMPTY] += 1
        return make_iterator(self.vm, impl.iter_keys(), empty=empty,
                             use_shared_empty=self.use_shared_empty_iterator,
                             context_id=self.context_id)


#: Reference class -> fast variant, consulted by
#: ``ChameleonCollection.__new__``.  Unlisted classes (including the
#: fast variants themselves) construct as-is.
_FAST_VARIANTS = {
    ChameleonList: _FastChameleonList,
    ChameleonSet: _FastChameleonSet,
    ChameleonMap: _FastChameleonMap,
}
