"""The Chameleon tool: offline facade, online mode, policy application."""

from repro.core.apply import ReplacementMap
from repro.core.chameleon import (Chameleon, IterativeResult,
                                  OptimizationResult, ProfilingSession,
                                  RunMetrics, optimize_iteratively)
from repro.core.config import ToolConfig
from repro.core.online import OnlineChameleon, OnlinePolicy, OnlineRunResult

__all__ = [
    "ReplacementMap", "Chameleon", "IterativeResult", "OptimizationResult",
    "ProfilingSession", "RunMetrics", "optimize_iteratively", "ToolConfig",
    "OnlineChameleon", "OnlinePolicy", "OnlineRunResult",
]
