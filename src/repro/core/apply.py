"""Applying suggestions: the offline replacement policy.

A :class:`ReplacementMap` is the programmatic form of "modify the top
allocation contexts using the tool suggestions" (section 5.2, step 3): a
mapping from allocation-context *keys* (which are stable across runs,
unlike dense per-VM ids) to implementation choices.  Installed on a fresh
:class:`~repro.runtime.vm.RuntimeEnvironment`, it redirects every matching
collection allocation -- the simulation's equivalent of the replacement
source edit, so consulting it is *not* charged to the virtual clock.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.runtime.context import ContextKey, ContextRegistry
from repro.runtime.vm import ImplementationChoice, RuntimeEnvironment
from repro.rules.suggestions import Suggestion

__all__ = ["ReplacementMap"]


class ReplacementMap:
    """Context-keyed implementation choices (offline application)."""

    #: Offline policies model source edits; capture for them is free.
    requires_runtime_capture = False

    def __init__(self) -> None:
        self._choices: Dict[Tuple[ContextKey, str], ImplementationChoice] = {}
        self._registry: Optional[ContextRegistry] = None
        self.applied_lookups = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def set_choice(self, key: ContextKey, src_type: str,
                   choice: ImplementationChoice) -> None:
        """Map allocations of ``src_type`` at ``key`` to ``choice``."""
        self._choices[(key, src_type)] = choice

    def merge_choice(self, key: ContextKey, src_type: str,
                     choice: ImplementationChoice) -> bool:
        """Fold ``choice`` into any existing entry for the context.

        A later round's capacity advice combines with an earlier round's
        replacement (and vice versa); returns True when the installed
        choice actually changed -- the iterative optimiser's convergence
        signal.
        """
        existing = self._choices.get((key, src_type))
        if existing is None:
            self._choices[(key, src_type)] = choice
            return True
        merged = ImplementationChoice(
            choice.impl_name or existing.impl_name,
            choice.initial_capacity if choice.initial_capacity is not None
            else existing.initial_capacity,
            choice.impl_kwargs or existing.impl_kwargs)
        if merged == existing:
            return False
        self._choices[(key, src_type)] = merged
        return True

    def merge_suggestions(self, suggestions: Iterable[Suggestion],
                          top: Optional[int] = None) -> int:
        """Fold a round of suggestions in; returns how many entries
        changed."""
        changed = 0
        taken = 0
        for suggestion in suggestions:
            if top is not None and taken >= top:
                break
            choice = suggestion.to_choice()
            if choice is None or suggestion.profile.key is None:
                continue
            taken += 1
            if self.merge_choice(suggestion.profile.key,
                                 suggestion.profile.src_type, choice):
                changed += 1
        return changed

    @classmethod
    def from_suggestions(cls, suggestions: Iterable[Suggestion],
                         top: Optional[int] = None) -> "ReplacementMap":
        """Build a policy from ranked suggestions.

        Args:
            suggestions: Engine output, ranked by potential.
            top: Apply only the first ``top`` auto-applicable suggestions
                (the paper applied the handful of top contexts per
                benchmark); ``None`` applies all.
        """
        policy = cls()
        applied = 0
        for suggestion in suggestions:
            if top is not None and applied >= top:
                break
            choice = suggestion.to_choice()
            if choice is None or suggestion.profile.key is None:
                continue
            policy.set_choice(suggestion.profile.key,
                              suggestion.profile.src_type, choice)
            applied += 1
        return policy

    # ------------------------------------------------------------------
    # Pickling (process-pool transfer)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Ship only the choices: the registry binding is per-VM state
        and the lookup counter is per-run introspection, so a policy
        sent to a scheduler worker arrives unbound and fresh."""
        return {"choices": self._choices}

    def __setstate__(self, state: dict) -> None:
        self._choices = state["choices"]
        self._registry = None
        self.applied_lookups = 0

    # ------------------------------------------------------------------
    # ReplacementPolicyProtocol
    # ------------------------------------------------------------------
    def bind(self, vm: RuntimeEnvironment) -> "ReplacementMap":
        """Attach to ``vm`` so dense context ids resolve to keys."""
        self._registry = vm.contexts
        return self

    def choose(self, src_type: str, context_id: Optional[int],
               ) -> Optional[ImplementationChoice]:
        """The installed choice for this allocation, if any."""
        if context_id is None or self._registry is None:
            return None
        key = self._registry.describe(context_id)
        choice = self._choices.get((key, src_type))
        if choice is not None:
            self.applied_lookups += 1
        return choice

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._choices)

    def entries(self) -> List[Tuple[ContextKey, str, ImplementationChoice]]:
        """Every installed (context, source type, choice) entry."""
        return [(key, src, choice)
                for (key, src), choice in self._choices.items()]

    def render(self) -> str:
        """Human-readable policy dump."""
        if not self._choices:
            return "ReplacementMap: (empty)"
        lines = ["ReplacementMap:"]
        for (key, src), choice in self._choices.items():
            target = choice.impl_name or "(keep implementation)"
            capacity = (f", capacity={choice.initial_capacity}"
                        if choice.initial_capacity is not None else "")
            lines.append(f"  {src}:{key.render()} -> {target}{capacity}")
        return "\n".join(lines)
