"""The Chameleon tool facade: profile -> suggest -> apply -> re-run.

This is the automation of the paper's methodology (section 5.2):

1. Run the application under semantic profiling (:meth:`Chameleon.profile`).
2. Evaluate the selection rules over the per-context statistics; rank the
   suggestions by saving potential.
3. Build a :class:`~repro.core.apply.ReplacementMap` from the top
   suggestions and re-run the *uninstrumented* application with it
   (:meth:`Chameleon.plain_run`), comparing ticks and peak footprint.

:meth:`Chameleon.optimize` chains all three and returns a before/after
comparison, which is what the Fig. 6 / Fig. 7 benchmarks drive.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.apply import ReplacementMap
from repro.core.config import ToolConfig
from repro.memory.heap import OutOfMemoryError
from repro.profiler.profiler import SemanticProfiler
from repro.profiler.report import ProfileReport, build_report
from repro.rules.builtin import RuleSpec
from repro.rules.engine import RuleEngine
from repro.rules.suggestions import Suggestion
from repro.runtime.sampling import AlwaysSample, RateSampler
from repro.runtime.vm import ReplacementPolicyProtocol, RuntimeEnvironment
from repro.workloads.base import Workload

__all__ = ["RunMetrics", "ProfilingSession", "OptimizationResult",
           "SessionCache", "Chameleon", "IterativeResult",
           "optimize_iteratively"]


@dataclass(frozen=True)
class RunMetrics:
    """Outcome measures of one workload run."""

    ticks: int
    peak_live_bytes: int
    gc_cycles: int
    total_allocated_bytes: int
    total_allocated_objects: int
    completed: bool

    @classmethod
    def from_vm(cls, vm: RuntimeEnvironment,
                completed: bool = True) -> "RunMetrics":
        """Snapshot the metrics of a finished (or OOM-ed) run."""
        return cls(ticks=vm.now,
                   peak_live_bytes=vm.timeline.max_live_data,
                   gc_cycles=vm.timeline.cycle_count,
                   total_allocated_bytes=vm.heap.total_allocated_bytes,
                   total_allocated_objects=vm.heap.total_allocated_objects,
                   completed=completed)


@dataclass
class ProfilingSession:
    """Everything produced by one profiled run.

    ``vm`` is ``None`` when the session came out of a
    :class:`SessionCache` -- the live runtime is deliberately not
    cached; every other field is.
    """

    vm: Optional[RuntimeEnvironment]
    report: ProfileReport
    suggestions: List[Suggestion]
    metrics: RunMetrics

    def render(self, top: int = 4) -> str:
        """Tool output: top contexts plus ranked suggestions."""
        parts = [self.report.render_top_contexts(top),
                 "",
                 RuleEngine.render(self.suggestions, limit=top)]
        return "\n".join(parts)


@dataclass
class OptimizationResult:
    """Before/after comparison produced by :meth:`Chameleon.optimize`."""

    session: ProfilingSession
    policy: ReplacementMap
    baseline: RunMetrics
    optimized: RunMetrics

    @property
    def peak_reduction(self) -> float:
        """Fractional reduction of peak live footprint (0.2 = 20%)."""
        if self.baseline.peak_live_bytes == 0:
            return 0.0
        return 1.0 - (self.optimized.peak_live_bytes
                      / self.baseline.peak_live_bytes)

    @property
    def time_reduction(self) -> float:
        """Fractional reduction of virtual running time."""
        if self.baseline.ticks == 0:
            return 0.0
        return 1.0 - self.optimized.ticks / self.baseline.ticks

    @property
    def speedup(self) -> float:
        """Baseline ticks / optimized ticks."""
        if self.optimized.ticks == 0:
            return 1.0
        return self.baseline.ticks / self.optimized.ticks

    def render(self) -> str:
        """One-paragraph summary of the optimisation outcome."""
        return (f"applied {len(self.policy)} context fixes: peak footprint "
                f"{self.baseline.peak_live_bytes} -> "
                f"{self.optimized.peak_live_bytes} bytes "
                f"({100 * self.peak_reduction:.1f}% saved), time "
                f"{self.baseline.ticks} -> {self.optimized.ticks} ticks "
                f"({self.speedup:.2f}x)")


class SessionCache:
    """Profiling-session cache keyed by what determines a profiled run.

    Every figure of the evaluation starts by profiling a workload, and
    Fig. 3, Fig. 6, Fig. 7 and the hybrid ablation all profile the *same*
    workloads under the *same* configuration -- deterministic runs, so
    re-profiling reproduces the identical session.  The cache key is
    ``(workload class, seed, scale, manual_fixes, ToolConfig
    fingerprint)``; runs under a policy or an explicit heap limit are
    never cached (their outcome depends on objects that do not
    fingerprint).

    Cached sessions are stored with ``vm=None`` -- the live runtime is
    the one piece of a session that is neither comparable nor picklable,
    and no experiment consumer reads it.  Because storage is trimmed, the
    cache can also spill to disk (:meth:`save` / :meth:`load`) for reuse
    across CLI invocations.
    """

    def __init__(self) -> None:
        self._entries: dict = {}
        self._backing = None
        self.hits = 0
        self.misses = 0
        self.store_hits = 0

    @staticmethod
    def key(config: ToolConfig, workload: Workload) -> tuple:
        """The cache key for profiling ``workload`` under ``config``."""
        cls = type(workload)
        return (f"{cls.__module__}.{cls.__qualname__}", workload.seed,
                workload.scale, workload.manual_fixes, config.fingerprint())

    def attach_store(self, store) -> None:
        """Attach a content-addressed backing store (read-through on
        miss, write-through on :meth:`put`).

        This is how scheduler workers share sessions without re-pickling
        them wholesale: each entry crosses process boundaries exactly
        once, as its own content-addressed file, and every other worker
        reads it back by key instead of recomputing the profile.
        """
        self._backing = store

    def detach_store(self) -> None:
        """Detach the backing store (in-memory entries are kept)."""
        self._backing = None

    @property
    def backing_store(self):
        """The attached store, or ``None``."""
        return self._backing

    def get(self, key: tuple) -> Optional["ProfilingSession"]:
        """The cached session, counting the lookup as a hit or miss.

        A miss in memory falls through to the backing store when one is
        attached; a store hit is counted as a hit (and separately in
        ``store_hits``) and promoted into memory.
        """
        session = self._entries.get(key)
        if session is None and self._backing is not None:
            session = self._backing.get(key)
            if session is not None:
                self._entries[key] = session
                self.store_hits += 1
        if session is None:
            self.misses += 1
        else:
            self.hits += 1
        return session

    def put(self, key: tuple, session: "ProfilingSession") -> None:
        """Store a trimmed (``vm=None``) copy of ``session``."""
        trimmed = dataclasses.replace(session, vm=None)
        self._entries[key] = trimmed
        if self._backing is not None:
            self._backing.put(key, trimmed)

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> list:
        """``(key, trimmed session)`` pairs currently cached (what the
        content-addressed :class:`~repro.analysis.index.SessionStore`
        spills, one file per pair)."""
        return list(self._entries.items())

    def merge(self, entries: dict) -> int:
        """Add every entry whose key is not already cached; returns how
        many were added.  Existing entries are never clobbered."""
        added = 0
        for key, session in entries.items():
            if key not in self._entries:
                self._entries[key] = session
                added += 1
        return added

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters.

        An attached backing store stays attached (and keeps its files):
        clearing resets this *process's* view, not the shared spill.
        """
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.store_hits = 0

    # ------------------------------------------------------------------
    # Disk spill
    # ------------------------------------------------------------------
    def save(self, path: str) -> int:
        """Pickle the entries to ``path`` atomically; returns the entry
        count.

        The pickle goes to a temp file in the target directory and is
        moved into place with ``os.replace``, so a crash mid-dump (or a
        parallel writer) can never leave a truncated spill behind:
        concurrent savers race on the final rename, but every surviving
        file is some one writer's complete pickle.
        """
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".",
            suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(self._entries, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return len(self._entries)

    def load(self, path: str) -> int:
        """Merge entries spilled by :meth:`save`; returns how many were
        added.  A missing file is not an error (first invocation), and a
        corrupt or truncated spill -- e.g. one written by a pre-atomic
        version that crashed mid-dump -- is treated as empty with a
        warning rather than permanently breaking every later run."""
        if not os.path.exists(path):
            return 0
        try:
            with open(path, "rb") as handle:
                entries = pickle.load(handle)
            if not isinstance(entries, dict):
                raise pickle.UnpicklingError(
                    f"expected a dict of sessions, got "
                    f"{type(entries).__name__}")
        except Exception as exc:
            warnings.warn(
                f"session-cache spill {path!r} is corrupt or truncated; "
                f"ignoring it ({type(exc).__name__}: {exc})",
                RuntimeWarning, stacklevel=2)
            return 0
        return self.merge(entries)


class Chameleon:
    """Offline Chameleon: semantic profiling plus the rule engine."""

    def __init__(self, config: Optional[ToolConfig] = None,
                 rules: Optional[List[RuleSpec]] = None,
                 session_cache: Optional[SessionCache] = None) -> None:
        self.config = config or ToolConfig()
        self.session_cache = session_cache
        self.engine = RuleEngine(
            rules=rules,
            constants=self.config.constants,
            stability=self.config.stability,
            min_potential_bytes=self.config.min_potential_bytes)

    # ------------------------------------------------------------------
    # VM construction
    # ------------------------------------------------------------------
    def make_vm(self, profiler: Optional[SemanticProfiler] = None,
                policy: Optional[ReplacementPolicyProtocol] = None,
                heap_limit: Optional[int] = None) -> RuntimeEnvironment:
        """A runtime configured per the tool settings."""
        return RuntimeEnvironment(
            model=self.config.memory_model,
            cost_model=self.config.cost_model,
            heap_limit=heap_limit,
            gc_threshold_bytes=self.config.gc_threshold_bytes,
            context_depth=self.config.context_depth,
            profiler=profiler,
            policy=policy,
            gc_core=self.config.gc_core,
            vm_core=self.config.vm_core)

    def _make_profiler(self) -> SemanticProfiler:
        if self.config.sampling_rate <= 1:
            sampling = AlwaysSample()
        else:
            sampling = RateSampler(self.config.sampling_rate,
                                   warmup=self.config.sampling_warmup)
        return SemanticProfiler(sampling)

    # ------------------------------------------------------------------
    # Phase 1+2: semantic profiling and rule evaluation
    # ------------------------------------------------------------------
    def profile(self, workload: Workload,
                heap_limit: Optional[int] = None,
                policy: Optional[ReplacementMap] = None) -> ProfilingSession:
        """Run ``workload`` under profiling and evaluate the rules.

        ``policy`` profiles the *modified* program -- the paper's step 4,
        "repeat steps 1-3 on the modified version".

        When a :class:`SessionCache` is installed, plain profiled runs
        (no policy, no heap limit) are served from it; cache hits return
        a session with ``vm=None``.  Workloads are deterministic, so the
        cached session is identical to what re-profiling would produce.
        """
        cache_key = None
        if (self.session_cache is not None and policy is None
                and heap_limit is None):
            cache_key = SessionCache.key(self.config, workload)
            cached = self.session_cache.get(cache_key)
            if cached is not None:
                return cached
        vm = self.make_vm(profiler=self._make_profiler(),
                          heap_limit=heap_limit)
        if policy is not None:
            vm.policy = policy.bind(vm)
        workload.run(vm)
        vm.finish()
        report = build_report(vm.profiler, vm.timeline, vm.contexts)
        suggestions = self.engine.evaluate(report)
        session = ProfilingSession(vm=vm, report=report,
                                   suggestions=suggestions,
                                   metrics=RunMetrics.from_vm(vm))
        if cache_key is not None:
            self.session_cache.put(cache_key, session)
        return session

    # ------------------------------------------------------------------
    # Phase 3: application and plain runs
    # ------------------------------------------------------------------
    def build_policy(self, suggestions: List[Suggestion],
                     top: Optional[int] = None) -> ReplacementMap:
        """Turn ranked suggestions into an offline replacement policy."""
        if top is None:
            top = self.config.top_contexts_to_apply
        return ReplacementMap.from_suggestions(suggestions, top=top)

    def plain_run(self, workload: Workload,
                  policy: Optional[ReplacementMap] = None,
                  heap_limit: Optional[int] = None,
                  ) -> Tuple[RuntimeEnvironment, RunMetrics]:
        """Run ``workload`` without instrumentation (the Fig. 7 timing
        configuration), optionally under an applied policy.

        Raises :class:`OutOfMemoryError` if ``heap_limit`` is too small;
        the minimal-heap search relies on that.
        """
        vm = self.make_vm(heap_limit=heap_limit)
        if policy is not None:
            vm.policy = policy.bind(vm)
        workload.run(vm)
        vm.finish()
        return vm, RunMetrics.from_vm(vm)

    def optimize(self, workload: Workload,
                 top: Optional[int] = None) -> OptimizationResult:
        """Full pipeline: profile, suggest, apply, measure before/after."""
        session = self.profile(workload)
        policy = self.build_policy(session.suggestions, top=top)
        _, baseline = self.plain_run(workload)
        _, optimized = self.plain_run(workload, policy=policy)
        return OptimizationResult(session=session, policy=policy,
                                  baseline=baseline, optimized=optimized)


@dataclass
class IterativeResult:
    """Outcome of the paper's iterative methodology (section 5.2 step 4):
    profile, apply the top suggestions, and repeat on the modified
    program until nothing changes."""

    sessions: List[ProfilingSession]
    policy: ReplacementMap
    baseline: RunMetrics
    optimized: RunMetrics
    converged: bool

    @property
    def rounds(self) -> int:
        """Profiling rounds performed."""
        return len(self.sessions)

    @property
    def peak_reduction(self) -> float:
        """Fractional reduction of peak live footprint."""
        if self.baseline.peak_live_bytes == 0:
            return 0.0
        return 1.0 - (self.optimized.peak_live_bytes
                      / self.baseline.peak_live_bytes)

    def render(self) -> str:
        """One-paragraph summary of the iteration."""
        status = "converged" if self.converged else "round limit reached"
        return (f"{self.rounds} rounds ({status}): "
                f"{len(self.policy)} context fixes, peak "
                f"{self.baseline.peak_live_bytes} -> "
                f"{self.optimized.peak_live_bytes} bytes "
                f"({100 * self.peak_reduction:.1f}% saved)")


def optimize_iteratively(tool: "Chameleon", workload: Workload,
                         top_per_round: Optional[int] = None,
                         max_rounds: int = 4) -> IterativeResult:
    """Drive the section 5.2 loop: "Modify the top allocation contexts
    using the tool suggestions ... Repeat steps 1-3 on the modified
    version."

    Each round profiles the program *with the accumulated fixes applied*,
    folds the new round's top suggestions into the policy (capacity advice
    combines with earlier replacements), and stops once a round changes
    nothing.

    Args:
        tool: The configured offline tool.
        workload: The program under optimisation.
        top_per_round: How many ranked suggestions each round applies
            (the paper modified only the top handful per pass); ``None``
            applies all.
        max_rounds: Safety bound on profiling rounds.
    """
    policy = ReplacementMap()
    sessions: List[ProfilingSession] = []
    converged = False
    for _ in range(max_rounds):
        session = tool.profile(workload, policy=policy)
        sessions.append(session)
        changed = policy.merge_suggestions(session.suggestions,
                                           top=top_per_round)
        if changed == 0:
            converged = True
            break
    _, baseline = tool.plain_run(workload)
    _, optimized = tool.plain_run(workload, policy=policy)
    return IterativeResult(sessions=sessions, policy=policy,
                           baseline=baseline, optimized=optimized,
                           converged=converged)


# Attach as a method so the facade mirrors the paper's workflow verbatim.
Chameleon.optimize_iteratively = (  # type: ignore[attr-defined]
    lambda self, workload, top_per_round=None, max_rounds=4:
    optimize_iteratively(self, workload, top_per_round=top_per_round,
                         max_rounds=max_rounds))
