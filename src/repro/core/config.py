"""Tool-level configuration for Chameleon runs.

Collects every tunable the paper mentions in one value object: the rule
constants (section 3.3.1 -- "may be tuned per specific environment"), the
stability thresholds (Definition 3.1), the potential gate (section 3.3),
the partial-context depth (section 3.2.1, "usually of depth 2 or 3"),
sampling (section 4.2) and the online-mode decision point (section 3.3.2's
"at what point of the execution can we decide").
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.memory.layout import MemoryModel
from repro.profiler.stability import StabilityPolicy
from repro.runtime.context import DEFAULT_CONTEXT_DEPTH
from repro.runtime.costs import CostModel

__all__ = ["ToolConfig"]


@dataclass
class ToolConfig:
    """Configuration shared by the offline and online tool facades.

    Attributes:
        constants: Overrides for the symbolic rule constants.
        stability: Stability gating policy (Definition 3.1).
        min_potential_bytes: Peak-cycle saving a context must show before
            space-motivated rules may fire.
        context_depth: Partial allocation-context depth.
        sampling_rate: Profile 1 in N allocations per source type
            (1 = every allocation).
        sampling_warmup: Always-profiled leading allocations per type.
        memory_model: Simulated object layout (32-bit by default, as in
            the paper's evaluation).
        cost_model: Tick charges for the virtual clock.
        gc_threshold_bytes: Allocation volume between periodic GC cycles.
        online_decide_after: Dead instances a context needs before the
            online mode commits to an implementation choice.
        online_retrofit_live: Online extension beyond the paper: when a
            replacement is decided, also swap the context's already-live
            instances through the wrappers (section 3.3.2's framework-
            specialisation vision).
        top_contexts_to_apply: How many ranked suggestions the apply step
            takes (the paper modified "the top allocation contexts",
            e.g. 5 for TVLA).
        gc_core: Which mark/account core the collector uses
            ("reference", "fast", or "vector").  All cores are
            byte-identical in every observable (ticks, GC stats, rendered
            reports); the flag only trades wall-clock speed, so it is
            deliberately *excluded* from :meth:`fingerprint` -- sessions
            profiled under one core are valid cache hits under another.
            The ``REPRO_GC_CORE`` environment variable overrides the
            default (that is how pool workers and CI legs select a core
            without threading it through every constructor).
        vm_core: Which operation-pipeline core the runtime uses
            ("reference" or "fast").  Exactly the ``gc_core`` contract
            one layer up: byte-identical ticks, GC stats and profiler
            reports under either core, wall-clock speed only, excluded
            from :meth:`fingerprint`, defaulted from ``REPRO_VM_CORE``.
    """

    constants: Dict[str, float] = field(default_factory=dict)
    stability: StabilityPolicy = field(default_factory=StabilityPolicy)
    min_potential_bytes: int = 512
    context_depth: int = DEFAULT_CONTEXT_DEPTH
    sampling_rate: int = 1
    sampling_warmup: int = 8
    memory_model: MemoryModel = field(default_factory=MemoryModel.for_32bit)
    cost_model: CostModel = field(default_factory=CostModel)
    gc_threshold_bytes: int = 256 * 1024
    online_decide_after: int = 8
    online_retrofit_live: bool = False
    top_contexts_to_apply: Optional[int] = None
    gc_core: str = field(
        default_factory=lambda: os.environ.get("REPRO_GC_CORE", "fast"))
    vm_core: str = field(
        default_factory=lambda: os.environ.get("REPRO_VM_CORE", "fast"))

    def __post_init__(self) -> None:
        if self.sampling_rate < 1:
            raise ValueError("sampling_rate must be >= 1")
        if self.online_decide_after < 1:
            raise ValueError("online_decide_after must be >= 1")
        from repro.memory.gc import MarkSweepGC
        if self.gc_core not in MarkSweepGC.CORES:
            raise ValueError(
                f"gc_core must be one of {MarkSweepGC.CORES}, "
                f"got {self.gc_core!r}")
        from repro.runtime.vm import RuntimeEnvironment
        if self.vm_core not in RuntimeEnvironment.VM_CORES:
            raise ValueError(
                f"vm_core must be one of {RuntimeEnvironment.VM_CORES}, "
                f"got {self.vm_core!r}")

    def fingerprint(self) -> str:
        """A stable digest of every semantic field.

        Two configs with equal fingerprints produce identical simulated
        runs, which is what makes the fingerprint usable as a cache-key
        component (profiling-session cache, per-worker tool memo).  The
        digest is content-based -- unlike ``id()`` or ``hash()`` it is
        stable across processes and interpreter invocations.
        """
        payload = dataclasses.asdict(self)
        # The GC and VM core selections change wall-clock speed only,
        # never the simulated run; excluding them keeps session-cache
        # entries shared across cores (and lets CI diff fast vs
        # reference runs that hit the same cached sessions).
        payload.pop("gc_core", None)
        payload.pop("vm_core", None)
        canonical = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
