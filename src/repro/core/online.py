"""Fully automatic (online) replacement -- section 3.3.2 / section 5.4.

In online mode the tool makes selection decisions *during* the run: the
first allocations at each context are profiled with the default
implementation; once enough instances have died, the rule engine is
evaluated on the partial statistics and the winning choice is cached --
every later allocation at that context gets the chosen implementation.

The defining cost is that the allocation context must be captured (and
the policy consulted) on *every* collection allocation, with no sampling
escape hatch.  The paper measured this as acceptable for TVLA (~35%
slowdown) and prohibitive for PMD (~6x) whose "massive rapid allocation
of short-lived collections ... amplified the cost of obtaining allocation
contexts"; the E-Online benchmark reproduces both shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.chameleon import Chameleon, RunMetrics
from repro.core.config import ToolConfig
from repro.profiler.report import ContextProfile
from repro.rules.engine import RuleEngine
from repro.rules.suggestions import Suggestion
from repro.runtime.vm import ImplementationChoice, RuntimeEnvironment
from repro.workloads.base import Workload

__all__ = ["OnlinePolicy", "OnlineRunResult", "OnlineChameleon"]


class OnlinePolicy:
    """Replacement policy that learns its choices mid-run."""

    #: Online decisions happen at runtime, so capture must be charged.
    requires_runtime_capture = True

    def __init__(self, engine: RuleEngine, decide_after: int = 8,
                 retrofit_live: bool = False) -> None:
        self.engine = engine
        self.decide_after = decide_after
        self.retrofit_live = retrofit_live
        self.retrofitted = 0
        self._vm: Optional[RuntimeEnvironment] = None
        # context_id -> decision; None records "decided: keep default".
        self._decisions: Dict[int, Optional[ImplementationChoice]] = {}
        # context_id -> instances_allocated when the decision was taken;
        # negative decisions are revisited once the context doubles.
        self._decided_at: Dict[int, int] = {}
        self.decisions_made = 0
        self.replacements_chosen = 0

    def bind(self, vm: RuntimeEnvironment) -> "OnlinePolicy":
        """Attach to the running VM (for profiler/timeline access)."""
        self._vm = vm
        return self

    # ------------------------------------------------------------------
    # ReplacementPolicyProtocol
    # ------------------------------------------------------------------
    def choose(self, src_type: str, context_id: Optional[int],
               ) -> Optional[ImplementationChoice]:
        if context_id is None or self._vm is None:
            return None
        info = self._vm.profiler.context_info(context_id)
        if context_id in self._decisions:
            cached = self._decisions[context_id]
            if cached is not None:
                return cached
            # A keep-default decision taken on partial information is
            # revisited once the context has doubled its population --
            # the paper's "lack of stability" concern (section 3.3.2):
            # early evidence may not represent the context's behaviour.
            if (info is None or info.instances_allocated
                    < 2 * self._decided_at[context_id]):
                return None
        if info is None:
            return None
        # Two ways to reach a decision point (section 3.3.2's "partial
        # information"): enough instances have *died* (full usage
        # profiles), or -- for long-lived collections that never die, like
        # TVLA's abstract-state maps -- enough live instances have been
        # observed by at least one GC cycle.
        dead_ready = info.instances_dead >= self.decide_after
        live_ready = (info.instances_allocated >= self.decide_after
                      and self._vm.timeline.context(context_id) is not None)
        if not (dead_ready or live_ready):
            return None  # still observing with the default implementation
        snapshot = (info if dead_ready
                    else self._vm.profiler.snapshot_context(context_id))
        suggestion = self._decide(context_id, src_type, snapshot)
        choice = suggestion.to_choice() if suggestion is not None else None
        self._decisions[context_id] = choice
        self._decided_at[context_id] = max(info.instances_allocated, 1)
        self.decisions_made += 1
        if choice is not None:
            self.replacements_chosen += 1
            if self.retrofit_live:
                self._retrofit(context_id, src_type, choice)
        return choice

    def _retrofit(self, context_id: int, src_type: str,
                  choice: ImplementationChoice) -> None:
        """Swap already-live instances of a decided context.

        This goes beyond the paper's implementation (which only affects
        *new* allocations) toward its section 3.3.2 vision of specialising
        long-lived framework state: wrappers make the swap safe, and the
        migration cost is charged through normal collection operations.
        """
        if choice.impl_name is None:
            return
        from repro.collections.base import UnsupportedOperation
        from repro.collections.wrappers import ChameleonCollection

        for obj in list(self._vm.heap.objects()):
            payload = obj.payload
            if not isinstance(payload, ChameleonCollection):
                continue
            if (payload.heap_obj is not obj
                    or payload.context_id != context_id
                    or payload.src_type != src_type
                    or payload.impl.IMPL_NAME == choice.impl_name):
                continue
            try:
                payload.swap_to(choice.impl_name)
            except UnsupportedOperation:
                continue
            self.retrofitted += 1

    def _decide(self, context_id: int, src_type: str,
                info) -> Optional[Suggestion]:
        """Evaluate the rules on the context's (partial) statistics."""
        vm = self._vm
        try:
            key = vm.contexts.describe(context_id)
        except KeyError:
            key = None
        try:
            from repro.collections.registry import default_registry
            kind = default_registry().kind_of(info.src_type)
        except KeyError:
            kind = None
        profile = ContextProfile(context_id=context_id, key=key, info=info,
                                 heap=vm.timeline.context(context_id),
                                 kind=kind)
        return self.engine.evaluate_context(profile)

    @property
    def decisions(self) -> Dict[int, Optional[ImplementationChoice]]:
        """Decided contexts (choice or explicit keep-default)."""
        return dict(self._decisions)


@dataclass
class OnlineRunResult:
    """Outcome of one fully automatic run, with its reference runs."""

    online: RunMetrics
    baseline: RunMetrics
    policy: OnlinePolicy

    @property
    def slowdown(self) -> float:
        """Online ticks / uninstrumented-baseline ticks (>= 1 expected)."""
        if self.baseline.ticks == 0:
            return 1.0
        return self.online.ticks / self.baseline.ticks

    @property
    def peak_reduction(self) -> float:
        """Fractional footprint saving of the online run vs baseline."""
        if self.baseline.peak_live_bytes == 0:
            return 0.0
        return 1.0 - self.online.peak_live_bytes / self.baseline.peak_live_bytes

    def render(self) -> str:
        """One-line summary (the section 5.4 measures)."""
        return (f"online: slowdown {self.slowdown:.2f}x, peak "
                f"{self.online.peak_live_bytes} vs baseline "
                f"{self.baseline.peak_live_bytes} bytes "
                f"({100 * self.peak_reduction:.1f}% saved), "
                f"{self.policy.replacements_chosen} contexts replaced")


class OnlineChameleon:
    """Drives fully automatic in-run replacement."""

    def __init__(self, config: Optional[ToolConfig] = None) -> None:
        self.config = config or ToolConfig()
        self._offline = Chameleon(self.config)

    def run(self, workload: Workload,
            heap_limit: Optional[int] = None,
            with_baseline: bool = True) -> OnlineRunResult:
        """Run ``workload`` in fully automatic mode.

        The online run profiles every allocation (no sampling -- the
        policy needs complete per-context data) and consults the learning
        policy at each collection allocation.  When ``with_baseline`` is
        set, an uninstrumented default run provides the slowdown
        reference.
        """
        vm, metrics, policy = self._run_online(workload, heap_limit)
        if with_baseline:
            _, baseline = self._offline.plain_run(workload,
                                                  heap_limit=heap_limit)
        else:
            baseline = metrics
        return OnlineRunResult(online=metrics, baseline=baseline,
                               policy=policy)

    def _run_online(self, workload: Workload, heap_limit: Optional[int],
                    ) -> Tuple[RuntimeEnvironment, RunMetrics, OnlinePolicy]:
        from repro.profiler.profiler import SemanticProfiler

        policy = OnlinePolicy(self._offline.engine,
                              decide_after=self.config.online_decide_after,
                              retrofit_live=self.config.online_retrofit_live)
        vm = self._offline.make_vm(profiler=SemanticProfiler(),
                                   policy=policy, heap_limit=heap_limit)
        policy.bind(vm)
        workload.run(vm)
        vm.finish()
        return vm, RunMetrics.from_vm(vm), policy
