"""Static analysis over the Fig. 4 rule DSL and collection-using sources.

Chameleon is the paper's *dynamic* answer to collection selection; this
package is the static pass that keeps the dynamic machinery honest:

* **Layer 1** (:mod:`repro.lint.rule_checker`) checks parsed rules
  semantically -- constants bound, metrics known, replacement targets
  registered and kind-compatible, conditions satisfiable under an
  interval domain, and no rule shadowed by an earlier one.
* **Layer 2** (:mod:`repro.lint.usage`) walks Python workload/client
  sources with :mod:`ast`, finds wrapper allocation sites, derives
  static op-mix facts, and predicts which Table 2 rules should fire.
* **Layer 2.5** (:mod:`repro.lint.interproc`) is the interprocedural
  interval analysis: per-site op-frequency and size *intervals* flow
  through call summaries and loops, are evaluated three-valuedly by the
  real rule engine, and yield provable per-rule verdicts, a static
  replacement proposal and exportable op-mix signatures.
* The **drift report** (:mod:`repro.lint.drift`) diffs the static
  predictions against a dynamic profiling session per allocation
  context: agreements, static-only and dynamic-only findings -- and,
  with interval verdicts, refines into a three-way report separating
  coverage gaps from gated and refuted predictions.

Findings share one model (:mod:`repro.lint.findings`) with text, JSON
and SARIF 2.1.0 emitters (:mod:`repro.lint.sarif`), surfaced by the
``chameleon-repro lint`` CLI subcommand.
"""

from repro.lint.drift import (DriftEntry, ThreeWayEntry, drift_report,
                              three_way_report)
from repro.lint.findings import (Finding, Related, RuleValidationError,
                                 Severity, Span, emit_json, emit_text,
                                 worst_severity)
from repro.lint.interproc import (InterprocReport, SiteReport,
                                  analyze_paths, analyze_source,
                                  export_signatures)
from repro.lint.intervals import Interval, Tri, analyze_condition
from repro.lint.rule_checker import (check_rules, load_rules_file,
                                     overlap_report, validate_rules)
from repro.lint.sarif import emit_sarif, validate_sarif
from repro.lint.usage import (StaticPrediction, lint_paths,
                              lint_paths_detailed)

__all__ = [
    "DriftEntry", "ThreeWayEntry", "drift_report", "three_way_report",
    "Finding", "Related", "RuleValidationError", "Severity", "Span",
    "emit_json", "emit_text", "worst_severity",
    "InterprocReport", "SiteReport", "analyze_paths", "analyze_source",
    "export_signatures",
    "Interval", "Tri", "analyze_condition",
    "check_rules", "load_rules_file", "overlap_report", "validate_rules",
    "emit_sarif", "validate_sarif",
    "StaticPrediction", "lint_paths", "lint_paths_detailed",
]
