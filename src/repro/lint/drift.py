"""Layer 3: static-vs-dynamic drift report.

Takes the Layer 2 linter's :class:`~repro.lint.usage.StaticPrediction`
records and a dynamic profiling session (the cached output of a real
profiled run) and diffs the two per allocation context:

* **agreement** (``L3-drift-agreement``, note) -- the statically
  predicted rule fired dynamically (as the context's primary or a
  secondary suggestion).  These calibrate the linter: its facts held.
* **static-only** (``L3-static-only``, warning) -- the static pass
  predicted a rule the profiler never confirmed.  Either the run did not
  exercise the code path (coverage gap: the classic value of a static
  pass) or the fact's threshold did not clear dynamically.
* **dynamic-only** (``L3-dynamic-only``, note) -- the profiler fired a
  rule at a context the static pass has no prediction for, typically an
  allocation reached through dynamic dispatch or a threshold-dependent
  rule (``small-map``) no syntactic fact implies.

Contexts are matched on ``(innermost frame location, srcType)``: the
static side anchors a site at its assignment statement while the dynamic
side records the executing line inside the allocating frame, so exact
line equality is too strict.  But a function can hold several allocation
sites of the same srcType, so location alone is too loose -- when both
sides carry a line it is used as a proximity tiebreaker
(:data:`LINE_TOLERANCE`), which separates sites tens of lines apart
while tolerating multi-line allocation statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding, Severity, Span
from repro.lint.usage import StaticPrediction

__all__ = ["DriftEntry", "ThreeWayEntry", "drift_report",
           "three_way_report", "load_sessions", "LINE_TOLERANCE"]

LINE_TOLERANCE = 4
"""Maximum static/dynamic line skew for two records to name one site."""


@dataclass(frozen=True)
class DriftEntry:
    """One context/rule pair in the drift diff."""

    status: str
    """``agreement`` | ``static-only`` | ``dynamic-only``."""
    location: str
    src_type: str
    rule: str
    static_line: Optional[int] = None
    dynamic_context: Optional[str] = None


@dataclass
class _DynSite:
    """One profiled allocation context's fired rules."""

    line: int
    context: str
    fired: Set[str] = field(default_factory=set)
    covered: Set[str] = field(default_factory=set)
    """Rules consumed by an agreement (not reported dynamic-only)."""


def _builtin_name_map() -> Dict[str, str]:
    """Rule text -> rule name for the builtin set (engine rules carry no
    names, but their parsed text round-trips exactly)."""
    from repro.rules.builtin import BUILTIN_RULES

    return {spec.rule.text: spec.name for spec in BUILTIN_RULES}


def _dynamic_index(sessions: Iterable,
                   ) -> Dict[Tuple[str, str], List[_DynSite]]:
    """``(location, srcType) -> sites`` with their fired rule names.

    Primary and secondary suggestions both count as "fired": the engine's
    first-match priority decides which becomes primary, but every match
    confirms its rule's condition held at the context.
    """
    names = _builtin_name_map()
    index: Dict[Tuple[str, str], List[_DynSite]] = {}
    for session in sessions:
        for suggestion in session.suggestions:
            profile = suggestion.profile
            if profile.key is None or not profile.key.frames:
                continue
            frame = profile.key.frames[0]
            key = (frame.location, profile.src_type)
            sites = index.setdefault(key, [])
            site = next((s for s in sites if s.line == frame.line), None)
            if site is None:
                site = _DynSite(line=frame.line,
                                context=profile.render_context())
                sites.append(site)
            for match in [suggestion] + suggestion.secondary:
                site.fired.add(names.get(match.rule.text, match.rule.text))
    return index


def _lines_compatible(static_line: int, dynamic_line: int) -> bool:
    if static_line <= 0 or dynamic_line <= 0:
        return True  # position unknown on one side: don't discriminate
    return abs(static_line - dynamic_line) <= LINE_TOLERANCE


def drift_report(predictions: Sequence[StaticPrediction],
                 sessions: Sequence,
                 ) -> Tuple[List[Finding], List[DriftEntry]]:
    """Diff static predictions against dynamic sessions.

    ``sessions`` is any sequence of
    :class:`~repro.core.chameleon.ProfilingSession` (cached, ``vm=None``
    sessions work).  Returns ``(findings, entries)``.
    """
    dynamic = _dynamic_index(sessions)
    findings: List[Finding] = []
    entries: List[DriftEntry] = []

    for prediction in predictions:
        agreed: Optional[Tuple[str, _DynSite]] = None
        profiled: Optional[Tuple[str, _DynSite]] = None
        for src_type in sorted(prediction.src_types):
            for site in dynamic.get((prediction.location, src_type), []):
                if not _lines_compatible(prediction.line, site.line):
                    continue
                if prediction.predicted_rule in site.fired:
                    agreed = (src_type, site)
                    break
                if profiled is None:
                    profiled = (src_type, site)
            if agreed is not None:
                break
        if agreed is not None:
            src_type, site = agreed
            site.covered.add(prediction.predicted_rule)
            entries.append(DriftEntry(
                "agreement", prediction.location, src_type,
                prediction.predicted_rule, static_line=prediction.line,
                dynamic_context=site.context))
            findings.append(Finding(
                id="L3-drift-agreement", severity=Severity.NOTE,
                message=f"static prediction confirmed: "
                        f"{prediction.predicted_rule!r} fired at "
                        f"{src_type}:{prediction.location}",
                span=Span(file=prediction.file, line=prediction.line),
                context=site.context,
                predicted_rule=prediction.predicted_rule))
        else:
            src_type = "/".join(sorted(prediction.src_types))
            context = profiled[1].context if profiled is not None else None
            reason = ("the context was profiled but the rule did not "
                      "fire (threshold or gating)" if profiled is not None
                      else "the context never appeared in the profile "
                           "(code path not exercised)")
            entries.append(DriftEntry(
                "static-only", prediction.location, src_type,
                prediction.predicted_rule, static_line=prediction.line,
                dynamic_context=context))
            findings.append(Finding(
                id="L3-static-only", severity=Severity.WARNING,
                message=f"static prediction unconfirmed: "
                        f"{prediction.predicted_rule!r} expected at "
                        f"{src_type}:{prediction.location} but {reason}",
                span=Span(file=prediction.file, line=prediction.line),
                context=context, predicted_rule=prediction.predicted_rule))

    for (location, src_type), sites in sorted(dynamic.items()):
        for site in sites:
            for rule in sorted(site.fired - site.covered):
                entries.append(DriftEntry(
                    "dynamic-only", location, src_type, rule,
                    dynamic_context=site.context))
                findings.append(Finding(
                    id="L3-dynamic-only", severity=Severity.NOTE,
                    message=f"dynamic-only: {rule!r} fired at "
                            f"{src_type}:{location} with no static "
                            f"prediction (dynamic dispatch or a "
                            f"threshold-dependent rule)",
                    span=Span(file="<session>", line=0),
                    context=site.context, predicted_rule=rule))
    return findings, entries


def load_sessions(path: str) -> List:
    """Load every cached session from a session-cache spill: either a
    content-addressed :class:`~repro.analysis.index.SessionStore`
    directory (e.g. ``benchmarks/runs/store``) or a legacy
    ``SessionCache.save`` single pickle."""
    import os
    import pickle

    if os.path.isdir(path):
        from repro.analysis.index import SessionStore

        return SessionStore(path).sessions()
    with open(path, "rb") as handle:
        entries = pickle.load(handle)
    if isinstance(entries, dict):
        return list(entries.values())
    return list(entries)


# ----------------------------------------------------------------------
# Three-way report (interval-static vs coarse-static vs dynamic)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ThreeWayEntry:
    """One context/rule row of the three-way drift diff."""

    status: str
    """``agreement`` | ``coverage-gap`` | ``static-only-gated`` |
    ``unsubstantiated`` | ``refuted`` | ``dynamic-only`` |
    ``proposal-confirmed`` | ``proposal-conflict`` | ``proposal-new``."""
    location: str
    src_type: str
    rule: str
    static_line: Optional[int] = None
    dynamic_context: Optional[str] = None
    verdict: Optional[str] = None
    """Interval-side verdict (``must``/``may``/``refuted``) where the
    interprocedural analysis had an opinion."""


_VERDICT_NAMES = {"TRUE": "must", "UNKNOWN": "may", "FALSE": "refuted"}


def three_way_report(predictions: Sequence[StaticPrediction],
                     sessions: Sequence,
                     classify,
                     proposals: Sequence[Tuple[str, int, str, str, str]] = (),
                     ) -> Tuple[List[Finding], List[ThreeWayEntry]]:
    """Diff coarse predictions, interval verdicts and dynamic sessions.

    ``classify`` is a callable mapping a :class:`StaticPrediction` to a
    :class:`repro.lint.intervals.Tri` (dependency-injected so this
    module needs no import of the interprocedural engine;
    :meth:`repro.lint.interproc.InterprocReport.classify` fits).
    ``proposals`` are ``(location, line, src_type, rule, detail)`` rows
    of the static :class:`ReplacementMap` proposal (see
    :meth:`repro.lint.interproc.InterprocReport.proposal_rows`).

    The coarse two-way statuses refine as follows:

    * ``agreement`` stays an agreement (the interval verdict rides
      along: a ``refuted`` agreement would expose an unsound transfer
      function, so the verdict is always worth printing);
    * ``static-only`` splits by interval verdict -- ``must`` at an
      unprofiled context is a real **coverage gap** (warning), ``must``
      at a profiled context means a dynamic **gate** (potential or
      stability) blocked the rule (note), ``may`` is
      **unsubstantiated** (note: the coarse fact never cleared the
      quantitative threshold statically), and ``refuted`` is a coarse
      **false positive** the intervals disprove (note);
    * dynamic-only rows are unchanged;
    * every proposal row is checked against the dynamic decisions --
      ``proposal-conflict`` (warning) flags a static *must* decision
      the dynamic engine contradicts.
    """
    from repro.lint.intervals import Tri

    dynamic = _dynamic_index(sessions)
    findings: List[Finding] = []
    entries: List[ThreeWayEntry] = []

    for prediction in predictions:
        verdict_tri = classify(prediction)
        verdict = _VERDICT_NAMES.get(verdict_tri.name, "may")
        agreed: Optional[Tuple[str, _DynSite]] = None
        profiled: Optional[Tuple[str, _DynSite]] = None
        for src_type in sorted(prediction.src_types):
            for site in dynamic.get((prediction.location, src_type), []):
                if not _lines_compatible(prediction.line, site.line):
                    continue
                if prediction.predicted_rule in site.fired:
                    agreed = (src_type, site)
                    break
                if profiled is None:
                    profiled = (src_type, site)
            if agreed is not None:
                break
        if agreed is not None:
            src_type, site = agreed
            site.covered.add(prediction.predicted_rule)
            entries.append(ThreeWayEntry(
                "agreement", prediction.location, src_type,
                prediction.predicted_rule, static_line=prediction.line,
                dynamic_context=site.context, verdict=verdict))
            findings.append(Finding(
                id="L3-drift-agreement", severity=Severity.NOTE,
                message=f"static prediction confirmed "
                        f"(interval verdict: {verdict}): "
                        f"{prediction.predicted_rule!r} fired at "
                        f"{src_type}:{prediction.location}",
                span=Span(file=prediction.file, line=prediction.line),
                context=site.context,
                predicted_rule=prediction.predicted_rule))
            continue
        src_type = "/".join(sorted(prediction.src_types))
        context = profiled[1].context if profiled is not None else None
        if verdict_tri is Tri.FALSE:
            status, finding_id, severity = \
                "refuted", "L3-refuted", Severity.NOTE
            reason = ("the inferred intervals disprove the rule's "
                      "condition: the coarse prediction is a static "
                      "false positive")
        elif verdict_tri is Tri.TRUE and profiled is None:
            status, finding_id, severity = \
                "coverage-gap", "L3-coverage-gap", Severity.WARNING
            reason = ("the intervals prove the rule fires, but the "
                      "context never appeared in the profile: the "
                      "dynamic run does not cover this code path")
        elif verdict_tri is Tri.TRUE:
            status, finding_id, severity = \
                "static-only-gated", "L3-static-gated", Severity.NOTE
            reason = ("the intervals prove the rule's condition, so a "
                      "dynamic gate (saving potential or stability) "
                      "must have blocked it")
        else:
            status, finding_id, severity = \
                "unsubstantiated", "L3-unsubstantiated", Severity.NOTE
            reason = ("the inferred intervals straddle the rule's "
                      "thresholds: the coarse fact was never "
                      "quantitatively substantiated")
        entries.append(ThreeWayEntry(
            status, prediction.location, src_type,
            prediction.predicted_rule, static_line=prediction.line,
            dynamic_context=context, verdict=verdict))
        findings.append(Finding(
            id=finding_id, severity=severity,
            message=f"{status}: {prediction.predicted_rule!r} at "
                    f"{src_type}:{prediction.location} -- {reason}",
            span=Span(file=prediction.file, line=prediction.line),
            context=context, predicted_rule=prediction.predicted_rule))

    for (location, src_type), sites in sorted(dynamic.items()):
        for site in sites:
            for rule in sorted(site.fired - site.covered):
                entries.append(ThreeWayEntry(
                    "dynamic-only", location, src_type, rule,
                    dynamic_context=site.context))
                findings.append(Finding(
                    id="L3-dynamic-only", severity=Severity.NOTE,
                    message=f"dynamic-only: {rule!r} fired at "
                            f"{src_type}:{location} with no static "
                            f"prediction",
                    span=Span(file="<session>", line=0),
                    context=site.context, predicted_rule=rule))

    for location, line, src_type, rule, detail in proposals:
        match: Optional[_DynSite] = None
        for site in dynamic.get((location, src_type), []):
            if _lines_compatible(line, site.line):
                match = site
                break
        if match is None:
            status, finding_id, severity = \
                "proposal-new", "L3-proposal-new", Severity.NOTE
            message = (f"static proposal (no dynamic decision to "
                       f"compare): {rule!r} -> {detail} at "
                       f"{src_type}:{location}:{line}")
        elif rule in match.fired:
            status, finding_id, severity = \
                "proposal-confirmed", "L3-proposal-confirmed", \
                Severity.NOTE
            message = (f"static proposal confirmed by the dynamic "
                       f"engine: {rule!r} -> {detail} at "
                       f"{src_type}:{location}:{line}")
        else:
            status, finding_id, severity = \
                "proposal-conflict", "L3-proposal-conflict", \
                Severity.WARNING
            message = (f"static proposal conflicts with the dynamic "
                       f"decision at {src_type}:{location}:{line}: "
                       f"proposed {rule!r} -> {detail}, dynamic fired "
                       f"{sorted(match.fired)}")
        entries.append(ThreeWayEntry(
            status, location, src_type, rule, static_line=line,
            dynamic_context=match.context if match else None,
            verdict="must"))
        findings.append(Finding(
            id=finding_id, severity=severity, message=message,
            span=Span(file="<proposal>", line=line),
            context=match.context if match else None,
            predicted_rule=rule))
    return findings, entries
