"""The reporting spine shared by every lint layer.

A :class:`Finding` is one diagnostic: a stable rule id (``L1-*`` for the
rule-DSL checker, ``L2-*`` for the usage linter, ``L3-*`` for the drift
report), a severity, a file/line span, a message and an optional fix
hint.  The same list of findings renders as text (human diff-style), JSON
(machine diff-style) or SARIF 2.1.0 (:mod:`repro.lint.sarif`).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Severity", "Span", "Finding", "Related", "RuleValidationError",
           "emit_text", "emit_json", "worst_severity", "count_by_severity"]


class Severity(enum.Enum):
    """Diagnostic severities, ordered; SARIF levels map 1:1."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank


_SEVERITY_RANK = {Severity.NOTE: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Span:
    """A source location: file plus 1-based line/column region.

    Rule-DSL findings for in-memory rule sets use the pseudo-file
    ``<rules>``; findings for rule files and Python sources use real
    paths.  ``line == 0`` means "whole file" (position unknown).
    """

    file: str
    line: int = 0
    column: Optional[int] = None
    end_line: Optional[int] = None

    def render(self) -> str:
        parts = self.file
        if self.line:
            parts += f":{self.line}"
            if self.column is not None:
                parts += f":{self.column}"
        return parts


@dataclass(frozen=True)
class Related:
    """A related source location (one call-chain step of an
    interprocedural finding): where a value the finding depends on was
    produced, e.g. the factory allocation behind a call-site report."""

    file: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.message}"


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by any lint layer."""

    id: str
    severity: Severity
    message: str
    span: Span
    fix_hint: Optional[str] = None
    rule_name: Optional[str] = None
    """Name of the DSL rule the finding is about (Layer 1 / drift)."""
    context: Optional[str] = None
    """Allocation context in the suggestion format
    (``srcType:module.func:line``) for Layer 2 / drift findings."""
    predicted_rule: Optional[str] = None
    """Builtin-rule name a Layer 2 fact statically predicts."""
    related: Tuple[Related, ...] = ()
    """Call-chain steps behind an interprocedural finding, innermost
    first (SARIF ``relatedLocations``)."""

    def render(self) -> str:
        head = f"{self.span.render()}: {self.severity.value}: " \
               f"[{self.id}] {self.message}"
        tail = []
        if self.context:
            tail.append(f"    context: {self.context}")
        if self.predicted_rule:
            tail.append(f"    predicts: {self.predicted_rule}")
        if self.fix_hint:
            tail.append(f"    hint: {self.fix_hint}")
        for step in self.related:
            tail.append(f"    via: {step.render()}")
        return "\n".join([head] + tail)

    def to_dict(self) -> dict:
        data = {
            "id": self.id,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.span.file,
            "line": self.span.line,
        }
        if self.span.column is not None:
            data["column"] = self.span.column
        if self.span.end_line is not None:
            data["endLine"] = self.span.end_line
        for key, value in (("fixHint", self.fix_hint),
                           ("ruleName", self.rule_name),
                           ("context", self.context),
                           ("predictedRule", self.predicted_rule)):
            if value is not None:
                data[key] = value
        if self.related:
            data["related"] = [{"file": step.file, "line": step.line,
                                "message": step.message}
                               for step in self.related]
        return data


class RuleValidationError(ValueError):
    """A rule set failed eager (construction-time) validation.

    Raised by :func:`repro.lint.rule_checker.validate_rules` -- and
    therefore by ``RuleEngine(...)`` -- so that a typo'd constant or a
    bogus replacement target is a clear, named error at engine
    construction rather than a ``KeyError`` when the rule first fires.
    """

    def __init__(self, findings: Sequence[Finding]) -> None:
        self.findings = list(findings)
        lines = ["invalid rule set:"]
        lines += [f"  {finding.render().splitlines()[0]}"
                  for finding in self.findings]
        super().__init__("\n".join(lines))


def count_by_severity(findings: Sequence[Finding]) -> Dict[Severity, int]:
    """How many findings exist at each severity."""
    counts = {severity: 0 for severity in Severity}
    for finding in findings:
        counts[finding.severity] += 1
    return counts


def worst_severity(findings: Sequence[Finding]) -> Optional[Severity]:
    """The highest severity present, or ``None`` for a clean run."""
    worst: Optional[Severity] = None
    for finding in findings:
        if worst is None or finding.severity.rank > worst.rank:
            worst = finding.severity
    return worst


def _waived_total(waived: Optional[Mapping[str, int]]) -> int:
    return sum(waived.values()) if waived else 0


def emit_text(findings: Sequence[Finding],
              waived: Optional[Mapping[str, int]] = None,
              show_waived: bool = False) -> str:
    """Human-readable report, most severe findings first.

    ``waived`` maps finding ids to the number of occurrences silenced by
    ``# lint: ignore[...]`` comments; the total always shows in the
    summary line, the per-id breakdown only under ``show_waived``.
    """
    total_waived = _waived_total(waived)
    if not findings:
        if total_waived:
            lines = []
            if show_waived:
                lines += [f"waived: {count} x [{finding_id}]"
                          for finding_id, count in sorted(waived.items())]
            return "\n".join(
                lines + [f"lint: no findings ({total_waived} waived)."])
        return "lint: no findings."
    ordered = sorted(findings,
                     key=lambda f: (-f.severity.rank, f.span.file,
                                    f.span.line, f.id))
    counts = count_by_severity(findings)
    summary = ", ".join(f"{counts[severity]} {severity.value}(s)"
                        for severity in (Severity.ERROR, Severity.WARNING,
                                         Severity.NOTE)
                        if counts[severity])
    if total_waived:
        summary += f", {total_waived} waived"
    lines = [finding.render() for finding in ordered]
    if show_waived and waived:
        lines += [f"waived: {count} x [{finding_id}]"
                  for finding_id, count in sorted(waived.items())]
    return "\n".join(lines + [f"lint: {summary}"])


def emit_json(findings: Sequence[Finding],
              waived: Optional[Mapping[str, int]] = None) -> str:
    """Machine-readable report: a stable-keyed JSON document."""
    counts = count_by_severity(findings)
    document = {
        "schema": "chameleon-lint",
        "version": 1,
        "summary": {severity.value: counts[severity]
                    for severity in Severity},
        "findings": [finding.to_dict() for finding in findings],
    }
    document["summary"]["waived"] = _waived_total(waived)
    if waived:
        document["waived"] = dict(sorted(waived.items()))
    return json.dumps(document, indent=2, sort_keys=True)
