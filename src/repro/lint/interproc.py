"""Layer 2.5: interprocedural interval analysis of collection usage.

The coarse usage linter (:mod:`repro.lint.usage`) emits *qualitative*
facts -- "this list grows inside a loop", "contains() runs in a loop" --
and predicts which Fig. 4 rule might fire.  This module goes further: a
flow- and loop-sensitive abstract interpreter infers **quantitative
intervals** -- per-allocation-site operation counts and maximal sizes --
and feeds them through the *actual* rule engine
(:meth:`repro.rules.engine.RuleEngine.evaluate_intervals`), producing
three-valued verdicts per builtin rule:

* ``must``   -- the rule's condition holds for every concrete run
  (:data:`~repro.lint.intervals.Tri.TRUE` after refinement), so the
  engine's suggestion becomes a *static* :class:`ReplacementMap`
  proposal;
* ``may``    -- the intervals straddle a threshold; the coarse fact is
  carried to the drift report unconfirmed;
* ``refuted``-- the condition cannot hold
  (:data:`~repro.lint.intervals.Tri.FALSE`), so a coarse prediction at
  this site is a static false positive.

Abstract domain
---------------
Values are intervals (:class:`~repro.lint.intervals.Interval`), string
constants, ``None``-ness, site references, and tuples thereof; anything
else is *unknown*.  Every tracked collection allocation gets a
:class:`SiteState` holding per-instance op-count intervals, a running
size interval, and the observed maximal size.  Plain Python lists are
tracked as non-reportable pseudo-sites so accumulator idioms
(``rows.append((_, boxes))`` ... ``for _, boxes in rows:``) keep alias
information flowing through containers.

Loops are executed **once** from a widened base state: the body is first
probed to discover what it mutates, mutated sizes and rebound variables
are widened, per-iteration deltas are collected against zeroed anchors,
and the post-state is reconstructed as ``before + delta * trips`` with
the trip-count interval derived from ``range(...)`` bounds, ``len()``
of tracked values, or ``[0, inf)`` for ``while``.  Widening only ever
*loses precision upward*, which is the soundness guarantee the property
tests pin: concrete op counts and max sizes always fall inside the
inferred intervals.

Calls resolve through per-function summaries (memoized, recursion
falls back to unknown): parameter effects are replayed on argument
sites, escaping parameters escape their arguments, and a factory's
returned site is instantiated at each call site with the call chain
recorded for SARIF ``relatedLocations``.  Escaped sites keep interval
*lower* bounds and widen upper bounds to infinity -- never unsound,
merely vague.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass, field, replace
from typing import (Any, Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Set, Tuple)

from repro.lint.findings import Finding, Related, Severity, Span
from repro.lint.intervals import (EMPTY, Interval, NON_NEGATIVE, TOP,
                                  Tri, point)
from repro.lint.usage import (WRAPPER_KINDS, StaticPrediction,
                              _expand_paths, _literal_src_types,
                              _module_name, _NEUTRAL_ATTRS,
                              _NEUTRAL_METHODS)

__all__ = ["SiteReport", "InterprocReport", "analyze_paths",
           "analyze_source", "export_signatures", "REAL_KINDS"]

_INF = math.inf
ZERO = point(0.0)
ONE = point(1.0)
MAYBE = Interval(0.0, 1.0)
UNBOUNDED = Interval(0.0, _INF)

REAL_KINDS = ("list", "set", "map")

#: Default statement budget per analyzed module; exhausting it bails the
#: current root out conservatively instead of hanging on large inputs.
DEFAULT_BUDGET = 80_000

_LINE_TOLERANCE = 4

#: Per-kind dense op vocabulary (dsl names); sites report 0 for an op
#: never applied, which is what makes refutation possible at all.
_KIND_DSL_OPS: Dict[str, Tuple[str, ...]] = {
    "list": ("#add", "#add(int)", "#addAll", "#addAll(int)", "#get(int)",
             "#set(int)", "#remove(int)", "#removeFirst", "#remove",
             "#contains", "#indexOf", "#toArray", "#size", "#isEmpty",
             "#clear", "#iterator", "#iterEmpty", "#copied"),
    "set": ("#add", "#addAll", "#remove", "#contains", "#size",
            "#isEmpty", "#clear", "#iterator", "#iterEmpty", "#toArray",
            "#copied"),
    "map": ("#put", "#putAll", "#get(Object)", "#removeKey",
            "#containsKey", "#containsValue", "#size", "#isEmpty",
            "#clear", "#iterator", "#iterEmpty", "#copied"),
}


# ----------------------------------------------------------------------
# Abstract values
# ----------------------------------------------------------------------
class _Ref:
    """A may-alias set of site ids (``maybe_none`` tracks ``x = None``
    joins so ``is None`` tests stay three-valued)."""

    __slots__ = ("sites", "maybe_none")

    def __init__(self, sites: Iterable[int], maybe_none: bool = False):
        self.sites = frozenset(sites)
        self.maybe_none = maybe_none


class _Tup:
    """A tuple of abstract values (alias-through-container tracking)."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Any]):
        self.items = tuple(items)


class _IterVal:
    """An iterator over a tracked collection (``site.iterate()``)."""

    __slots__ = ("ref", "element")

    def __init__(self, ref: Optional[_Ref], element: Any = None):
        self.ref = ref
        self.element = element


class _RangeVal:
    """``range(...)`` with interval trip count and element interval."""

    __slots__ = ("trips", "element")

    def __init__(self, trips: Interval, element: Interval):
        self.trips = trips
        self.element = element


class _EnumVal:
    __slots__ = ("inner",)

    def __init__(self, inner: Any):
        self.inner = inner


class _Sentinel:
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name}>"


_NONE = _Sentinel("None")
_SELF = _Sentinel("self")


def _refs_in(value: Any) -> Set[int]:
    """All site ids reachable through a value."""
    if isinstance(value, _Ref):
        return set(value.sites)
    if isinstance(value, _Tup):
        out: Set[int] = set()
        for item in value.items:
            out |= _refs_in(item)
        return out
    if isinstance(value, _IterVal):
        out = set() if value.ref is None else set(value.ref.sites)
        return out | _refs_in(value.element)
    if isinstance(value, _EnumVal):
        return _refs_in(value.inner)
    return set()


def _val_eq(a: Any, b: Any) -> bool:
    if a is b:
        return True
    if isinstance(a, Interval) and isinstance(b, Interval):
        return a == b
    if isinstance(a, str) and isinstance(b, str):
        return a == b
    if isinstance(a, _Ref) and isinstance(b, _Ref):
        return a.sites == b.sites and a.maybe_none == b.maybe_none
    if isinstance(a, _Tup) and isinstance(b, _Tup):
        return (len(a.items) == len(b.items)
                and all(_val_eq(x, y)
                        for x, y in zip(a.items, b.items)))
    return False


def _join_value(a: Any, b: Any) -> Tuple[Any, Set[int]]:
    """Join two abstract values.

    Returns ``(joined, lost_refs)``; when the join degrades to unknown
    any site refs inside either operand are *lost* and the caller must
    escape them (later uses of the variable would silently stop
    attributing operations otherwise).
    """
    if _val_eq(a, b):
        return a, set()
    if a is None or b is None:
        return None, _refs_in(a) | _refs_in(b)
    if isinstance(a, Interval) and isinstance(b, Interval):
        return a.hull(b), set()
    if isinstance(a, _Ref) and isinstance(b, _Ref):
        return _Ref(a.sites | b.sites,
                    a.maybe_none or b.maybe_none), set()
    if isinstance(a, _Ref) and b is _NONE:
        return _Ref(a.sites, True), set()
    if a is _NONE and isinstance(b, _Ref):
        return _Ref(b.sites, True), set()
    if isinstance(a, _Tup) and isinstance(b, _Tup) \
            and len(a.items) == len(b.items):
        items = []
        lost: Set[int] = set()
        for x, y in zip(a.items, b.items):
            joined, sub_lost = _join_value(x, y)
            items.append(joined)
            lost |= sub_lost
        return _Tup(items), lost
    return None, _refs_in(a) | _refs_in(b)


def _join_elem(current: Any, value: Any) -> Tuple[Any, Set[int]]:
    """Join a stored element into a container's element abstraction.

    ``_NONE`` doubles as the no-elements-yet bottom of a fresh
    container, not a stored Python ``None``, so an empty side
    contributes nothing to the join -- falling through to
    :func:`_join_value` would degrade tuples (and anything else
    without a ``_NONE`` special case) to unknown and spuriously
    escape the refs inside them.
    """
    if current is _NONE:
        return value, set()
    if value is _NONE:
        return current, set()
    return _join_value(current, value)


def _value_len(value: Any) -> Interval:
    """``len()`` of an abstract value, as an interval."""
    if isinstance(value, _Tup):
        return point(float(len(value.items)))
    if isinstance(value, str):
        return point(float(len(value)))
    if isinstance(value, _RangeVal):
        return value.trips
    return UNBOUNDED


# ----------------------------------------------------------------------
# Site state
# ----------------------------------------------------------------------
@dataclass
class SiteState:
    """Per-instance interval statistics for one allocation site."""

    site_id: int
    kind: str                      # "list"/"set"/"map"/"pylist"/"param"
    src_types: FrozenSet[str]
    variable: str
    location: str                  # profiler frame: module.function
    file: str
    line: int                      # allocation line (in the factory)
    coarse_location: str           # where the coarse linter sees it
    coarse_line: int
    chain: Tuple[Tuple[str, int, str], ...] = ()
    ops: Dict[str, Interval] = field(default_factory=dict)
    size: Interval = ZERO
    max_size: Interval = ZERO
    growth: Interval = ZERO        # additive size delta since anchor
    peak: float = 0.0              # max of growth.hi since anchor
    capacity: Optional[Interval] = None
    capacity_unknown: bool = False
    escaped: bool = False
    conditional: bool = False
    returned: bool = False
    instances: Interval = ONE
    elem: Any = _NONE              # element abstraction (pylist only)

    def clone(self) -> "SiteState":
        return replace(self, ops=dict(self.ops))

    def charge(self, dsl: str, count: Interval = ONE,
               exact: bool = True) -> None:
        if not exact:
            count = Interval(0.0, max(0.0, count.hi))
        self.ops[dsl] = self.ops.get(dsl, ZERO) + count

    def grow(self, delta: Interval, exact: bool = True) -> None:
        if not exact:
            delta = Interval(min(0.0, delta.lo), max(0.0, delta.hi))
        self.size = (self.size + delta).clamp_lower()
        self.growth = self.growth + delta
        self.peak = max(self.peak, self.growth.hi)
        self.max_size = Interval(max(self.max_size.lo, self.size.lo),
                                 max(self.max_size.hi, self.size.hi))

    def join_with(self, other: "SiteState") -> "SiteState":
        merged = self.clone()
        keys = set(self.ops) | set(other.ops)
        merged.ops = {k: self.ops.get(k, ZERO).hull(other.ops.get(k, ZERO))
                      for k in keys}
        merged.size = self.size.hull(other.size)
        merged.max_size = self.max_size.hull(other.max_size)
        merged.growth = self.growth.hull(other.growth)
        merged.peak = max(self.peak, other.peak)
        if self.capacity is None or other.capacity is None:
            merged.capacity = self.capacity if other.capacity is None \
                else other.capacity
            if (self.capacity is None) != (other.capacity is None):
                merged.capacity_unknown = True
        else:
            merged.capacity = self.capacity.hull(other.capacity)
        merged.capacity_unknown |= (self.capacity_unknown
                                    or other.capacity_unknown)
        merged.escaped = self.escaped or other.escaped
        merged.conditional = self.conditional or other.conditional
        merged.returned = self.returned or other.returned
        merged.instances = self.instances.hull(other.instances)
        merged.elem, _lost = _join_elem(self.elem, other.elem)
        merged.variable = self.variable or other.variable
        return merged


class _State:
    """Abstract program state: environment plus site table."""

    __slots__ = ("env", "sites", "dead")

    def __init__(self, env: Optional[Dict[str, Any]] = None,
                 sites: Optional[Dict[int, SiteState]] = None,
                 dead: bool = False):
        self.env: Dict[str, Any] = env or {}
        self.sites: Dict[int, SiteState] = sites or {}
        self.dead = dead

    def clone(self) -> "_State":
        return _State(dict(self.env),
                      {sid: site.clone()
                       for sid, site in self.sites.items()},
                      self.dead)

    def escape(self, refs: Iterable[int]) -> None:
        for sid in refs:
            site = self.sites.get(sid)
            if site is not None:
                site.escaped = True

    def escape_value(self, value: Any) -> None:
        self.escape(_refs_in(value))

    def join_into(self, other: "_State") -> None:
        """Merge ``other`` (a branch sibling) into this state."""
        if other.dead:
            return
        if self.dead:
            self.env = dict(other.env)
            self.sites = {sid: s.clone()
                          for sid, s in other.sites.items()}
            self.dead = False
            return
        env: Dict[str, Any] = {}
        lost: Set[int] = set()
        for name in set(self.env) | set(other.env):
            if name not in self.env:
                env[name] = other.env[name]
            elif name not in other.env:
                env[name] = self.env[name]
            else:
                env[name], sub = _join_value(self.env[name],
                                             other.env[name])
                lost |= sub
        sites: Dict[int, SiteState] = {}
        for sid in set(self.sites) | set(other.sites):
            mine, theirs = self.sites.get(sid), other.sites.get(sid)
            if mine is None or theirs is None:
                only = (mine or theirs).clone()
                only.conditional = True
                only.instances = only.instances.hull(ZERO)
                sites[sid] = only
            else:
                sites[sid] = mine.join_with(theirs)
        self.env = env
        self.sites = sites
        self.escape(lost)


# ----------------------------------------------------------------------
# Loop flow pre-scan
# ----------------------------------------------------------------------
def _scan_flow(body: Sequence[ast.stmt]) -> bool:
    """Whether the loop body can exit an iteration early (break /
    continue / return / raise), which widens trip and delta lower
    bounds to zero.  Nested function bodies don't count; nested loops
    swallow their own break/continue but not return/raise."""

    def scan(stmts: Sequence[ast.stmt], top: bool) -> bool:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.Return, ast.Raise)):
                return True
            if top and isinstance(stmt, (ast.Break, ast.Continue)):
                return True
            inner_top = top and not isinstance(stmt, (ast.For, ast.While))
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, attr, None)
                if sub and scan(sub, inner_top):
                    return True
            for handler in getattr(stmt, "handlers", []) or []:
                if scan(handler.body, inner_top):
                    return True
        return False

    return scan(body, True)


class _Bailout(Exception):
    """Raised when the statement budget for a module is exhausted."""


def _mul_scalar(a: float, b: float) -> float:
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


# ----------------------------------------------------------------------
# Function summaries
# ----------------------------------------------------------------------
@dataclass
class _Summary:
    """Memoized effect summary of one module-level function/method."""

    qualname: str
    param_names: List[str]
    param_sites: Dict[str, int]
    final: _State
    # ('site', sid) | ('value', value) | ('none',) | ('unknown',)
    returns: Tuple[Any, ...]
    ret_refs: Set[int]


class _ModuleAnalysis:
    """Call-graph, constants and summaries for one Python module."""

    def __init__(self, tree: ast.Module, module: str, path: str,
                 budget: int = DEFAULT_BUDGET):
        self.tree = tree
        self.module = module
        self.path = path
        self.budget = budget
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.classes: Dict[str, Dict[str, ast.FunctionDef]] = {}
        self.module_consts: Dict[str, Optional[ast.expr]] = {}
        self.class_consts: Dict[str, Dict[str, Optional[ast.expr]]] = {}
        self.next_site_id = 1
        self.used_summaries: Set[Tuple[Optional[str], str]] = set()
        self._summaries: Dict[Tuple[Optional[str], str],
                              Optional[_Summary]] = {}
        self._in_progress: Set[Tuple[Optional[str], str]] = set()
        self._collect()
        self.address_taken: FrozenSet[str] = self._find_address_taken()

    # -- collection ----------------------------------------------------
    def _record_const(self, table: Dict[str, Optional[ast.expr]],
                      name: str, value: ast.expr) -> None:
        prior = table.get(name)
        if name not in table:
            table[name] = value
        elif prior is not None and ast.dump(prior) != ast.dump(value):
            table[name] = None          # conflicting rebinds: poisoned

    def _collect(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, ast.FunctionDef):
                self.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.ClassDef):
                methods: Dict[str, ast.FunctionDef] = {}
                consts: Dict[str, Optional[ast.expr]] = {}
                for sub in stmt.body:
                    if isinstance(sub, ast.FunctionDef):
                        methods[sub.name] = sub
                    elif isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            if isinstance(target, ast.Name):
                                self._record_const(consts, target.id,
                                                   sub.value)
                self.classes[stmt.name] = methods
                self.class_consts[stmt.name] = consts
                for method in methods.values():
                    for node in ast.walk(method):
                        if not isinstance(node, ast.Assign):
                            continue
                        for target in node.targets:
                            if (isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"):
                                self._record_const(consts, target.attr,
                                                   node.value)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._record_const(self.module_consts,
                                           target.id, stmt.value)

    def _find_address_taken(self) -> FrozenSet[str]:
        """Function/method names whose call sites the analysis cannot
        enumerate: referenced as *values* rather than called directly
        (stored in tables, returned as callbacks), or referenced at all
        inside nested functions, whose bodies the interpreter does not
        execute.  Whatever such a function returns may be used
        arbitrarily by code the analysis never sees."""
        known: Set[str] = set(self.functions)
        for methods in self.classes.values():
            known.update(methods)
        modeled = set(self.functions.values())
        for methods in self.classes.values():
            modeled.update(methods.values())
        nested: Set[int] = set()
        for fn in modeled:
            for node in ast.walk(fn):
                if isinstance(node, ast.FunctionDef) and node is not fn:
                    for sub in ast.walk(node):
                        nested.add(id(sub))
        call_funcs: Set[int] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                call_funcs.add(id(node.func))
        taken: Set[str] = set()
        for node in ast.walk(self.tree):
            if id(node) in call_funcs and id(node) not in nested:
                continue
            if isinstance(node, ast.Attribute) and node.attr in known:
                taken.add(node.attr)
            elif isinstance(node, ast.Name) and node.id in known:
                taken.add(node.id)
        return frozenset(taken)

    # -- ids / budget --------------------------------------------------
    def alloc_site_id(self) -> int:
        sid = self.next_site_id
        self.next_site_id += 1
        return sid

    def reset_site_counter(self, mark: int) -> None:
        self.next_site_id = mark

    def tick(self) -> None:
        self.budget -= 1
        if self.budget < 0:
            raise _Bailout()

    # -- constants -----------------------------------------------------
    def const_value(self, name: str,
                    seen: FrozenSet[Tuple[str, str]] = frozenset()) -> Any:
        key = ("", name)
        if key in seen:
            return None
        node = self.module_consts.get(name)
        if node is None:
            return None
        return self.eval_const(node, None, seen | {key})

    def class_const(self, cls: Optional[str], attr: str,
                    seen: FrozenSet[Tuple[str, str]] = frozenset()) -> Any:
        if attr == "manual_fixes":
            # The lint models the *unfixed* program: that is the build
            # the profiler observes, and the one replacement proposals
            # target (mirrors `_capacity_is_set`'s convention).
            return point(0.0)
        if cls is None:
            return None
        key = (cls, attr)
        if key in seen:
            return None
        node = self.class_consts.get(cls, {}).get(attr)
        if node is None:
            return None
        return self.eval_const(node, cls, seen | {key})

    def eval_const(self, node: ast.expr, cls: Optional[str],
                   seen: FrozenSet[Tuple[str, str]] = frozenset()) -> Any:
        """Best-effort constant evaluation outside any function state."""
        if isinstance(node, ast.Constant):
            return _const_to_value(node.value)
        if isinstance(node, ast.Name):
            return self.const_value(node.id, seen)
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return self.class_const(cls, node.attr, seen)
        if isinstance(node, ast.UnaryOp) \
                and isinstance(node.op, ast.USub):
            operand = self.eval_const(node.operand, cls, seen)
            if isinstance(operand, Interval):
                return ZERO - operand
            return None
        if isinstance(node, ast.BinOp):
            left = self.eval_const(node.left, cls, seen)
            right = self.eval_const(node.right, cls, seen)
            return _binop(node.op, left, right)
        if isinstance(node, ast.IfExp):
            test = self.eval_const(node.test, cls, seen)
            truth = _truth(test)
            if truth is Tri.TRUE:
                return self.eval_const(node.body, cls, seen)
            if truth is Tri.FALSE:
                return self.eval_const(node.orelse, cls, seen)
            a = self.eval_const(node.body, cls, seen)
            b = self.eval_const(node.orelse, cls, seen)
            joined, _lost = _join_value(a, b)
            return joined
        if isinstance(node, ast.Tuple):
            return _Tup([self.eval_const(e, cls, seen)
                         for e in node.elts])
        return None

    # -- summaries -----------------------------------------------------
    def summary(self, cls: Optional[str], name: str,
                kinds: Tuple[Optional[str], ...] = (),
                ) -> Optional[_Summary]:
        """The callee's effect summary, specialised to the ADT kinds of
        its collection-typed arguments (``kinds`` aligns with the full
        positional parameter list; ``None`` entries stay opaque).
        Specialisation is what lets a factory/helper charge its
        parameter's ops precisely instead of escaping the argument."""
        key = (cls, name, kinds)
        if key in self._summaries:
            return self._summaries[key]
        if key in self._in_progress:
            return None                 # recursion: unknown call
        node = (self.classes.get(cls, {}).get(name) if cls is not None
                else self.functions.get(name))
        if node is None:
            return None
        self._in_progress.add(key)
        try:
            interp = _FuncInterp(self, cls, name, node, root=False,
                                 param_kinds=kinds)
            summ = interp.summarize()
        except _Bailout:
            raise
        except RecursionError:
            summ = None
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = summ
        return summ

    def iter_roots(self):
        for name, node in self.functions.items():
            yield (None, name, node)
        for cls, methods in self.classes.items():
            for name, node in methods.items():
                yield (cls, name, node)


def _const_to_value(raw: Any) -> Any:
    if raw is None:
        return _NONE
    if isinstance(raw, bool):
        return point(1.0 if raw else 0.0)
    if isinstance(raw, (int, float)):
        return point(float(raw))
    if isinstance(raw, str):
        return raw
    return None


def _truth(value: Any) -> Tri:
    """Three-valued truthiness of an abstract value."""
    if isinstance(value, Interval):
        if value.is_empty:
            return Tri.UNKNOWN
        if value.lo > 0.0 or value.hi < 0.0:
            return Tri.TRUE
        if value.is_point:
            return Tri.FALSE            # the point 0
        return Tri.UNKNOWN
    if value is _NONE:
        return Tri.FALSE
    if isinstance(value, str):
        return Tri.TRUE if value else Tri.FALSE
    if isinstance(value, _Tup):
        return Tri.TRUE if value.items else Tri.FALSE
    return Tri.UNKNOWN


def _binop(op: ast.operator, a: Any, b: Any) -> Any:
    """Interval arithmetic for the operators loop bounds flow through."""
    if not isinstance(a, Interval) or not isinstance(b, Interval):
        return None
    if isinstance(op, ast.Add):
        return a + b
    if isinstance(op, ast.Sub):
        return a - b
    if isinstance(op, ast.Mult):
        return a * b
    if isinstance(op, (ast.Div, ast.FloorDiv)):
        if b.is_point and b.lo > 0.0:
            quotient = Interval(a.lo / b.lo, a.hi / b.lo)
            if isinstance(op, ast.FloorDiv):
                return Interval(math.floor(quotient.lo)
                                if not math.isinf(quotient.lo)
                                else quotient.lo,
                                math.floor(quotient.hi)
                                if not math.isinf(quotient.hi)
                                else quotient.hi)
            return quotient
        return None
    if isinstance(op, ast.Mod):
        if b.is_point and b.lo > 0.0:
            c = b.lo
            if a.is_point and not math.isinf(a.lo):
                return point(float(a.lo % c))
            if a.lo >= 0.0:
                return Interval(0.0, c - 1.0)
        return None
    return None


def _cmp_tri(op: ast.cmpop, a: Interval, b: Interval) -> Tri:
    if a.is_empty or b.is_empty:
        return Tri.UNKNOWN
    if isinstance(op, ast.Lt):
        if a.hi < b.lo:
            return Tri.TRUE
        if a.lo >= b.hi:
            return Tri.FALSE
        return Tri.UNKNOWN
    if isinstance(op, ast.LtE):
        if a.hi <= b.lo:
            return Tri.TRUE
        if a.lo > b.hi:
            return Tri.FALSE
        return Tri.UNKNOWN
    if isinstance(op, ast.Gt):
        return _cmp_tri(ast.Lt(), b, a)
    if isinstance(op, ast.GtE):
        return _cmp_tri(ast.LtE(), b, a)
    if isinstance(op, ast.Eq):
        if a.is_point and b.is_point and a.lo == b.lo:
            return Tri.TRUE
        if a.hi < b.lo or b.hi < a.lo:
            return Tri.FALSE
        return Tri.UNKNOWN
    if isinstance(op, ast.NotEq):
        flipped = _cmp_tri(ast.Eq(), a, b)
        if flipped is Tri.TRUE:
            return Tri.FALSE
        if flipped is Tri.FALSE:
            return Tri.TRUE
        return Tri.UNKNOWN
    return Tri.UNKNOWN


def _tri_value(tri: Tri) -> Interval:
    if tri is Tri.TRUE:
        return point(1.0)
    if tri is Tri.FALSE:
        return point(0.0)
    return MAYBE


def _as_load(node: ast.expr) -> ast.expr:
    """An assignment target reused as the read side of ``x op= v``.

    The evaluator never inspects expression contexts, so the Store-ctx
    target can be evaluated directly as a load.
    """
    return node


# ----------------------------------------------------------------------
# The abstract interpreter
# ----------------------------------------------------------------------
class _FuncInterp:
    """Executes one function body over the abstract domain."""

    def __init__(self, owner: _ModuleAnalysis, cls: Optional[str],
                 name: str, node: Optional[ast.FunctionDef],
                 root: bool,
                 param_kinds: Tuple[Optional[str], ...] = ()):
        self.owner = owner
        self.cls = cls
        self.name = name
        self.node = node
        self.root = root
        self.param_kinds = param_kinds
        self.location = f"{owner.module}.{name}"
        self.exit_states: List[Tuple[Any, _State]] = []
        self.raise_states: List[_State] = []
        self._pending_returns: List[Any] = []
        self._loop_depth = 0
        self._cond_depth = 0
        self.param_sites: Dict[str, int] = {}

    # -- entry points --------------------------------------------------
    def _initial_state(self) -> _State:
        state = _State()
        args = self.node.args
        positional = list(args.posonlyargs) + list(args.args)
        for index, arg in enumerate(positional):
            if index == 0 and self.cls is not None \
                    and arg.arg == "self":
                state.env["self"] = _SELF
                continue
            sid = self.owner.alloc_site_id()
            kind = "param"
            if index < len(self.param_kinds) \
                    and self.param_kinds[index] is not None:
                kind = self.param_kinds[index]
            site = SiteState(
                site_id=sid, kind=kind, src_types=frozenset(),
                variable=arg.arg, location=self.location,
                file=self.owner.path, line=self.node.lineno,
                coarse_location=self.location,
                coarse_line=self.node.lineno)
            state.sites[sid] = site
            state.env[arg.arg] = _Ref({sid})
            self.param_sites[arg.arg] = sid
        # Keyword-only args with evaluable defaults participate too.
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                state.env[arg.arg] = self.owner.eval_const(
                    default, self.cls)
        return state

    def run_root(self) -> _State:
        state = self._initial_state()
        self._run_body(self.node.body, state)
        return self._final_state(state)

    def run_module_body(self, body: Sequence[ast.stmt]) -> _State:
        state = _State()
        stmts = [stmt for stmt in body
                 if not isinstance(stmt, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef))]
        self._run_body(stmts, state)
        return self._final_state(state)

    def summarize(self) -> _Summary:
        state = self._initial_state()
        self._run_body(self.node.body, state)
        final = self._final_state(state)
        returns = self._classify_returns()
        ret_refs: Set[int] = set()
        for value, _st in self.exit_states:
            ret_refs |= _refs_in(value)
        qual = f"{self.cls}.{self.name}" if self.cls else self.name
        return _Summary(qualname=qual,
                        param_names=[a.arg for a in
                                     (list(self.node.args.posonlyargs)
                                      + list(self.node.args.args))],
                        param_sites=dict(self.param_sites),
                        final=final, returns=returns, ret_refs=ret_refs)

    def _final_state(self, fallthrough: _State) -> _State:
        final = fallthrough if not fallthrough.dead else _State(dead=True)
        for _value, st in self.exit_states:
            final.join_into(st)
        for st in self.raise_states:
            final.join_into(st)
        if final.dead:
            final.dead = False
        return final

    def _classify_returns(self) -> Tuple[Any, ...]:
        values = [value for value, _st in self.exit_states]
        if not values:
            return ("none",)
        site_ids: Set[Any] = set()
        for value in values:
            if isinstance(value, _Ref) and len(value.sites) == 1 \
                    and not value.maybe_none:
                site_ids.add(next(iter(value.sites)))
            elif isinstance(value, Interval):
                site_ids.add("interval")
            elif value is _NONE:
                site_ids.add("none")
            else:
                site_ids.add("unknown")
        if len(site_ids) == 1:
            only = next(iter(site_ids))
            if only == "interval":
                hull = values[0]
                for value in values[1:]:
                    hull = hull.hull(value)
                return ("value", hull)
            if only == "none":
                return ("none",)
            if isinstance(only, int):
                return ("site", only)
        return ("unknown",)

    # -- statements ----------------------------------------------------
    def _run_body(self, body: Sequence[ast.stmt], state: _State,
                  loop_exits: Optional[List[_State]] = None) -> None:
        for stmt in body:
            if state.dead:
                break
            self._exec(stmt, state, loop_exits)

    def _exec(self, stmt: ast.stmt, state: _State,
              loop_exits: Optional[List[_State]]) -> None:
        self.owner.tick()
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, state)
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, state)
            for target in stmt.targets:
                self._bind(target, value, state)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._eval(stmt.value, state)
                self._bind(stmt.target, value, state)
        elif isinstance(stmt, ast.AugAssign):
            load = ast.BinOp(left=_as_load(stmt.target), op=stmt.op,
                             right=stmt.value)
            ast.copy_location(load, stmt)
            ast.fix_missing_locations(load)
            value = self._eval(load, state)
            self._bind(stmt.target, value, state)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, state, loop_exits)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, state)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt, state)
        elif isinstance(stmt, ast.Return):
            value = (_NONE if stmt.value is None
                     else self._eval(stmt.value, state))
            if self.root and isinstance(value, _Ref):
                for sid in value.sites:
                    site = state.sites.get(sid)
                    if site is not None:
                        site.returned = True
            if self._loop_depth > 0:
                self._pending_returns.append(value)
                if loop_exits is not None:
                    loop_exits.append(state.clone())
            else:
                self.exit_states.append((value, state.clone()))
            state.dead = True
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if loop_exits is not None:
                loop_exits.append(state.clone())
            state.dead = True
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, state)
            if self._loop_depth > 0:
                if loop_exits is not None:
                    loop_exits.append(state.clone())
            else:
                self.raise_states.append(state.clone())
            state.dead = True
        elif isinstance(stmt, ast.Try):
            self._exec_try(stmt, state, loop_exits)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                value = self._eval(item.context_expr, state)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, state)
            self._run_body(stmt.body, state, loop_exits)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs are not summarized; any outer tracked value
            # their bodies read could be mutated through the closure.
            self._escape_names(stmt, state)
        elif isinstance(stmt, (ast.ClassDef, ast.Import, ast.ImportFrom,
                               ast.Pass, ast.Global, ast.Nonlocal)):
            pass
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, state)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state.env.pop(target.id, None)
        else:
            self._escape_names(stmt, state)

    def _exec_if(self, stmt: ast.If, state: _State,
                 loop_exits: Optional[List[_State]]) -> None:
        truth = _truth(self._eval(stmt.test, state))
        if truth is Tri.TRUE:
            self._run_body(stmt.body, state, loop_exits)
            return
        if truth is Tri.FALSE:
            self._run_body(stmt.orelse, state, loop_exits)
            return
        other = state.clone()
        self._cond_depth += 1
        self._run_body(stmt.body, state, loop_exits)
        self._run_body(stmt.orelse, other, loop_exits)
        self._cond_depth -= 1
        state.join_into(other)

    def _exec_try(self, stmt: ast.Try, state: _State,
                  loop_exits: Optional[List[_State]]) -> None:
        pre = state.clone()
        self._run_body(stmt.body, state, loop_exits)
        # Handler-entry approximation: anywhere between the pre state
        # and the post-body state.  Monotone op counters are covered by
        # the hull; sizes of touched sites are widened because a remove
        # can undo an add mid-body.
        entry = pre.clone()
        entry.join_into(state)
        for sid, site in entry.sites.items():
            before = pre.sites.get(sid)
            after = state.sites.get(sid)
            if before is not None and after is not None \
                    and before.ops != after.ops:
                site.size = Interval(0.0, site.max_size.hi)
        for handler in stmt.handlers:
            branch = entry.clone()
            self._cond_depth += 1
            if handler.name:
                branch.env[handler.name] = None
            self._run_body(handler.body, branch, loop_exits)
            self._cond_depth -= 1
            state.join_into(branch)
        self._run_body(stmt.orelse, state, loop_exits)
        self._run_body(stmt.finalbody, state, loop_exits)

    def _escape_names(self, node: ast.AST, state: _State) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                value = state.env.get(sub.id)
                if value is not None:
                    state.escape_value(value)

    # -- binding -------------------------------------------------------
    def _bind(self, target: ast.expr, value: Any, state: _State) -> None:
        if isinstance(target, ast.Name):
            if isinstance(value, _Ref) and len(value.sites) == 1:
                site = state.sites.get(next(iter(value.sites)))
                if site is not None and not site.variable:
                    site.variable = target.id
            state.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            parts = self._split_iterable(value, len(target.elts), state)
            for elt, part in zip(target.elts, parts):
                if isinstance(elt, ast.Starred):
                    state.escape_value(part)
                    self._bind(elt.value, None, state)
                else:
                    self._bind(elt, part, state)
        elif isinstance(target, ast.Starred):
            state.escape_value(value)
            self._bind(target.value, None, state)
        elif isinstance(target, ast.Attribute):
            # Storing into an object attribute publishes the value.
            self._eval(target.value, state)
            state.escape_value(value)
        elif isinstance(target, ast.Subscript):
            base = self._eval(target.value, state)
            self._eval(target.slice, state)
            if isinstance(base, _Ref):
                stored = False
                for sid in base.sites:
                    site = state.sites.get(sid)
                    if site is not None and site.kind == "pylist":
                        site.elem, lost = _join_elem(site.elem, value)
                        state.escape(lost)
                        if not _refs_in(value) <= lost:
                            stored = True
                if not stored:
                    state.escape_value(value)
            else:
                state.escape_value(value)
        else:
            state.escape_value(value)

    def _split_iterable(self, value: Any, count: int,
                        state: _State) -> List[Any]:
        """Destructure ``value`` into ``count`` abstract parts."""
        if isinstance(value, _Tup) and len(value.items) == count:
            return list(value.items)
        if isinstance(value, _EnumVal) and count == 2:
            element = self._element_of(value.inner, state)
            return [NON_NEGATIVE, element]
        state.escape_value(value)
        return [None] * count

    def _element_of(self, value: Any, state: _State) -> Any:
        """The per-iteration element abstraction of an iterable."""
        if isinstance(value, _RangeVal):
            return value.element
        if isinstance(value, _IterVal):
            return value.element
        if isinstance(value, _EnumVal):
            inner = self._element_of(value.inner, state)
            return _Tup([NON_NEGATIVE, inner])
        if isinstance(value, _Tup):
            joined: Any = None
            first = True
            for item in value.items:
                if first:
                    joined, first = item, False
                else:
                    joined, lost = _join_value(joined, item)
                    state.escape(lost)
            return joined if not first else None
        if isinstance(value, _Ref):
            joined = None
            first = True
            for sid in value.sites:
                site = state.sites.get(sid)
                elem = site.elem if site is not None else None
                if first:
                    joined, first = elem, False
                else:
                    joined, lost = _join_value(joined, elem)
                    state.escape(lost)
            if joined is _NONE:
                return None
            return joined
        return None

    # -- expressions ---------------------------------------------------
    def _eval(self, node: ast.expr, state: _State) -> Any:
        self.owner.tick()
        if isinstance(node, ast.Constant):
            return _const_to_value(node.value)
        if isinstance(node, ast.Name):
            if node.id in state.env:
                return state.env[node.id]
            return self.owner.const_value(node.id)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, state)
        if isinstance(node, ast.Call):
            return self._eval_call(node, state)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, state)
            right = self._eval(node.right, state)
            if isinstance(left, Interval) and isinstance(right, Interval):
                return _binop(node.op, left, right)
            state.escape_value(left)
            state.escape_value(right)
            return None
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, state)
            if isinstance(node.op, ast.Not):
                truth = _truth(operand)
                if truth is Tri.TRUE:
                    return point(0.0)
                if truth is Tri.FALSE:
                    return point(1.0)
                return MAYBE
            if isinstance(node.op, ast.USub) \
                    and isinstance(operand, Interval):
                return ZERO - operand
            if isinstance(node.op, ast.UAdd) \
                    and isinstance(operand, Interval):
                return operand
            return None
        if isinstance(node, ast.Compare):
            return self._eval_compare(node, state)
        if isinstance(node, ast.BoolOp):
            truths = [_truth(self._eval(value, state))
                      for value in node.values]
            if isinstance(node.op, ast.And):
                if Tri.FALSE in truths:
                    return point(0.0)
                if all(t is Tri.TRUE for t in truths):
                    return point(1.0)
            else:
                if Tri.TRUE in truths:
                    return point(1.0)
                if all(t is Tri.FALSE for t in truths):
                    return point(0.0)
            return MAYBE
        if isinstance(node, ast.IfExp):
            truth = _truth(self._eval(node.test, state))
            if truth is Tri.TRUE:
                return self._eval(node.body, state)
            if truth is Tri.FALSE:
                return self._eval(node.orelse, state)
            joined, lost = _join_value(self._eval(node.body, state),
                                       self._eval(node.orelse, state))
            state.escape(lost)
            return joined
        if isinstance(node, ast.Tuple):
            return _Tup([self._eval(elt, state) for elt in node.elts])
        if isinstance(node, ast.List):
            return self._alloc_pylist(node, state)
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value, state)
            index = self._eval(node.slice, state)
            if isinstance(base, _Tup) and isinstance(index, Interval) \
                    and index.is_point:
                pos = int(index.lo)
                if -len(base.items) <= pos < len(base.items):
                    return base.items[pos]
            if isinstance(base, _Ref):
                return self._element_of(base, state)
            return None
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, state)
            self._bind(node.target, value, state)
            return value
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for comp in node.generators:
                source = self._eval(comp.iter, state)
                element = self._element_of(source, state)
                state.escape_value(element)
            return None
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name):
                    self._eval(sub, state)
            return None
        if isinstance(node, ast.Lambda):
            self._escape_names(node.body, state)
            return None
        if isinstance(node, ast.Starred):
            return self._eval(node.value, state)
        if isinstance(node, (ast.Dict, ast.Set)):
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.expr):
                    state.escape_value(self._eval(sub, state))
            return None
        self._escape_names(node, state)
        return None

    def _eval_attribute(self, node: ast.Attribute, state: _State) -> Any:
        receiver = self._eval(node.value, state)
        if receiver is _SELF:
            return self.owner.class_const(self.cls, node.attr)
        if isinstance(receiver, _Ref):
            if node.attr in _NEUTRAL_ATTRS:
                return None
            if node.attr in _NEUTRAL_METHODS \
                    or self._method_spec_exists(node.attr, receiver,
                                                state):
                return None     # bare method reference, not a call
            state.escape_value(receiver)
            return None
        return None

    def _method_spec_exists(self, method: str, ref: _Ref,
                            state: _State) -> bool:
        for sid in ref.sites:
            site = state.sites.get(sid)
            if site is None:
                continue
            table = (_PYLIST_METHODS if site.kind == "pylist"
                     else _METHOD_SPECS.get(site.kind, {}))
            if method in table:
                return True
        return False

    def _eval_compare(self, node: ast.Compare, state: _State) -> Any:
        left = self._eval(node.left, state)
        values = [self._eval(cmp, state) for cmp in node.comparators]
        if len(node.ops) != 1:
            return MAYBE
        op, right = node.ops[0], values[0]
        if isinstance(op, (ast.Is, ast.IsNot)):
            tri = Tri.UNKNOWN
            if right is _NONE or (isinstance(node.comparators[0],
                                             ast.Constant)
                                  and node.comparators[0].value is None):
                if isinstance(left, _Ref):
                    tri = Tri.UNKNOWN if left.maybe_none else Tri.FALSE
                elif left is _NONE:
                    tri = Tri.TRUE
                elif left is not None:
                    tri = Tri.FALSE
            if isinstance(op, ast.IsNot) and tri is not Tri.UNKNOWN:
                tri = Tri.TRUE if tri is Tri.FALSE else Tri.FALSE
            return _tri_value(tri)
        if isinstance(left, Interval) and isinstance(right, Interval):
            return _tri_value(_cmp_tri(op, left, right))
        if isinstance(left, str) and isinstance(right, str):
            if isinstance(op, ast.Eq):
                return point(1.0 if left == right else 0.0)
            if isinstance(op, ast.NotEq):
                return point(1.0 if left != right else 0.0)
        return MAYBE

    # -- calls ---------------------------------------------------------
    def _eval_call(self, node: ast.Call, state: _State) -> Any:
        func = node.func
        callee = None
        if isinstance(func, ast.Name):
            callee = func.id
        elif isinstance(func, ast.Attribute):
            callee = func.attr
        if callee in WRAPPER_KINDS:
            return self._alloc_wrapper(node, callee, state)
        if isinstance(func, ast.Name):
            if callee in _BUILTIN_FNS:
                return self._eval_builtin(callee, node, state)
            if callee in self.owner.functions:
                return self._apply_summary(None, callee, node, state,
                                           skip_self=False)
            return self._unknown_call(node, state)
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) \
                    and func.value.id == "self" \
                    and state.env.get("self") is _SELF \
                    and callee in self.owner.classes.get(self.cls or "",
                                                         {}):
                return self._apply_summary(self.cls, callee, node, state,
                                           skip_self=True)
            receiver = self._eval(func.value, state)
            if isinstance(receiver, _Ref):
                return self._apply_method(receiver, callee, node, state)
            return self._unknown_call(node, state)
        self._eval(func, state)
        return self._unknown_call(node, state)

    def _unknown_call(self, node: ast.Call, state: _State) -> Any:
        """Opaque callee: every argument may be mutated or published."""
        for arg in node.args:
            state.escape_value(self._eval(arg, state))
        for kw in node.keywords:
            state.escape_value(self._eval(kw.value, state))
        return None

    # -- allocation ----------------------------------------------------
    def _alloc_wrapper(self, node: ast.Call, wrapper: str,
                       state: _State) -> _Ref:
        kind, default_src = WRAPPER_KINDS[wrapper]
        src_kw = next((kw.value for kw in node.keywords
                       if kw.arg == "src_type"), None)
        src_types = frozenset(_literal_src_types(src_kw, default_src))
        capacity: Optional[Interval] = None
        capacity_unknown = False
        copy_src: Any = None
        for arg in node.args:
            self._eval(arg, state)
        for kw in node.keywords:
            value = self._eval(kw.value, state)
            if kw.arg == "initial_capacity":
                if isinstance(value, Interval):
                    capacity = value
                elif value is not _NONE:
                    capacity_unknown = True
            elif kw.arg == "copy_from":
                copy_src = value
            elif kw.arg in (None, "impl_kwargs"):
                state.escape_value(value)
        sid = self.owner.alloc_site_id()
        site = SiteState(
            site_id=sid, kind=kind, src_types=src_types, variable="",
            location=self.location, file=self.owner.path,
            line=node.lineno, coarse_location=self.location,
            coarse_line=node.lineno, capacity=capacity,
            capacity_unknown=capacity_unknown,
            conditional=self._cond_depth > 0)
        if isinstance(copy_src, _Ref):
            exact = self._exact_ref(copy_src, state)
            length = ZERO
            for src_sid in copy_src.sites:
                src_site = state.sites.get(src_sid)
                if src_site is None:
                    continue
                src_site.charge("#copied", ONE, exact)
                length = length.hull(src_site.size)
            if kind == "list":
                site.size = length
            else:
                site.size = Interval(0.0, length.hi)
            site.max_size = site.size
        elif copy_src is not None and copy_src is not _NONE:
            site.size = UNBOUNDED
            site.max_size = UNBOUNDED
            state.escape_value(copy_src)
        state.sites[sid] = site
        return _Ref({sid})

    def _alloc_pylist(self, node: ast.List, state: _State) -> _Ref:
        elem: Any = _NONE
        first = True
        for elt in node.elts:
            value = self._eval(elt, state)
            if first:
                elem, first = value, False
            else:
                elem, lost = _join_value(elem, value)
                state.escape(lost)
        sid = self.owner.alloc_site_id()
        size = point(float(len(node.elts)))
        site = SiteState(
            site_id=sid, kind="pylist", src_types=frozenset(),
            variable="", location=self.location, file=self.owner.path,
            line=node.lineno, coarse_location=self.location,
            coarse_line=node.lineno, size=size, max_size=size,
            elem=elem, conditional=self._cond_depth > 0)
        state.sites[sid] = site
        return _Ref({sid})

    # -- tracked-method application ------------------------------------
    @staticmethod
    def _exact_ref(ref: _Ref, state: _State) -> bool:
        if len(ref.sites) != 1 or ref.maybe_none:
            return False
        site = state.sites.get(next(iter(ref.sites)))
        return (site is not None and site.instances.is_point
                and site.instances.lo == 1.0)

    def _apply_method(self, ref: _Ref, method: str, node: ast.Call,
                      state: _State) -> Any:
        args = [self._eval(arg, state) for arg in node.args]
        for kw in node.keywords:
            args.append(self._eval(kw.value, state))
        if method in _NEUTRAL_METHODS:
            return ref if method == "pin" else None
        exact = self._exact_ref(ref, state)
        result: Any = _NONE
        handled = False
        for sid in ref.sites:
            site = state.sites.get(sid)
            if site is None:
                continue
            table = (_PYLIST_METHODS if site.kind == "pylist"
                     else _METHOD_SPECS.get(site.kind, {}))
            spec = table.get(method)
            if spec is None:
                site.escaped = True
                for value in args:
                    state.escape_value(value)
                continue
            handled = True
            dsl, size_mode, ret, elem_arg = spec
            if dsl is not None:
                site.charge(dsl, ONE, exact)
            self._apply_size(site, size_mode, args, state, exact)
            if elem_arg is not None and elem_arg < len(args):
                site.elem, lost = _join_elem(site.elem, args[elem_arg])
                state.escape(lost)
            if dsl in ("#addAll", "#addAll(int)", "#putAll") and args:
                source = args[-1] if dsl != "#addAll(int)" else (
                    args[1] if len(args) > 1 else None)
                if isinstance(source, _Ref):
                    src_exact = self._exact_ref(source, state)
                    for src_sid in source.sites:
                        src_site = state.sites.get(src_sid)
                        if src_site is not None \
                                and src_site.kind in REAL_KINDS:
                            src_site.charge("#copied", ONE, src_exact)
            value = self._method_result(site, ref, ret)
            result, lost = _join_value(result, value) \
                if not (result is _NONE and value is not _NONE) \
                else (value, set())
            state.escape(lost)
        if not handled:
            return None
        return None if result is _NONE else result

    def _apply_size(self, site: SiteState, mode: Optional[str],
                    args: Sequence[Any], state: _State,
                    exact: bool) -> None:
        if mode is None:
            return
        if mode == "+1":
            site.grow(ONE, exact)
        elif mode == "-1":
            site.grow(Interval(-1.0, -1.0), exact)
        elif mode == "[0,1]":
            # Inserting into a provably empty set/map cannot hit an
            # existing key, so it grows by exactly one.
            if site.size.is_point and site.size.lo == 0.0:
                site.grow(ONE, exact)
            else:
                site.grow(MAYBE, exact)
        elif mode == "[-1,0]":
            site.grow(Interval(-1.0, 0.0), exact)
        elif mode in ("+n", "[0,n]"):
            length = UNBOUNDED
            for value in args:
                if isinstance(value, (_Ref, _Tup, _RangeVal)):
                    length = self._length_of(value, state)
                    break
            if mode == "[0,n]":
                length = Interval(0.0, length.hi)
            site.grow(length, exact)
        elif mode == "clear":
            if exact:
                site.grow(ZERO - site.size, exact=True)
                site.size = ZERO
            else:
                site.grow(Interval(-site.size.hi, 0.0), exact=False)

    def _length_of(self, value: Any, state: _State) -> Interval:
        if isinstance(value, _Ref):
            length = EMPTY
            for sid in value.sites:
                site = state.sites.get(sid)
                if site is None:
                    return UNBOUNDED
                length = site.size if length.is_empty \
                    else length.hull(site.size)
            return UNBOUNDED if length.is_empty else length
        return _value_len(value)

    def _method_result(self, site: SiteState, ref: _Ref,
                       ret: Optional[str]) -> Any:
        if ret == "size":
            return site.size
        if ret == "maybe":
            return MAYBE
        if ret == "elem":
            return None if site.elem is _NONE else site.elem
        if ret == "iter":
            element = None if site.elem is _NONE else site.elem
            return _IterVal(_Ref({site.site_id}), element)
        return _NONE

    # -- builtins ------------------------------------------------------
    def _eval_builtin(self, name: str, node: ast.Call,
                      state: _State) -> Any:
        args = [self._eval(arg, state) for arg in node.args]
        for kw in node.keywords:
            self._eval(kw.value, state)
        if name == "len" and len(args) == 1:
            return self._length_of(args[0], state)
        if name == "range" and args:
            return self._make_range(args)
        if name == "enumerate" and args:
            return _EnumVal(args[0])
        if name in ("min", "max") and args:
            if all(isinstance(a, Interval) for a in args):
                if name == "min":
                    return Interval(min(a.lo for a in args),
                                    min(a.hi for a in args))
                return Interval(max(a.lo for a in args),
                                max(a.hi for a in args))
            return None
        if name in ("int", "float", "round") and len(args) == 1 \
                and isinstance(args[0], Interval):
            return args[0]
        if name == "abs" and len(args) == 1 \
                and isinstance(args[0], Interval):
            value = args[0]
            if value.lo >= 0.0:
                return value
            if value.hi <= 0.0:
                return ZERO - value
            return Interval(0.0, max(value.hi, -value.lo))
        if name == "bool" and len(args) == 1:
            return _tri_value(_truth(args[0]))
        if name in ("isinstance", "hasattr", "callable"):
            return MAYBE
        if name == "getattr":
            for value in args:
                state.escape_value(value)
            return None
        if name == "print":
            return _NONE
        # list()/sorted()/sum()/... read their argument without
        # recording wrapper ops and without capturing a mutable alias.
        return None

    @staticmethod
    def _make_range(args: List[Any]) -> _RangeVal:
        if not all(isinstance(a, Interval) for a in args[:3]):
            return _RangeVal(UNBOUNDED, TOP)
        if len(args) == 1:
            n = args[0]
            trips = Interval(max(0.0, n.lo), max(0.0, n.hi))
            return _RangeVal(trips, Interval(0.0, max(0.0, n.hi - 1.0)))
        a, b = args[0], args[1]
        if len(args) == 2:
            span = b - a
            trips = Interval(max(0.0, span.lo), max(0.0, span.hi))
            return _RangeVal(trips,
                             Interval(a.lo, max(a.lo, b.hi - 1.0)))
        c = args[2]
        if c.is_point and c.lo > 0.0:
            step = c.lo
            lo = max(0.0, math.ceil((b.lo - a.hi) / step))
            hi = max(0.0, (math.ceil((b.hi - a.lo) / step)
                           if b.hi != _INF else _INF))
            return _RangeVal(Interval(lo, hi),
                             Interval(a.lo, max(a.lo, b.hi - 1.0)))
        return _RangeVal(UNBOUNDED, a.hull(b))

    # -- summary instantiation -----------------------------------------
    @staticmethod
    def _binding_kind(value: Any, state: _State) -> Optional[str]:
        """The single ADT kind of an argument, or ``None`` if opaque."""
        if not isinstance(value, _Ref) or value.maybe_none:
            return None
        kinds = set()
        for sid in value.sites:
            site = state.sites.get(sid)
            if site is None:
                return None
            kinds.add(site.kind)
        if len(kinds) == 1:
            kind = next(iter(kinds))
            if kind in REAL_KINDS or kind == "pylist":
                return kind
        return None

    def _apply_summary(self, cls: Optional[str], name: str,
                       node: ast.Call, state: _State,
                       skip_self: bool) -> Any:
        positional = [self._eval(arg, state) for arg in node.args]
        by_name: Dict[str, Any] = {}
        for kw in node.keywords:
            value = self._eval(kw.value, state)
            if kw.arg is None:
                state.escape_value(value)
            else:
                by_name[kw.arg] = value
        fn_node = (self.owner.classes.get(cls, {}).get(name)
                   if cls is not None else self.owner.functions.get(name))
        if fn_node is None:
            for value in positional:
                state.escape_value(value)
            for value in by_name.values():
                state.escape_value(value)
            return None
        all_params = [a.arg for a in (list(fn_node.args.posonlyargs)
                                      + list(fn_node.args.args))]
        params = all_params
        if skip_self and params and params[0] == "self":
            params = params[1:]
        binding: Dict[str, Any] = {}
        for pname, value in zip(params, positional):
            binding[pname] = value
        for extra in positional[len(params):]:
            state.escape_value(extra)
        for pname, value in by_name.items():
            if pname in all_params:
                binding[pname] = value
            else:
                state.escape_value(value)
        # Specialise the summary to the ADT kinds of collection args:
        # the callee then tracks its parameter's ops/growth precisely
        # instead of conservatively escaping it.
        kinds = tuple(self._binding_kind(binding.get(pname), state)
                      for pname in all_params)
        summ = self.owner.summary(cls, name, kinds)
        if summ is None:
            for value in positional:
                state.escape_value(value)
            for value in by_name.values():
                state.escape_value(value)
            return None
        self.owner.used_summaries.add((cls, name))
        # Replay parameter effects onto the argument sites.
        param_ids = set(summ.param_sites.values())
        idmap: Dict[int, FrozenSet[int]] = {}
        for pname, psid in summ.param_sites.items():
            ps = summ.final.sites.get(psid)
            value = binding.get(pname)
            if isinstance(value, _Ref):
                idmap[psid] = value.sites
            if ps is None:
                continue
            if not isinstance(value, _Ref):
                if value is not None and ps.escaped:
                    state.escape_value(value)
                continue
            exact = self._exact_ref(value, state)
            for sid in value.sites:
                site = state.sites.get(sid)
                if site is None:
                    continue
                for dsl, count in ps.ops.items():
                    site.charge(dsl, count, exact)
                pre_hi = site.size.hi
                site.grow(ps.growth, exact)
                if ps.peak > 0.0:
                    cand = pre_hi + max(0.0, ps.peak)
                    site.max_size = Interval(
                        site.max_size.lo, max(site.max_size.hi, cand))
                site.escaped |= ps.escaped
                if ps.elem is not _NONE:
                    site.elem, lost = _join_value(site.elem, None)
                    state.escape(lost)
        # Instantiate sites the callee created.
        for sid, template in summ.final.sites.items():
            if sid in param_ids:
                continue
            new_id = self.owner.alloc_site_id()
            idmap[sid] = frozenset({new_id})
        returned_new: Optional[int] = None
        for sid, template in summ.final.sites.items():
            if sid in param_ids:
                continue
            new_id = next(iter(idmap[sid]))
            site = template.clone()
            site.site_id = new_id
            site.coarse_location = self.location
            site.coarse_line = node.lineno
            site.chain = template.chain + (
                (self.owner.path, node.lineno,
                 f"via call to {summ.qualname}()"),)
            site.conditional |= self._cond_depth > 0
            site.returned = False
            site.elem = self._remap_value(site.elem, idmap, state)
            state.sites[new_id] = site
            if summ.returns[0] == "site" and summ.returns[1] == sid:
                returned_new = new_id
        tag = summ.returns[0]
        if tag == "site":
            target = summ.returns[1]
            if returned_new is not None:
                return _Ref({returned_new})
            for pname, psid in summ.param_sites.items():
                if psid == target:
                    return binding.get(pname)
            return None
        if tag == "value":
            return summ.returns[1]
        if tag == "none":
            return _NONE
        return None

    def _remap_value(self, value: Any, idmap: Dict[int, FrozenSet[int]],
                     state: _State) -> Any:
        if isinstance(value, _Ref):
            sites: Set[int] = set()
            dropped = False
            for sid in value.sites:
                if sid in idmap:
                    sites |= idmap[sid]
                elif sid in state.sites:
                    sites.add(sid)
                else:
                    dropped = True
            if not sites:
                return None
            if dropped:
                state.escape(sites)
            return _Ref(sites, value.maybe_none)
        if isinstance(value, _Tup):
            return _Tup([self._remap_value(item, idmap, state)
                         for item in value.items])
        return value

    # -- loops ---------------------------------------------------------
    def _exec_for(self, stmt: ast.For, state: _State) -> None:
        iterable = self._eval(stmt.iter, state)
        trips = self._trip_count(iterable, state)
        element = self._element_of(iterable, state)
        iter_sites = _refs_in(iterable)
        self._run_loop(stmt, state, trips, element=element,
                       target=stmt.target, iter_sites=iter_sites)
        if stmt.orelse and not state.dead:
            self._run_body(stmt.orelse, state)

    def _exec_while(self, stmt: ast.While, state: _State) -> None:
        truth = _truth(self._eval(stmt.test, state))
        if truth is Tri.FALSE:
            if stmt.orelse:
                self._run_body(stmt.orelse, state)
            return
        self._run_loop(stmt, state, UNBOUNDED, element=None,
                       target=None, iter_sites=set(),
                       test=stmt.test)
        if not state.dead:
            # The exit check runs once more than the body.
            self._eval(stmt.test, state)
            if stmt.orelse:
                self._run_body(stmt.orelse, state)

    def _trip_count(self, iterable: Any, state: _State) -> Interval:
        if isinstance(iterable, _RangeVal):
            return iterable.trips
        if isinstance(iterable, (_Ref, _Tup, str)):
            length = self._length_of(iterable, state) \
                if isinstance(iterable, _Ref) else _value_len(iterable)
            return Interval(max(0.0, length.lo), max(0.0, length.hi))
        if isinstance(iterable, _IterVal):
            if iterable.ref is not None:
                return self._trip_count(iterable.ref, state)
            return UNBOUNDED
        if isinstance(iterable, _EnumVal):
            return self._trip_count(iterable.inner, state)
        return UNBOUNDED

    def _run_loop(self, stmt: Any, state: _State, trips: Interval,
                  element: Any, target: Optional[ast.expr],
                  iter_sites: Set[int],
                  test: Optional[ast.expr] = None) -> None:
        body = stmt.body
        self._loop_depth += 1
        ret_mark = len(self._pending_returns)
        site_mark = self.owner.next_site_id
        try:
            # 1. Probe: run the body once from the current state to
            # learn what it mutates and which variables it rebinds.
            probe = state.clone()
            probe_exits: List[_State] = []
            self._run_one_body(body, probe, target, element, test,
                               probe_exits)
            mutated, changed_vars = self._diff(state, probe)
            del self._pending_returns[ret_mark:]
            self.owner.reset_site_counter(site_mark)
            had_exit = bool(probe_exits) or _scan_flow(body)
            if mutated & iter_sites:
                trips = UNBOUNDED       # iterating what the body mutates
            target_names = set()
            if target is not None:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        target_names.add(sub.id)

            # 2. Widened base: over-approximates *every* iteration
            # entry.  Op/growth anchors are zeroed so the trial run
            # yields pure per-iteration deltas.
            base = state.clone()
            for name in changed_vars - target_names:
                old = base.env.get(name)
                base.escape_value(old)
                base.env[name] = None
            for site in base.sites.values():
                site.ops = {}
                site.growth = ZERO
                site.peak = 0.0
                if site.site_id in mutated:
                    site.size = UNBOUNDED
                    site.max_size = site.max_size.hull(UNBOUNDED)

            # 3. Trials: iterate to a fixpoint on element abstractions
            # (an iteration may read values appended by earlier ones).
            trial: Optional[_State] = None
            trial_exits: List[_State] = []
            for _attempt in range(3):
                del self._pending_returns[ret_mark:]
                self.owner.reset_site_counter(site_mark)
                trial = base.clone()
                trial_exits = []
                self._run_one_body(body, trial, target, element, test,
                                   trial_exits)
                stable = True
                for sid, bsite in base.sites.items():
                    tsite = trial.sites.get(sid)
                    if tsite is None:
                        continue
                    joined, lost = _join_elem(bsite.elem, tsite.elem)
                    if not _val_eq(joined, bsite.elem) or lost:
                        bsite.elem = joined
                        base.escape(lost)
                        stable = False
                if stable:
                    break
            else:
                for bsite in base.sites.values():
                    base.escape_value(bsite.elem)
                    bsite.elem = None
                del self._pending_returns[ret_mark:]
                self.owner.reset_site_counter(site_mark)
                trial = base.clone()
                trial_exits = []
                self._run_one_body(body, trial, target, element, test,
                                   trial_exits)
            had_exit = had_exit or bool(trial_exits)

            # 4. Restoration: before + delta * trips.
            result = self._restore(state, trial, trips, had_exit)
            for exit_state in trial_exits:
                for name, value in exit_state.env.items():
                    if name in result.env \
                            and _val_eq(result.env[name], value):
                        continue
                    joined, lost = _join_value(result.env.get(name),
                                               value)
                    result.env[name] = joined
                    result.escape(lost)
            if trips.lo < 1.0 or had_exit:
                result.join_into(state)
            state.env = result.env
            state.sites = result.sites
            state.dead = False
        finally:
            self._loop_depth -= 1
        if self._loop_depth == 0 and self._pending_returns:
            for value in self._pending_returns:
                self.exit_states.append((value, state.clone()))
            del self._pending_returns[:]

    def _run_one_body(self, body: Sequence[ast.stmt], run: _State,
                      target: Optional[ast.expr], element: Any,
                      test: Optional[ast.expr],
                      exits: List[_State]) -> None:
        if test is not None:
            self._eval(test, run)
        if target is not None:
            self._bind(target, element, run)
        self._cond_depth += 1
        try:
            self._run_body(body, run, loop_exits=exits)
        finally:
            self._cond_depth -= 1
        if run.dead and exits:
            run.join_into(exits[0])
        run.dead = False

    @staticmethod
    def _diff(before: _State,
              after: _State) -> Tuple[Set[int], Set[str]]:
        mutated: Set[int] = set()
        for sid, bsite in before.sites.items():
            asite = after.sites.get(sid)
            if asite is None:
                continue
            if (bsite.ops != asite.ops or bsite.size != asite.size
                    or not _val_eq(bsite.elem, asite.elem)
                    or bsite.escaped != asite.escaped):
                mutated.add(sid)
        changed: Set[str] = set()
        for name in set(before.env) | set(after.env):
            if not _val_eq(before.env.get(name), after.env.get(name)):
                changed.add(name)
        return mutated, changed

    def _restore(self, pre: _State, trial: _State, trips: Interval,
                 had_exit: bool) -> _State:
        if had_exit:
            trips = Interval(0.0, trips.hi)
        result = pre.clone()
        lost_refs: Set[int] = set()
        for sid, tsite in trial.sites.items():
            before = pre.sites.get(sid)
            if before is None:
                # Created inside the body: per-instance stats stand,
                # the *instance count* scales with the trip count.
                site = tsite.clone()
                site.instances = site.instances * trips
                if trips.lo < 1.0:
                    site.conditional = True
                    site.instances = site.instances.hull(ZERO)
                result.sites[sid] = site
                continue
            delta_ops = tsite.ops
            delta_g = tsite.growth
            peak = tsite.peak
            if had_exit:
                delta_ops = {op: Interval(0.0, max(0.0, d.hi))
                             for op, d in delta_ops.items()}
                delta_g = Interval(min(0.0, delta_g.lo),
                                   max(0.0, delta_g.hi))
                peak = max(0.0, peak)
            site = before.clone()
            for op, delta in delta_ops.items():
                site.ops[op] = site.ops.get(op, ZERO) + delta * trips
            total_g = delta_g * trips
            new_size = (before.size + total_g).clamp_lower()
            if delta_g.hi <= 0.0:
                extra = peak
            elif trips.hi == _INF:
                extra = _INF
            else:
                extra = peak + delta_g.hi * max(0.0, trips.hi - 1.0)
            site.size = new_size
            site.max_size = Interval(
                max(before.max_size.lo, new_size.lo),
                max(before.max_size.hi, before.size.hi + extra,
                    new_size.hi))
            site.growth = before.growth + total_g
            site.peak = max(before.peak, before.growth.hi + extra)
            site.escaped = before.escaped or tsite.escaped
            site.conditional = before.conditional or tsite.conditional
            site.returned = before.returned or tsite.returned
            site.elem, lost = _join_elem(before.elem, tsite.elem)
            lost_refs |= lost
            site.variable = before.variable or tsite.variable
            result.sites[sid] = site
        # Escape only after every site is in place: an element lost at
        # one site may reference a site processed later in the walk.
        result.escape(lost_refs)
        result.env = dict(trial.env)
        return result


# ----------------------------------------------------------------------
# Tracked-method transfer tables: (dsl op, size mode, result, elem arg)
# ----------------------------------------------------------------------
_COMMON_METHODS = {
    "size": ("#size", None, "size", None),
    "is_empty": ("#isEmpty", None, "maybe", None),
    "clear": ("#clear", "clear", None, None),
    "iterate": ("#iterator", None, "iter", None),
}

_METHOD_SPECS: Dict[str, Dict[str, tuple]] = {
    "list": {
        **_COMMON_METHODS,
        "add": ("#add", "+1", None, 0),
        "add_at": ("#add(int)", "+1", None, 1),
        "add_all": ("#addAll", "+n", None, None),
        "add_all_at": ("#addAll(int)", "+n", None, None),
        "get": ("#get(int)", None, "elem", None),
        "set_at": ("#set(int)", None, None, 1),
        "remove_at": ("#remove(int)", "-1", "elem", None),
        "remove_first": ("#removeFirst", "-1", "elem", None),
        "remove_value": ("#remove", "[-1,0]", "maybe", None),
        "contains": ("#contains", None, "maybe", None),
        "index_of": ("#indexOf", None, None, None),
        "to_list": ("#toArray", None, None, None),
    },
    "set": {
        **_COMMON_METHODS,
        "add": ("#add", "[0,1]", None, 0),
        "add_all": ("#addAll", "[0,n]", None, None),
        "remove_value": ("#remove", "[-1,0]", "maybe", None),
        "contains": ("#contains", None, "maybe", None),
        "to_list": ("#toArray", None, None, None),
    },
    "map": {
        **_COMMON_METHODS,
        "put": ("#put", "[0,1]", None, 1),
        "put_all": ("#putAll", "[0,n]", None, None),
        "get": ("#get(Object)", None, "elem", None),
        "remove_key": ("#removeKey", "[-1,0]", "elem", None),
        "contains_key": ("#containsKey", None, "maybe", None),
        "contains_value": ("#containsValue", None, "maybe", None),
        "iterate_items": ("#iterator", None, "iter", None),
        "iterate_keys": ("#iterator", None, "iter", None),
    },
}

_PYLIST_METHODS: Dict[str, tuple] = {
    "append": (None, "+1", None, 0),
    "extend": (None, "+n", None, None),
    "insert": (None, "+1", None, 1),
    "pop": (None, "-1", "elem", None),
    "remove": (None, "[-1,0]", None, None),
    "clear": (None, "clear", None, None),
    "sort": (None, None, None, None),
    "reverse": (None, None, None, None),
    "copy": (None, None, None, None),
    "count": (None, None, None, None),
    "index": (None, None, None, None),
}

_BUILTIN_FNS = frozenset({
    "len", "range", "enumerate", "min", "max", "abs", "int", "float",
    "bool", "round", "list", "tuple", "set", "dict", "sorted", "sum",
    "print", "isinstance", "hasattr", "callable", "getattr", "zip",
    "str", "repr", "reversed", "iter", "next", "any", "all",
})


# ----------------------------------------------------------------------
# Public report
# ----------------------------------------------------------------------
@dataclass
class SiteReport:
    """Inferred interval statistics and rule verdicts for one site."""

    location: str                 # profiler frame (module.function)
    line: int                     # allocation line
    coarse_location: str          # where the coarse linter reports it
    coarse_line: int
    file: str
    kind: str
    variable: str
    src_types: Tuple[str, ...]
    ops: Dict[str, Interval]
    max_size: Interval
    size: Interval
    capacity: Optional[Interval]
    instances: Interval
    escaped: bool
    conditional: bool
    size_stable: bool
    chain: Tuple[Tuple[str, int, str], ...]
    #: per src_type -> per rule name -> Tri verdict
    verdicts: Dict[str, Dict[str, Tri]] = field(default_factory=dict)
    #: per src_type -> (rule name, Suggestion) for a *must* decision
    decisions: Dict[str, Tuple[str, Any]] = field(default_factory=dict)

    @property
    def context(self) -> str:
        src = self.src_types[0] if self.src_types else self.kind
        return f"{src}:{self.location}:{self.line}"

    def ops_total(self) -> Interval:
        total = ZERO
        for value in self.ops.values():
            total = total + value
        return total


@dataclass
class InterprocReport:
    """Whole-run result: sites, findings, and the static proposal."""

    sites: List[SiteReport] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    proposal: Any = None          # repro.core.apply.ReplacementMap

    def proposal_rows(self) -> List[Tuple[str, int, str, str, str]]:
        """``(location, line, src_type, rule, detail)`` rows of the
        static proposal, the shape
        :func:`repro.lint.drift.three_way_report` consumes."""
        rows: List[Tuple[str, int, str, str, str]] = []
        for site in self.sites:
            for src_type, (rule, suggestion) in sorted(
                    site.decisions.items()):
                rows.append((site.location, site.line, src_type, rule,
                             suggestion.action.render()))
        return rows

    def classify(self, prediction: StaticPrediction) -> Tri:
        """Three-valued verdict for one coarse static prediction.

        ``TRUE``  -- some matching site *must* fire the predicted rule;
        ``FALSE`` -- every matching site refutes it;
        ``UNKNOWN`` otherwise (straddling intervals or no matching
        site at all -- the interprocedural analysis never guesses).
        """
        verdicts: List[Tri] = []
        for site in self.sites:
            if site.coarse_location != prediction.location:
                continue
            if prediction.line and site.coarse_line \
                    and abs(site.coarse_line
                            - prediction.line) > _LINE_TOLERANCE:
                continue
            overlap = [src for src in site.src_types
                       if src in prediction.src_types]
            if not overlap:
                # Line tolerance can rope in a neighbouring allocation
                # of a different source type; that is a different site,
                # not evidence about this prediction.
                continue
            for src in overlap:
                rules = site.verdicts.get(src)
                if rules is None:
                    verdicts.append(Tri.UNKNOWN)
                else:
                    verdicts.append(rules.get(prediction.predicted_rule,
                                              Tri.FALSE))
        if not verdicts:
            return Tri.UNKNOWN
        if all(v is Tri.TRUE for v in verdicts):
            return Tri.TRUE
        if all(v is Tri.FALSE for v in verdicts):
            return Tri.FALSE
        return Tri.UNKNOWN


def _site_env(site: SiteState) -> Tuple[Dict[str, Interval], bool]:
    """Lower a site into the rule-condition environment.

    Escaped sites keep their lower bounds (operations *we saw* did
    happen) and widen upper bounds to infinity (unknown code may add
    more); that is exactly the sound direction for three-valued
    condition evaluation.
    """
    env: Dict[str, Interval] = {}
    widen = site.escaped
    all_ops = ZERO
    for op in _KIND_DSL_OPS.get(site.kind, ()):
        value = site.ops.get(op, ZERO)
        if widen:
            value = value.widen_hi()
        env[op] = value
        all_ops = all_ops + value
    for op, value in site.ops.items():
        if op not in env:
            env[op] = value.widen_hi() if widen else value
            all_ops = all_ops + env[op]
    max_size = site.max_size.widen_hi() if widen else site.max_size
    env["allOps"] = all_ops
    env["maxSize"] = max_size
    env["avgMaxSize"] = max_size
    env["maxMaxSize"] = max_size
    env["size"] = site.size.widen_hi() if widen else site.size
    if site.capacity is not None:
        env["initialCapacity"] = site.capacity
    elif site.capacity_unknown:
        env["initialCapacity"] = NON_NEGATIVE
    else:
        env["initialCapacity"] = ZERO
    # One static root invocation under-approximates dynamic instance
    # counts: the program may call the root any number of times.
    env["instances"] = Interval(site.instances.lo, _INF)
    env["deadInstances"] = NON_NEGATIVE
    env["swaps"] = ZERO
    size_stable = site.max_size.is_point and not site.escaped
    return env, size_stable


def _synthetic_profile(site: SiteState, src_type: str,
                       env: Dict[str, Interval]):
    """A representative ``ContextProfile`` for suggestion synthesis.

    The rule engine's capacity resolution reads Welford statistics, so
    we observe the representative size four times (stddev 0: a stable
    interval *is* a repeatable size) on a fresh ``ContextInfo``.
    """
    from repro.collections.base import CollectionKind
    from repro.profiler.context_info import ContextInfo
    from repro.profiler.report import ContextProfile
    from repro.runtime.context import ContextFrame, ContextKey

    def rep(interval: Interval) -> float:
        return interval.hi if interval.hi != _INF else interval.lo

    info = ContextInfo(0, src_type)
    size_rep = rep(env["maxSize"])
    for _ in range(4):
        info.max_size_stats.observe(size_rep)
        info.final_size_stats.observe(rep(env["size"]))
        if site.capacity is not None:
            info.initial_capacity_stats.observe(rep(site.capacity))
    info.instances_allocated = 4
    info.instances_dead = 4
    info.total_ops = int(rep(env["allOps"])) * 4
    key = ContextKey((ContextFrame(site.location, site.line),))
    kind = CollectionKind[site.kind.upper()]
    return ContextProfile(context_id=0, key=key, info=info,
                          heap=None, kind=kind)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _collect_sites(owner: _ModuleAnalysis) -> List[SiteState]:
    """Run every function as a root, plus the module body, and gather
    the reportable collection sites."""
    root_finals: List[Tuple[Tuple[Optional[str], str], _State]] = []
    for cls, name, node in owner.iter_roots():
        interp = _FuncInterp(owner, cls, name, node, root=True)
        try:
            final = interp.run_root()
        except (_Bailout, RecursionError):
            continue
        root_finals.append(((cls, name), final))
    module_interp = _FuncInterp(owner, None, "<module>", None, root=True)
    module_interp.location = owner.module
    try:
        module_final = module_interp.run_module_body(owner.tree.body)
    except (_Bailout, RecursionError):
        module_final = None
    if module_final is not None:
        # A module-level collection referenced from any function body
        # can be mutated through the global namespace.
        used_names: Set[str] = set()
        for _cls, _name, node in owner.iter_roots():
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name):
                    used_names.add(sub.id)
        for name, value in module_final.env.items():
            if name in used_names:
                module_final.escape_value(value)
        root_finals.append(((None, "<module>"), module_final))

    sites: List[SiteState] = []
    for root_key, final in root_finals:
        summarized = root_key in owner.used_summaries
        if root_key[1] in owner.address_taken:
            # Address-taken function: unknown callers receive whatever
            # it returns, so returned sites escape the analysis.
            for site in final.sites.values():
                if site.returned:
                    site.escaped = True
        # Escape cascade: anything held inside an escaped container is
        # itself reachable from unknown code.
        pending = [site for site in final.sites.values() if site.escaped]
        while pending:
            holder = pending.pop()
            for sid in _refs_in(holder.elem):
                inner = final.sites.get(sid)
                if inner is not None and not inner.escaped:
                    inner.escaped = True
                    pending.append(inner)
        for site in final.sites.values():
            if site.kind not in REAL_KINDS:
                continue
            if summarized and site.returned:
                # Callers instantiated this factory's summary; the
                # call-site copies carry the (richer) statistics.
                continue
            sites.append(site)
    return sites


def _evaluate_site(site: SiteState, engine) -> SiteReport:
    env, size_stable = _site_env(site)
    report = SiteReport(
        location=site.location, line=site.line,
        coarse_location=site.coarse_location,
        coarse_line=site.coarse_line, file=site.file, kind=site.kind,
        variable=site.variable,
        src_types=tuple(sorted(site.src_types)),
        ops={op: value for op, value in sorted(env.items())
             if op.startswith("#")},
        max_size=env["maxSize"], size=env["size"],
        capacity=site.capacity, instances=site.instances,
        escaped=site.escaped, conditional=site.conditional,
        size_stable=size_stable, chain=site.chain)
    for src_type in report.src_types or (None,):
        if src_type is None:
            break
        profile = _synthetic_profile(site, src_type, env)
        results, decision = engine.evaluate_intervals(
            profile, env, size_stable)
        report.verdicts[src_type] = {
            res.rule: res.verdict for res in results}
        if decision is not None:
            report.decisions[src_type] = decision
    return report


def _site_findings(report: SiteReport) -> List[Finding]:
    findings: List[Finding] = []
    related = tuple(Related(file=file, line=line, message=note)
                    for file, line, note in report.chain)
    for src_type, (rule, suggestion) in sorted(report.decisions.items()):
        findings.append(Finding(
            id="L2I-interval-must",
            severity=Severity.WARNING,
            message=(f"inferred intervals prove rule '{rule}' fires for "
                     f"every run (maxSize {report.max_size.render()}, "
                     f"allOps {report.ops_total().render()})"),
            span=Span(file=report.file, line=report.line),
            context=f"{src_type}:{report.location}:{report.line}",
            predicted_rule=rule,
            fix_hint=suggestion.action.render(),
            related=related,
        ))
    return findings


def _report_proposal(reports: Sequence[SiteReport]):
    from repro.core.apply import ReplacementMap
    from repro.runtime.context import ContextFrame, ContextKey

    proposal = ReplacementMap()
    for report in reports:
        key = ContextKey((ContextFrame(report.location, report.line),))
        for src_type, (_rule, suggestion) in report.decisions.items():
            choice = suggestion.to_choice()
            if choice is not None:
                proposal.set_choice(key, src_type, choice)
    return proposal


def analyze_source(source: str, path: str = "<source>",
                   budget: int = DEFAULT_BUDGET) -> InterprocReport:
    """Interprocedurally analyze one Python source text."""
    from repro.profiler.stability import StabilityPolicy
    from repro.rules.builtin import BUILTIN_RULES, DEFAULT_CONSTANTS
    from repro.rules.engine import RuleEngine

    report = InterprocReport()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.findings.append(Finding(
            id="L2-syntax-error", severity=Severity.ERROR,
            message=f"cannot analyze: {exc.msg}",
            span=Span(file=path, line=exc.lineno or 0)))
        report.proposal = _report_proposal([])
        return report
    owner = _ModuleAnalysis(tree, _module_name(path), path,
                            budget=budget)
    engine = RuleEngine(BUILTIN_RULES, DEFAULT_CONSTANTS,
                        StabilityPolicy())
    for site in _collect_sites(owner):
        site_report = _evaluate_site(site, engine)
        report.sites.append(site_report)
        report.findings.extend(_site_findings(site_report))
    report.sites.sort(key=lambda s: (s.file, s.line, s.location))
    report.findings.sort(key=lambda f: (f.span.file, f.span.line, f.id))
    report.proposal = _report_proposal(report.sites)
    return report


def analyze_paths(paths: Sequence[str],
                  budget: int = DEFAULT_BUDGET) -> InterprocReport:
    """Analyze files/directories; one merged report."""
    merged = InterprocReport()
    for file_path in _expand_paths(paths):
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            merged.findings.append(Finding(
                id="L2-io-error", severity=Severity.ERROR,
                message=f"cannot read: {exc}",
                span=Span(file=str(file_path))))
            continue
        sub = analyze_source(source, path=str(file_path), budget=budget)
        merged.sites.extend(sub.sites)
        merged.findings.extend(sub.findings)
    merged.proposal = _report_proposal(merged.sites)
    return merged


# ----------------------------------------------------------------------
# Signature export (PR 7 compiled-workload seeds)
# ----------------------------------------------------------------------
def export_signatures(report: InterprocReport) -> List[dict]:
    """Lower per-site op-mix signatures into generator specs.

    Each spec is consumable by
    :func:`repro.workloads.signatures.scenario_from_signature`: a
    deterministic trace generator seeds from the signature name and
    draws op counts/sizes from the inferred intervals.
    """
    def bound(value: float) -> Optional[float]:
        return None if value == _INF else value

    specs: List[dict] = []
    for site in report.sites:
        src_type = site.src_types[0] if site.src_types else None
        stem = site.file.rsplit("/", 1)[-1]
        if stem.endswith(".py"):
            stem = stem[:-3]
        func = site.location.rsplit(".", 1)[-1]
        spec = {
            "schema": "chameleon-sig",
            "version": 1,
            "name": f"sig-{stem}-{func}-{site.line}",
            "kind": site.kind,
            "srcType": src_type,
            "context": site.context,
            "ops": {op: [value.lo, bound(value.hi)]
                    for op, value in sorted(site.ops.items())
                    if value.hi > 0.0},
            "maxSize": [site.max_size.lo, bound(site.max_size.hi)],
            "size": [site.size.lo, bound(site.size.hi)],
            "initialCapacity": (
                None if site.capacity is None
                else [site.capacity.lo, bound(site.capacity.hi)]),
            "instances": [site.instances.lo, bound(site.instances.hi)],
            "sizeStable": site.size_stable,
            "escaped": site.escaped,
        }
        specs.append(spec)
    return specs
