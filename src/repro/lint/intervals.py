"""Interval-domain reasoning over rule conditions.

Every identifier the Fig. 4 language can mention is a non-negative
statistic (operation counts and their deviations, sizes, instance
counts, heap byte aggregates), so each starts in the base interval
``[0, +inf)``.  Conditions are evaluated in three-valued logic over
those intervals; conjunctions first *refine* the intervals (``maxSize
== 0 & maxSize > 10`` narrows ``maxSize`` to the empty interval), so:

* a condition that evaluates to :data:`Tri.FALSE` is **unsatisfiable**
  -- the rule can never fire on any profile;
* a condition that evaluates to :data:`Tri.TRUE` is **tautological**
  -- the rule fires on every type-matching profile, so its condition
  is dead weight (and it shadows every later rule on the type).

Beyond plain intervals the domain knows the schema's relational facts
(Table 1 / Table 3 invariants): ``avgMaxSize`` aliases ``maxSize``,
``maxSize <= maxMaxSize``, ``deadInstances <= instances``, and the heap
stats ordering ``core <= used <= live`` the sanitizer enforces.  A
comparison between two bare identifiers consults those facts when the
intervals alone cannot decide.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.rules.ast import (AndCond, BinaryOp, Comparison, Condition,
                             ConstRef, DataRef, Expr, NotCond, Number,
                             OpCount, OpVariance, OrCond)

__all__ = ["Tri", "Interval", "TOP", "NON_NEGATIVE", "EMPTY",
           "base_interval", "canonical_ref", "analyze_condition",
           "ConditionAnalysis", "point"]

_INF = math.inf


class Tri(enum.Enum):
    """Three-valued truth: holds always, never, or sometimes."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"


def _tri_and(a: Tri, b: Tri) -> Tri:
    if a is Tri.FALSE or b is Tri.FALSE:
        return Tri.FALSE
    if a is Tri.TRUE and b is Tri.TRUE:
        return Tri.TRUE
    return Tri.UNKNOWN


def _tri_or(a: Tri, b: Tri) -> Tri:
    if a is Tri.TRUE or b is Tri.TRUE:
        return Tri.TRUE
    if a is Tri.FALSE and b is Tri.FALSE:
        return Tri.FALSE
    return Tri.UNKNOWN


def _tri_not(a: Tri) -> Tri:
    if a is Tri.TRUE:
        return Tri.FALSE
    if a is Tri.FALSE:
        return Tri.TRUE
    return Tri.UNKNOWN


@dataclass(frozen=True)
class Interval:
    """A closed-ended real interval ``[lo, hi]`` (bounds may be infinite).

    ``lo > hi`` encodes the empty interval.
    """

    lo: float
    hi: float

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi and not math.isinf(self.lo)

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (the join of the domain)."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def clamp_lower(self, floor: float = 0.0) -> "Interval":
        """Clamp both bounds to at least ``floor`` (sizes and counts
        cannot go negative, whatever the raw arithmetic said)."""
        if self.is_empty:
            return self
        return Interval(max(self.lo, floor), max(self.hi, floor))

    def widen_hi(self) -> "Interval":
        """Drop the upper bound: the widening step of the loop/escape
        analysis.  Only ever loses precision, never soundness."""
        if self.is_empty:
            return self
        return Interval(self.lo, _INF)

    def contains(self, value: float, tolerance: float = 1e-9) -> bool:
        """Whether a concrete value falls inside the interval."""
        if self.is_empty:
            return False
        return self.lo - tolerance <= value <= self.hi + tolerance

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY
        products = [_safe_mul(a, b)
                    for a in (self.lo, self.hi)
                    for b in (other.lo, other.hi)]
        return Interval(min(products), max(products))

    def divided_by(self, other: "Interval") -> "Interval":
        """Interval division; a divisor straddling zero yields TOP."""
        if self.is_empty or other.is_empty:
            return EMPTY
        if other.lo <= 0.0 <= other.hi:
            return TOP
        quotients = [a / b
                     for a in (self.lo, self.hi)
                     for b in (other.lo, other.hi)]
        return Interval(min(quotients), max(quotients))

    def render(self) -> str:
        if self.is_empty:
            return "(empty)"
        lo = "-inf" if self.lo == -_INF else f"{self.lo:g}"
        hi = "+inf" if self.hi == _INF else f"{self.hi:g}"
        return f"[{lo}, {hi}]"


def _safe_mul(a: float, b: float) -> float:
    # IEEE 0 * inf is NaN; in interval arithmetic the limit is 0.
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


TOP = Interval(-_INF, _INF)
NON_NEGATIVE = Interval(0.0, _INF)
EMPTY = Interval(1.0, 0.0)


def point(value: float) -> Interval:
    """The degenerate interval ``[value, value]``."""
    return Interval(float(value), float(value))

_ALIASES = {"avgMaxSize": "maxSize"}
"""Identifiers that denote the same statistic."""

_ORDER_LE: Tuple[Tuple[str, str], ...] = (
    # Per-instance size statistics: an average never exceeds the maximum.
    ("size", "maxSize"),
    ("maxSize", "maxMaxSize"),
    ("size", "maxMaxSize"),
    # Aggregation only ever moves instances from allocated to dead.
    ("deadInstances", "instances"),
    # Table 3 stats ordering (enforced by the heap sanitizer):
    # core <= used <= live, per cycle and summed.
    ("totCore", "totUsed"), ("totUsed", "totLive"), ("totCore", "totLive"),
    ("maxCore", "maxUsed"), ("maxUsed", "maxLive"), ("maxCore", "maxLive"),
    # Potential is live minus used, so it is bounded by live.
    ("potential", "totLive"), ("maxPotential", "maxLive"),
)
"""Known ``x <= y`` facts between bare identifiers (canonical names)."""


def canonical_ref(expr: Expr) -> Optional[str]:
    """The canonical environment key for a bare identifier, else None."""
    if isinstance(expr, DataRef):
        return _ALIASES.get(expr.name, expr.name)
    if isinstance(expr, OpCount):
        return expr.op.dsl_name
    if isinstance(expr, OpVariance):
        return "@" + expr.op.dsl_name[1:]
    return None


def base_interval(key: str) -> Interval:
    """The a-priori interval of an identifier (every metric is a count,
    size or byte aggregate, hence non-negative)."""
    return NON_NEGATIVE


Env = Dict[str, Interval]


def _eval_expr(expr: Expr, env: Env,
               constants: Mapping[str, float]) -> Interval:
    if isinstance(expr, Number):
        return Interval(expr.value, expr.value)
    if isinstance(expr, ConstRef):
        value = constants.get(expr.name)
        if value is None:
            # Unknown constant: reported separately by the rule checker;
            # here it degrades to TOP so analysis can continue.
            return TOP
        return Interval(float(value), float(value))
    key = canonical_ref(expr)
    if key is not None:
        return env.get(key, base_interval(key))
    if isinstance(expr, BinaryOp):
        left = _eval_expr(expr.left, env, constants)
        right = _eval_expr(expr.right, env, constants)
        if expr.operator == "+":
            return left + right
        if expr.operator == "-":
            return left - right
        if expr.operator == "*":
            return left * right
        if expr.operator == "/":
            return left.divided_by(right)
    return TOP


def _compare_intervals(operator: str, left: Interval,
                       right: Interval) -> Tri:
    if left.is_empty or right.is_empty:
        # Vacuous: no admissible valuation reaches this comparison.
        return Tri.FALSE
    if operator == "<":
        if left.hi < right.lo:
            return Tri.TRUE
        if left.lo >= right.hi:
            return Tri.FALSE
        return Tri.UNKNOWN
    if operator == "<=":
        if left.hi <= right.lo:
            return Tri.TRUE
        if left.lo > right.hi:
            return Tri.FALSE
        return Tri.UNKNOWN
    if operator == ">":
        return _compare_intervals("<", right, left)
    if operator == ">=":
        return _compare_intervals("<=", right, left)
    if operator == "==":
        if left.is_point and right.is_point and left.lo == right.lo:
            return Tri.TRUE
        if left.hi < right.lo or right.hi < left.lo:
            return Tri.FALSE
        return Tri.UNKNOWN
    if operator == "!=":
        return _tri_not(_compare_intervals("==", left, right))
    return Tri.UNKNOWN


def _relational_fact(operator: str, left_key: str, right_key: str) -> Tri:
    """Decide a bare-identifier comparison from the schema's partial
    order, when intervals alone cannot."""
    if left_key == right_key:
        return {"==": Tri.TRUE, "!=": Tri.FALSE, "<": Tri.FALSE,
                "<=": Tri.TRUE, ">": Tri.FALSE, ">=": Tri.TRUE}[operator]
    le = (left_key, right_key) in _ORDER_LE
    ge = (right_key, left_key) in _ORDER_LE
    if le and operator == "<=":
        return Tri.TRUE
    if le and operator == ">":
        return Tri.FALSE
    if ge and operator == ">=":
        return Tri.TRUE
    if ge and operator == "<":
        return Tri.FALSE
    return Tri.UNKNOWN


def _compare(comparison: Comparison, env: Env,
             constants: Mapping[str, float]) -> Tri:
    left = _eval_expr(comparison.left, env, constants)
    right = _eval_expr(comparison.right, env, constants)
    verdict = _compare_intervals(comparison.operator, left, right)
    if verdict is Tri.UNKNOWN:
        left_key = canonical_ref(comparison.left)
        right_key = canonical_ref(comparison.right)
        if left_key is not None and right_key is not None:
            verdict = _relational_fact(comparison.operator, left_key,
                                       right_key)
    return verdict


# ----------------------------------------------------------------------
# Conjunction refinement
# ----------------------------------------------------------------------
def _flatten_conjuncts(condition: Condition) -> list:
    if isinstance(condition, AndCond):
        return (_flatten_conjuncts(condition.left)
                + _flatten_conjuncts(condition.right))
    return [condition]


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
            "==": "==", "!=": "!="}


def _bound_from(operator: str, value: Interval) -> Interval:
    """The interval implied for ``x`` by ``x OP value``."""
    if operator == "<":
        return Interval(-_INF, value.hi)   # closed approximation of <
    if operator == "<=":
        return Interval(-_INF, value.hi)
    if operator == ">":
        return Interval(value.lo, _INF)
    if operator == ">=":
        return Interval(value.lo, _INF)
    if operator == "==":
        return value
    return TOP  # != refines nothing representable


def _refine(conjuncts: list, env: Env,
            constants: Mapping[str, float]) -> Tuple[Env, bool]:
    """Narrow identifier intervals using var-vs-expression conjuncts.

    The closed approximation of strict bounds only ever keeps *more*
    valuations, so refinement-based unsatisfiability stays sound; the
    strict edge cases (``maxSize < 0``) fall out of the comparison
    evaluation that follows refinement.

    Returns the refined environment and whether refinement proved the
    conjunction unsatisfiable (some interval became empty).
    """
    env = dict(env)
    for _ in range(2):  # two passes reach a fixpoint for var-vs-const
        for conjunct in conjuncts:
            if not isinstance(conjunct, Comparison):
                continue
            for expr, operator, other in (
                    (conjunct.left, conjunct.operator, conjunct.right),
                    (conjunct.right, _FLIPPED[conjunct.operator],
                     conjunct.left)):
                key = canonical_ref(expr)
                if key is None:
                    continue
                value = _eval_expr(other, env, constants)
                if value.is_empty:
                    return env, True
                current = env.get(key, base_interval(key))
                refined = current.intersect(_bound_from(operator, value))
                if refined.is_empty:
                    env[key] = refined
                    return env, True
                env[key] = refined
    return env, False


def _analyze(condition: Condition, env: Env,
             constants: Mapping[str, float], refine: bool) -> Tri:
    """Three-valued evaluation.

    With ``refine`` the analysis narrows intervals from conjuncts first,
    which strengthens FALSE (unsatisfiability) verdicts but would make
    TRUE verdicts circular (every conjunct is "true" once assumed), so
    tautology detection runs with ``refine=False``.
    """
    if isinstance(condition, Comparison):
        return _compare(condition, env, constants)
    if isinstance(condition, OrCond):
        return _tri_or(_analyze(condition.left, env, constants, refine),
                       _analyze(condition.right, env, constants, refine))
    if isinstance(condition, NotCond):
        # Refinement assumptions do not negate soundly; re-analyze the
        # operand without them.
        return _tri_not(_analyze(condition.operand, env, constants,
                                 refine=False))
    if isinstance(condition, AndCond):
        conjuncts = _flatten_conjuncts(condition)
        scoped = env
        if refine:
            scoped, contradiction = _refine(conjuncts, env, constants)
            if contradiction:
                return Tri.FALSE
        verdict = Tri.TRUE
        for conjunct in conjuncts:
            verdict = _tri_and(verdict, _analyze(conjunct, scoped,
                                                 constants, refine))
            if verdict is Tri.FALSE:
                return Tri.FALSE
        return verdict
    return Tri.UNKNOWN


@dataclass(frozen=True)
class ConditionAnalysis:
    """Outcome of interval analysis over one rule condition."""

    verdict: Tri
    """TRUE = tautological, FALSE = unsatisfiable, UNKNOWN = contingent."""

    @property
    def satisfiable(self) -> bool:
        return self.verdict is not Tri.FALSE

    @property
    def tautological(self) -> bool:
        return self.verdict is Tri.TRUE


def analyze_condition(condition: Condition,
                      constants: Optional[Mapping[str, float]] = None,
                      env: Optional[Mapping[str, Interval]] = None,
                      ) -> ConditionAnalysis:
    """Analyze one condition under the interval domain.

    Args:
        condition: A parsed rule condition.
        constants: Bindings for the symbolic constants (unknown names
            degrade to TOP; the rule checker reports them separately).
        env: Optional interval overrides per canonical identifier
            (defaults to the non-negative base domain).
    """
    environment: Env = dict(env or {})
    bound = dict(constants or {})
    # Unsatisfiability runs with conjunct refinement (stronger FALSE);
    # tautology runs without it (a refined TRUE would be circular).
    if _analyze(condition, environment, bound, refine=True) is Tri.FALSE:
        return ConditionAnalysis(Tri.FALSE)
    if _analyze(condition, environment, bound, refine=False) is Tri.TRUE:
        return ConditionAnalysis(Tri.TRUE)
    return ConditionAnalysis(Tri.UNKNOWN)
