"""Layer 1: semantic checks over parsed Fig. 4 rules.

Four check families, each with stable finding ids:

* **Resolution** -- every ``ConstRef`` is bound in the constant table
  (``L1-unknown-constant``), every ``DataRef`` names a Table 1/Table 3
  metric (``L1-unknown-data``), every operation counter is a member of
  the :class:`~repro.profiler.counters.Op` vocabulary
  (``L1-unknown-op``; unreachable through the parser, which already
  rejects unknown spellings, but AST-built rules get the same check).
* **Actions** -- replacement targets exist in the
  :class:`~repro.collections.registry.ImplementationRegistry`
  (``L1-unknown-impl``), can back the srcType's ADT kind
  (``L1-kind-mismatch``), and capacity arguments only appear where the
  implementation honours them (``L1-capacity-ignored``).  The srcType
  itself must be a known source type, ADT-kind name or ``Collection``
  (``L1-unknown-src-type``).
* **Interval domain** -- conditions must be satisfiable
  (``L1-unsatisfiable``) and not tautological (``L1-tautology``); see
  :mod:`repro.lint.intervals`.
* **Pairwise overlap** -- two rules on overlapping type domains whose
  conditions are jointly satisfiable both fire on the same context; the
  engine's first-match priority makes the later one secondary.  An
  exact condition duplicate is ``L1-shadowed-duplicate``; distinct but
  overlapping conditions with *conflicting replacement targets* are
  ``L1-overlap-conflict``; benign overlaps (same target, or advice
  actions) are reported as notes (``L1-overlap``).

:func:`validate_rules` is the eager construction-time subset: only the
defects that would otherwise surface as a raw ``KeyError`` deep in
evaluation or apply (unknown constants, unregistered replacement
targets, unknown metrics) raise a :class:`RuleValidationError`.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.collections.base import CollectionKind
from repro.collections.registry import (ImplementationRegistry,
                                        default_registry)
from repro.lint.findings import Finding, RuleValidationError, Severity, Span
from repro.lint.intervals import Tri, analyze_condition
from repro.rules.ast import (ActionKind, AndCond, BinaryOp, Comparison,
                             Condition, ConstRef, DataRef, Expr, NotCond,
                             OpCount, OpVariance, OrCond, Rule)
from repro.rules.builtin import RuleSpec
from repro.rules.parser import DATA_NAMES, ParseError, parse_rule
from repro.rules.suggestions import RuleCategory

__all__ = ["check_rules", "validate_rules", "overlap_report",
           "load_rules_file", "CAPACITY_IGNORING_IMPLS"]

_KIND_NAMES = {"List": CollectionKind.LIST, "Set": CollectionKind.SET,
               "Map": CollectionKind.MAP}

CAPACITY_IGNORING_IMPLS = frozenset({
    "LinkedList", "SingletonList", "EmptyList",
    "LazyArrayList", "LazySet", "LazyMap",
})
"""Implementations whose factories accept but never honour an initial
capacity (linked/lazy/fixed-shape structures) -- a capacity argument on a
replacement with one of these is dead weight in the rule."""

_FATAL_IDS = frozenset({"L1-unknown-constant", "L1-unknown-impl",
                        "L1-unknown-data", "L1-unknown-op"})
"""Finding ids that eager engine validation escalates to an exception."""


def _spec_span(spec: RuleSpec) -> Span:
    if spec.origin is not None:
        return Span(file=spec.origin[0], line=spec.origin[1])
    return Span(file="<rules>", line=0)


def _walk_exprs(node) -> Iterable[Expr]:
    """Every expression node reachable from a condition or expression."""
    if isinstance(node, (AndCond, OrCond)):
        yield from _walk_exprs(node.left)
        yield from _walk_exprs(node.right)
    elif isinstance(node, NotCond):
        yield from _walk_exprs(node.operand)
    elif isinstance(node, Comparison):
        yield from _walk_exprs(node.left)
        yield from _walk_exprs(node.right)
    elif isinstance(node, BinaryOp):
        yield node
        yield from _walk_exprs(node.left)
        yield from _walk_exprs(node.right)
    elif isinstance(node, Expr):
        yield node


def _type_domain(src_type: str,
                 registry: ImplementationRegistry) -> Tuple[Set[str], bool]:
    """``(source types covered, src_type is known)`` for a rule's type."""
    if src_type == "Collection":
        return set(registry.known_source_types()), True
    kind = _KIND_NAMES.get(src_type)
    if kind is not None:
        return {name for name in registry.known_source_types()
                if registry.kind_of(name) is kind}, True
    if src_type in registry.known_source_types():
        return {src_type}, True
    return {src_type}, False


class _RuleChecker:
    def __init__(self, specs: Sequence[RuleSpec],
                 constants: Mapping[str, float],
                 registry: ImplementationRegistry) -> None:
        self.specs = specs
        self.constants = constants
        self.registry = registry
        self.findings: List[Finding] = []

    def report(self, finding_id: str, severity: Severity, spec: RuleSpec,
               message: str, fix_hint: Optional[str] = None) -> None:
        self.findings.append(Finding(
            id=finding_id, severity=severity,
            message=f"rule {spec.name!r}: {message}",
            span=_spec_span(spec), fix_hint=fix_hint,
            rule_name=spec.name))

    # ------------------------------------------------------------------
    # (a) reference resolution
    # ------------------------------------------------------------------
    def check_references(self, spec: RuleSpec) -> None:
        from repro.profiler.counters import Op

        for expr in _walk_exprs(spec.rule.condition):
            if isinstance(expr, ConstRef):
                if expr.name not in self.constants:
                    known = ", ".join(sorted(self.constants))
                    self.report(
                        "L1-unknown-constant", Severity.ERROR, spec,
                        f"constant {expr.name!r} is not bound",
                        fix_hint=f"bind it at engine construction or use "
                                 f"one of: {known}")
            elif isinstance(expr, DataRef):
                if expr.name not in DATA_NAMES:
                    self.report(
                        "L1-unknown-data", Severity.ERROR, spec,
                        f"data identifier {expr.name!r} is not in the "
                        f"Table 1/Table 3 metric schema")
            elif isinstance(expr, (OpCount, OpVariance)):
                if not isinstance(expr.op, Op):
                    self.report(
                        "L1-unknown-op", Severity.ERROR, spec,
                        f"operation {expr.op!r} is not in the profiler's "
                        f"vocabulary")

    # ------------------------------------------------------------------
    # (b) action validation
    # ------------------------------------------------------------------
    def check_action(self, spec: RuleSpec) -> None:
        rule = spec.rule
        domain, known_type = _type_domain(rule.src_type, self.registry)
        if not known_type:
            self.report(
                "L1-unknown-src-type", Severity.ERROR, spec,
                f"source type {rule.src_type!r} is not registered",
                fix_hint="known: Collection, List, Set, Map, "
                         + ", ".join(self.registry.known_source_types()))
        if rule.action.kind is not ActionKind.REPLACE:
            return
        impl = rule.action.impl_name
        backed_kinds = [kind for kind in CollectionKind
                        if self.registry.supports(impl, kind)]
        if not backed_kinds:
            names = sorted({name for kind in CollectionKind
                            for name in self.registry.names_for_kind(kind)})
            self.report(
                "L1-unknown-impl", Severity.ERROR, spec,
                f"replacement target {impl!r} is not a registered "
                f"implementation",
                fix_hint="registered: " + ", ".join(names))
            return
        if known_type:
            # Replacement changes the backing implementation, not the ADT:
            # the target must support() the kind of every source type the
            # rule can match.
            src_kinds = {self.registry.kind_of(name) for name in domain
                         if name in set(self.registry.known_source_types())}
            uncovered = sorted(kind.value for kind in src_kinds
                               if kind not in backed_kinds)
            if src_kinds and uncovered:
                self.report(
                    "L1-kind-mismatch", Severity.ERROR, spec,
                    f"replacement target {impl!r} cannot back "
                    f"{'/'.join(uncovered)} (it backs "
                    f"{'/'.join(k.value for k in backed_kinds)}); the rule "
                    f"matches {rule.src_type!r} contexts")
        if (rule.action.capacity is not None
                and impl in CAPACITY_IGNORING_IMPLS):
            self.report(
                "L1-capacity-ignored", Severity.WARNING, spec,
                f"{impl!r} ignores initial-capacity arguments; "
                f"({rule.action.capacity}) has no effect",
                fix_hint="drop the capacity argument")

    # ------------------------------------------------------------------
    # (c) interval-domain condition analysis
    # ------------------------------------------------------------------
    def check_condition(self, spec: RuleSpec) -> None:
        analysis = analyze_condition(spec.rule.condition, self.constants)
        if analysis.verdict is Tri.FALSE:
            self.report(
                "L1-unsatisfiable", Severity.ERROR, spec,
                "condition is unsatisfiable under the interval domain "
                "(every metric is non-negative; see DESIGN.md 3.3) -- "
                "the rule can never fire")
        elif analysis.verdict is Tri.TRUE:
            self.report(
                "L1-tautology", Severity.WARNING, spec,
                "condition holds for every profile; the rule fires "
                "unconditionally on matching types and shadows every "
                "later rule for them")

    # ------------------------------------------------------------------
    # (d) pairwise overlap / shadowing
    # ------------------------------------------------------------------
    def check_overlaps(self) -> None:
        for later_index, later in enumerate(self.specs):
            for earlier in self.specs[:later_index]:
                self._check_pair(earlier, later)

    def _joint_satisfiable(self, first: Rule, second: Rule) -> bool:
        joint = AndCond(first.condition, second.condition)
        return analyze_condition(joint, self.constants).satisfiable

    def _check_pair(self, earlier: RuleSpec, later: RuleSpec) -> None:
        earlier_domain, _ = _type_domain(earlier.rule.src_type,
                                         self.registry)
        later_domain, _ = _type_domain(later.rule.src_type, self.registry)
        if not (earlier_domain & later_domain):
            return
        if not self._joint_satisfiable(earlier.rule, later.rule):
            return
        earlier_action = earlier.rule.action
        later_action = later.rule.action
        conflicting = (
            earlier_action.kind is ActionKind.REPLACE
            and later_action.kind is ActionKind.REPLACE
            and earlier_action.impl_name != later_action.impl_name)
        if (earlier.rule.condition == later.rule.condition
                and earlier.rule.src_type == later.rule.src_type):
            self.report(
                "L1-shadowed-duplicate",
                Severity.ERROR if conflicting else Severity.WARNING,
                later,
                f"duplicate of earlier rule {earlier.name!r} "
                f"(same srcType and condition); first-match priority "
                f"means it never becomes the primary suggestion"
                + (f" -- and the targets conflict "
                   f"({earlier_action.impl_name!r} vs "
                   f"{later_action.impl_name!r})" if conflicting else ""),
                fix_hint="remove one of the two rules")
            return
        if conflicting:
            self.report(
                "L1-overlap-conflict", Severity.WARNING, later,
                f"overlaps earlier rule {earlier.name!r} on "
                f"{sorted(earlier_domain & later_domain)} with a "
                f"conflicting replacement target "
                f"({earlier_action.impl_name!r} wins by priority over "
                f"{later_action.impl_name!r})",
                fix_hint="tighten one condition or reorder deliberately")
        else:
            self.report(
                "L1-overlap", Severity.NOTE, later,
                f"may fire together with earlier rule {earlier.name!r} "
                f"on {sorted(earlier_domain & later_domain)}; "
                f"{later.name!r} becomes a secondary suggestion there")

    # ------------------------------------------------------------------
    def run(self) -> List[Finding]:
        for spec in self.specs:
            self.check_references(spec)
            self.check_action(spec)
            self.check_condition(spec)
        self.check_overlaps()
        return self.findings


def check_rules(specs: Sequence[RuleSpec],
                constants: Optional[Mapping[str, float]] = None,
                registry: Optional[ImplementationRegistry] = None,
                ) -> List[Finding]:
    """Run every Layer 1 check over ``specs``; returns the findings.

    ``constants`` defaults to :data:`DEFAULT_CONSTANTS`; ``registry`` to
    the process-wide implementation registry.
    """
    from repro.rules.builtin import DEFAULT_CONSTANTS

    merged = dict(DEFAULT_CONSTANTS)
    if constants:
        merged.update(constants)
    return _RuleChecker(list(specs), merged,
                        registry or default_registry()).run()


def validate_rules(specs: Sequence[RuleSpec],
                   constants: Optional[Mapping[str, float]] = None,
                   registry: Optional[ImplementationRegistry] = None,
                   ) -> None:
    """Eager construction-time validation (the engine's entry point).

    Raises :class:`RuleValidationError` for the defect classes that
    would otherwise surface as raw ``KeyError``s mid-run: unknown
    constants, unknown metrics/operations, unregistered replacement
    targets.  Warnings and overlap notes never block construction --
    ``check_rules`` reports them through the lint CLI instead.
    """
    fatal = [finding for finding in check_rules(specs, constants, registry)
             if finding.id in _FATAL_IDS]
    if fatal:
        raise RuleValidationError(fatal)


def overlap_report(specs: Sequence[RuleSpec],
                   constants: Optional[Mapping[str, float]] = None,
                   registry: Optional[ImplementationRegistry] = None,
                   ) -> str:
    """Human-readable pairwise overlap/shadowing report.

    Line numbers are deliberately omitted so the report is stable under
    unrelated edits to the rule definitions' source file -- the golden
    copy under ``tests/lint/`` pins the builtin Table 2 set's hygiene.
    """
    findings = [finding
                for finding in check_rules(specs, constants, registry)
                if finding.id.startswith("L1-overlap")
                or finding.id == "L1-shadowed-duplicate"]
    lines = [f"pairwise overlap report ({len(list(specs))} rules, "
             f"{len(findings)} overlapping pair(s))"]
    for finding in findings:
        lines.append(f"  [{finding.id}] {finding.message}")
    return "\n".join(lines)


def load_rules_file(path: str) -> List[RuleSpec]:
    """Parse a rules file: one Fig. 4 rule per line.

    Blank lines and ``//`` comments are skipped.  Each rule becomes a
    :class:`RuleSpec` named ``<stem>:<line>`` with its origin set to the
    file/line, so findings carry real spans.  A syntax error is rethrown
    as :class:`ParseError` with the file and line prepended.
    """
    import os

    specs: List[RuleSpec] = []
    stem = os.path.splitext(os.path.basename(path))[0]
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("//"):
                continue
            try:
                rule = parse_rule(line)
            except ParseError as exc:
                raise ParseError(f"{path}:{lineno}: {exc.args[0]}",
                                 exc.token, source=exc.source) from None
            specs.append(RuleSpec(
                name=f"{stem}:{lineno}", rule=rule,
                category=RuleCategory.SPACE_TIME,
                message=f"rule from {path}:{lineno}",
                origin=(path, lineno)))
    return specs
