"""SARIF 2.1.0 emission and structural validation.

:func:`emit_sarif` renders findings as a SARIF 2.1.0 log (the OASIS
static-analysis interchange format GitHub code scanning ingests).
:func:`validate_sarif` checks a document against the 2.1.0 schema's
required core -- dependency-free, so CI can validate its own artifact;
the test suite additionally cross-checks with ``jsonschema`` when that
package is installed.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.findings import Finding, Severity

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "emit_sarif",
           "validate_sarif", "SARIF_CORE_SCHEMA"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning",
           Severity.NOTE: "note"}

_RULE_DESCRIPTIONS: Dict[str, str] = {
    "L1-unknown-constant": "Rule references a constant that is not bound "
                           "in the engine's constant table.",
    "L1-unknown-data": "Rule references an identifier outside the "
                       "Table 1/Table 3 metric schema.",
    "L1-unknown-op": "Rule references an operation outside the profiler "
                     "vocabulary.",
    "L1-unknown-impl": "Replacement target is not a registered "
                       "implementation.",
    "L1-kind-mismatch": "Replacement target cannot back the ADT kind of "
                        "the rule's source type.",
    "L1-unknown-src-type": "Rule source type is not registered.",
    "L1-capacity-ignored": "Capacity argument on an implementation that "
                           "ignores initial capacities.",
    "L1-unsatisfiable": "Rule condition is unsatisfiable under the "
                        "interval domain.",
    "L1-tautology": "Rule condition holds for every profile.",
    "L1-shadowed-duplicate": "Rule duplicates an earlier rule and can "
                             "never become the primary suggestion.",
    "L1-overlap-conflict": "Rules overlap with conflicting replacement "
                           "targets.",
    "L1-overlap": "Rules may fire together on the same context.",
    "L2-contains-in-loop": "Looped contains() on a list allocation "
                           "context.",
    "L2-indexed-get-in-loop": "Looped indexed get() on a LinkedList "
                              "allocation context.",
    "L2-growth-no-capacity": "Looped growth on a collection allocated "
                             "without an initial capacity.",
    "L2-never-mutated": "Collection is never mutated after construction.",
    "L2-never-used": "Collection is allocated but never operated on.",
    "L2-temporary-iterated": "Temporary collection is returned and "
                             "immediately iterated.",
    "L2I-interval-must": "Inferred statistic intervals prove a rule "
                         "fires for every run reaching the site.",
    "L2-syntax-error": "Source file could not be parsed.",
    "L3-drift-agreement": "Static prediction confirmed by the dynamic "
                          "profile.",
    "L3-static-only": "Static prediction with no dynamic confirmation.",
    "L3-dynamic-only": "Dynamic suggestion the static pass could not "
                       "predict.",
    "L3-refuted": "Coarse static prediction the interval analysis "
                  "disproves.",
    "L3-coverage-gap": "Interval-proven rule at a context the dynamic "
                       "profile never reached.",
    "L3-static-gated": "Interval-proven rule at a profiled context that "
                       "a dynamic gate (space or stability) blocked.",
    "L3-unsubstantiated": "Static prediction whose inferred intervals "
                          "straddle the rule threshold.",
    "L3-proposal-confirmed": "Static replacement proposal matching the "
                             "dynamic decision.",
    "L3-proposal-conflict": "Static replacement proposal contradicting "
                            "the dynamic decision.",
    "L3-proposal-new": "Static replacement proposal at a context with "
                       "no dynamic decision.",
}


def emit_sarif(findings: Sequence[Finding],
               tool_version: str = "0.1.0") -> str:
    """Render findings as a SARIF 2.1.0 JSON document."""
    rule_ids = sorted({finding.id for finding in findings}
                      | set(_RULE_DESCRIPTIONS))
    rules = [{
        "id": rule_id,
        "shortDescription": {
            "text": _RULE_DESCRIPTIONS.get(rule_id, rule_id)},
    } for rule_id in rule_ids]
    rule_index = {rule_id: index for index, rule_id in enumerate(rule_ids)}

    results: List[dict] = []
    for finding in findings:
        message = finding.message
        if finding.fix_hint:
            message += f" (hint: {finding.fix_hint})"
        region = {"startLine": max(1, finding.span.line)}
        if finding.span.column is not None:
            region["startColumn"] = finding.span.column
        if finding.span.end_line is not None:
            region["endLine"] = finding.span.end_line
        result = {
            "ruleId": finding.id,
            "ruleIndex": rule_index[finding.id],
            "level": _LEVELS[finding.severity],
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.span.file},
                    "region": region,
                },
            }],
        }
        if finding.related:
            result["relatedLocations"] = [{
                "physicalLocation": {
                    "artifactLocation": {"uri": step.file},
                    "region": {"startLine": max(1, step.line)},
                },
                "message": {"text": step.message},
            } for step in finding.related]
        properties = {}
        if finding.context:
            properties["context"] = finding.context
        if finding.predicted_rule:
            properties["predictedRule"] = finding.predicted_rule
        if finding.rule_name:
            properties["dslRule"] = finding.rule_name
        if properties:
            result["properties"] = properties
        results.append(result)

    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "chameleon-lint",
                    "informationUri":
                        "https://github.com/chameleon-repro",
                    "version": tool_version,
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(document, indent=2)


def validate_sarif(document) -> List[str]:
    """Structural validation against SARIF 2.1.0's required core.

    Accepts a parsed document (dict) or a JSON string; returns the list
    of violations (empty = valid).  Checks the schema's required
    properties and enumerations for the object kinds this tool emits:
    ``sarifLog`` (version, runs), ``run`` (tool), ``toolComponent``
    (name), ``reportingDescriptor`` (id), ``result`` (message), result
    ``level`` enumeration, and location/region shapes.
    """
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except ValueError as exc:
            return [f"not valid JSON: {exc}"]
    problems: List[str] = []

    def require(holder, key, kind, where):
        value = holder.get(key)
        if value is None:
            problems.append(f"{where}: required property {key!r} missing")
            return None
        if not isinstance(value, kind):
            problems.append(f"{where}.{key}: expected "
                            f"{kind.__name__}, got {type(value).__name__}")
            return None
        return value

    if not isinstance(document, dict):
        return ["document root must be an object"]
    version = require(document, "version", str, "sarifLog")
    if version is not None and version != SARIF_VERSION:
        problems.append(f"sarifLog.version: must be {SARIF_VERSION!r}, "
                        f"got {version!r}")
    runs = require(document, "runs", list, "sarifLog")
    for run_index, run in enumerate(runs or []):
        where = f"runs[{run_index}]"
        if not isinstance(run, dict):
            problems.append(f"{where}: must be an object")
            continue
        tool = require(run, "tool", dict, where)
        if tool is not None:
            driver = require(tool, "driver", dict, f"{where}.tool")
            if driver is not None:
                require(driver, "name", str, f"{where}.tool.driver")
                for rule_index, rule in enumerate(
                        driver.get("rules", [])):
                    require(rule, "id", str,
                            f"{where}.tool.driver.rules[{rule_index}]")
        for result_index, result in enumerate(run.get("results", [])):
            rwhere = f"{where}.results[{result_index}]"
            if not isinstance(result, dict):
                problems.append(f"{rwhere}: must be an object")
                continue
            message = require(result, "message", dict, rwhere)
            if message is not None and not (
                    "text" in message or "id" in message):
                problems.append(f"{rwhere}.message: needs 'text' or 'id'")
            level = result.get("level")
            if level is not None and level not in (
                    "none", "note", "warning", "error"):
                problems.append(f"{rwhere}.level: invalid level {level!r}")
            def check_location(location, lwhere):
                physical = location.get("physicalLocation")
                if physical is None:
                    return
                artifact = physical.get("artifactLocation")
                if artifact is not None:
                    require(artifact, "uri", str,
                            f"{lwhere}.physicalLocation.artifactLocation")
                region = physical.get("region")
                if region is not None:
                    start = region.get("startLine")
                    if start is not None and (
                            not isinstance(start, int) or start < 1):
                        problems.append(
                            f"{lwhere}.physicalLocation.region.startLine: "
                            f"must be an integer >= 1")

            for loc_index, location in enumerate(
                    result.get("locations", [])):
                check_location(location,
                               f"{rwhere}.locations[{loc_index}]")
            for loc_index, location in enumerate(
                    result.get("relatedLocations", [])):
                lwhere = f"{rwhere}.relatedLocations[{loc_index}]"
                if not isinstance(location, dict):
                    problems.append(f"{lwhere}: must be an object")
                    continue
                message = location.get("message")
                if message is not None and not (
                        isinstance(message, dict)
                        and ("text" in message or "id" in message)):
                    problems.append(
                        f"{lwhere}.message: needs 'text' or 'id'")
                check_location(location, lwhere)
    return problems


SARIF_CORE_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "SARIF 2.1.0 required core (subset)",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "level": {"enum": ["none", "note",
                                                   "warning", "error"]},
                                "message": {"type": "object"},
                                "locations": {"type": "array"},
                                "relatedLocations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation":
                                                {"type": "object"},
                                            "message":
                                                {"type": "object"},
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}
"""The SARIF 2.1.0 schema's required-property core as a JSON Schema
document, for cross-validation with ``jsonschema`` where installed."""
