"""Layer 2: AST-based usage linter over workload/client sources.

The dynamic half of the tool observes what collections *did*; this pass
derives what they *must* do from the source alone.  It walks Python
sources for Chameleon wrapper allocation sites (``ChameleonList`` /
``ChameleonSet`` / ``ChameleonMap`` constructions, directly or through a
local factory function), binds them to variables, and scans the
enclosing scopes for the operations performed on each binding, tracking
loop nesting.  The resulting static op-mix facts become:

* findings (``L2-*``), reported next to the allocation site, and
* :class:`StaticPrediction` records -- "the dynamic profiler should fire
  builtin rule R at allocation context C" -- phrased in the suggestion
  format (``srcType:module.function``) so :mod:`repro.lint.drift` can
  diff them against a real profiling session.

The analysis is deliberately conservative: a binding that escapes its
scope (returned, stored into a structure, passed to a call) keeps its
loop-op facts but is exempt from the never-used/never-mutated checks,
and an allocation reached only through dynamic dispatch (``factory(vm)``
where ``factory`` is a runtime value) is not tracked at all -- those
show up as ``L3-dynamic-only`` drift entries instead of false positives.

Waivers: a ``# lint: ignore[L2-growth-no-capacity]`` comment (ids
comma-separated, ``*`` for all) on the allocation line suppresses
matching findings for that line.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding, Severity, Span

__all__ = ["StaticPrediction", "AllocationSite", "lint_source",
           "lint_source_detailed", "lint_paths", "lint_paths_detailed",
           "WRAPPER_KINDS"]

WRAPPER_KINDS: Dict[str, Tuple[str, str]] = {
    "ChameleonList": ("list", "ArrayList"),
    "ChameleonSet": ("set", "HashSet"),
    "ChameleonMap": ("map", "HashMap"),
}
"""Wrapper class name -> (ADT kind, default srcType)."""

_GROWTH_OPS = frozenset({"add", "add_at", "add_all", "add_all_at",
                         "put", "put_all"})
_MUTATING_OPS = _GROWTH_OPS | {"set_at", "remove_at", "remove_first",
                               "remove_value", "remove_key", "clear",
                               "swap_to"}
_NEUTRAL_METHODS = frozenset({"pin", "unpin", "snapshot", "snapshot_items",
                              "footprint", "adt_footprint",
                              "adt_internal_ids", "adt_element_count"})
_NEUTRAL_ATTRS = frozenset({"heap_obj", "impl", "src_type", "context_id",
                            "object_info", "vm", "registry"})

_WAIVER_RE = re.compile(r"#\s*lint:\s*ignore\[([^\]]*)\]")


@dataclass(frozen=True)
class StaticPrediction:
    """One statically derived expectation about the dynamic profile."""

    location: str
    """Allocation context location (``module.function``), matching the
    innermost :class:`~repro.runtime.context.ContextFrame` the profiler
    would capture for this site."""
    src_types: FrozenSet[str]
    """Candidate srcTypes (several when the source picks one
    conditionally, e.g. ``"ArrayList" if fixed else "LinkedList"``)."""
    predicted_rule: str
    """Name of the builtin rule expected to fire here."""
    finding_id: str
    """The ``L2-*`` fact the prediction is derived from."""
    file: str
    line: int

    def render(self) -> str:
        types = "/".join(sorted(self.src_types))
        return f"{types}:{self.location} -> {self.predicted_rule}"


@dataclass
class AllocationSite:
    """One statically visible wrapper allocation bound to a variable."""

    variable: str
    kind: str
    src_types: FrozenSet[str]
    capacity_set: bool
    location: str
    file: str
    line: int
    escapes: bool = False
    ops: List[Tuple[str, bool]] = field(default_factory=list)
    """``(method, inside_loop)`` for every recorded operation."""

    def op_names(self) -> Set[str]:
        return {name for name, _ in self.ops}

    def loop_ops(self) -> Set[str]:
        return {name for name, in_loop in self.ops if in_loop}

    @property
    def context(self) -> str:
        types = "/".join(sorted(self.src_types))
        return f"{types}:{self.location}:{self.line}"


def _module_name(path: str) -> str:
    """Dotted module name for ``path``, as the profiler would render it.

    The package root is taken to be the last ``repro`` path component
    (the layout this repository uses); otherwise the component after the
    last ``src``; otherwise the bare stem.
    """
    parts = os.path.normpath(path).split(os.sep)
    parts[-1] = os.path.splitext(parts[-1])[0]
    if parts[-1] == "__init__" and len(parts) > 1:
        parts = parts[:-1]
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
    elif "src" in parts:
        start = len(parts) - parts[::-1].index("src")
    else:
        start = len(parts) - 1
    return ".".join(parts[start:]) or parts[-1]


def _literal_src_types(node: Optional[ast.expr],
                       default: str) -> FrozenSet[str]:
    """Candidate srcType strings of a ``src_type=`` keyword value."""
    if node is None:
        return frozenset({default})
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return frozenset({node.value})
    if isinstance(node, ast.IfExp):
        return (_literal_src_types(node.body, default)
                | _literal_src_types(node.orelse, default))
    return frozenset({default})


class _ConstScope:
    """Constant bindings visible at one point of the walk.

    Tracks, in document order, the simple assignments a capacity
    expression can reach through: module-level named constants, class
    attribute constants (class body or ``self.X = ...`` in methods), and
    function-local assignments plus keyword parameter defaults.  Only
    the *value expression nodes* are stored; resolution recurses through
    them on demand, so ``cap = SIZE if fixed else None`` chains work.
    """

    def __init__(self) -> None:
        self.module: Dict[str, ast.expr] = {}
        self.classes: Dict[str, Dict[str, ast.expr]] = {}
        self._class_stack: List[str] = []
        self._local_stack: List[Dict[str, ast.expr]] = []

    # -- walk hooks ----------------------------------------------------
    def enter_class(self, name: str) -> None:
        self._class_stack.append(name)
        self.classes.setdefault(name, {})

    def exit_class(self) -> None:
        self._class_stack.pop()

    def enter_function(self, node: ast.FunctionDef) -> None:
        locals_: Dict[str, ast.expr] = {}
        args = node.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional)
                                           - len(args.defaults):],
                                args.defaults):
            locals_[arg.arg] = default
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                locals_[arg.arg] = default
        self._local_stack.append(locals_)

    def exit_function(self) -> None:
        self._local_stack.pop()

    def record_assign(self, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        if isinstance(target, ast.Name):
            if self._local_stack:
                self._local_stack[-1][target.id] = node.value
            elif self._class_stack:
                self.classes[self._class_stack[-1]][target.id] = node.value
            else:
                self.module[target.id] = node.value
        elif (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self" and self._class_stack):
            attrs = self.classes[self._class_stack[-1]]
            # Two *different* assignments make the attribute
            # non-constant; recording an identical node twice (the tree
            # is walked once per pass) is a no-op.
            if target.attr not in attrs:
                attrs[target.attr] = node.value
            else:
                prior = attrs[target.attr]
                if prior is not None and ast.dump(prior) != ast.dump(
                        node.value):
                    attrs[target.attr] = None  # type: ignore[assignment]

    # -- resolution ----------------------------------------------------
    def lookup_name(self, name: str) -> Optional[ast.expr]:
        if self._local_stack and name in self._local_stack[-1]:
            return self._local_stack[-1][name]
        return self.module.get(name)

    def lookup_self_attr(self, attr: str) -> Optional[ast.expr]:
        if not self._class_stack:
            return None
        return self.classes[self._class_stack[-1]].get(attr)


def _capacity_is_set(node: Optional[ast.expr],
                     consts: Optional[_ConstScope] = None,
                     depth: int = 0) -> bool:
    """Whether ``initial_capacity=`` reliably provides a capacity.

    A conditional that can evaluate to ``None`` (the manual-fix idiom
    ``cap if fixed else None``) counts as *not* set: the unfixed path is
    the one the profiler observes.  Named constants (module/class level),
    local assignments and keyword parameter defaults are resolved
    through simple constant propagation; an unresolvable expression is
    conservatively assumed to provide a capacity (the old behaviour).
    """
    if node is None:
        return False
    if depth > 8:
        return True
    if isinstance(node, ast.Constant):
        return node.value is not None
    if isinstance(node, ast.IfExp):
        return (_capacity_is_set(node.body, consts, depth + 1)
                and _capacity_is_set(node.orelse, consts, depth + 1))
    if consts is not None:
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Name):
            value = consts.lookup_name(node.id)
        elif (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            value = consts.lookup_self_attr(node.attr)
        else:
            return True
        if value is not None:
            return _capacity_is_set(value, consts, depth + 1)
    return True


@dataclass(frozen=True)
class _AllocSpec:
    kind: str
    src_types: FrozenSet[str]
    capacity_set: bool


def _spec_from_call(node: ast.Call,
                    consts: Optional[_ConstScope] = None,
                    ) -> Optional[_AllocSpec]:
    """The allocation spec of a direct wrapper construction, if any."""
    callee = node.func
    if not (isinstance(callee, ast.Name) and callee.id in WRAPPER_KINDS):
        return None
    kind, default = WRAPPER_KINDS[callee.id]
    src_node = capacity_node = None
    for keyword in node.keywords:
        if keyword.arg == "src_type":
            src_node = keyword.value
        elif keyword.arg == "initial_capacity":
            capacity_node = keyword.value
    return _AllocSpec(kind, _literal_src_types(src_node, default),
                      _capacity_is_set(capacity_node, consts))


def _unwrap_pin(node: ast.expr) -> ast.expr:
    """See through ``.pin()`` chains: they return the wrapper itself."""
    while (isinstance(node, ast.Call)
           and isinstance(node.func, ast.Attribute)
           and node.func.attr == "pin"):
        node = node.func.value
    return node


class _FactoryCollector(ast.NodeVisitor):
    """First pass: functions whose return value is a wrapper allocation.

    Calls to these by bare name or as ``self.<name>(...)`` are treated
    as allocations with the summarised spec (a one-level interprocedural
    summary -- enough for the factory-method idiom the paper highlights
    for TVLA's seven HashMap contexts).
    """

    def __init__(self) -> None:
        self.factories: Dict[str, _AllocSpec] = {}
        self._stack: List[str] = []
        self.consts = _ConstScope()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.consts.enter_class(node.name)
        self.generic_visit(node)
        self.consts.exit_class()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(node.name)
        self.consts.enter_function(node)
        self.generic_visit(node)
        self.consts.exit_function()
        self._stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:
        self.consts.record_assign(node)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and self._stack:
            value = _unwrap_pin(node.value)
            if isinstance(value, ast.Call):
                spec = _spec_from_call(value, self.consts)
                if spec is not None:
                    self.factories[self._stack[-1]] = spec
        self.generic_visit(node)


class _Scope:
    """One function scope's variable -> allocation-site bindings."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.bindings: Dict[str, Optional[AllocationSite]] = {}

    def lookup(self, name: str) -> Optional[AllocationSite]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None

    def bind(self, name: str, site: Optional[AllocationSite]) -> None:
        self.bindings[name] = site


class _UsageWalker(ast.NodeVisitor):
    """Second pass: bind allocations, scan operations, record facts."""

    def __init__(self, module: str, path: str,
                 factories: Dict[str, _AllocSpec],
                 consts: Optional[_ConstScope] = None) -> None:
        self.module = module
        self.path = path
        self.factories = factories
        self.consts = consts if consts is not None else _ConstScope()
        self.sites: List[AllocationSite] = []
        self.temporaries: List[Tuple[_AllocSpec, int]] = []
        self.scope = _Scope()
        self.function_stack: List[str] = ["<module>"]
        self.loop_depth = 0

    # -- helpers -------------------------------------------------------
    @property
    def location(self) -> str:
        return f"{self.module}.{self.function_stack[-1]}"

    def _resolve_spec(self, node: ast.expr) -> Optional[_AllocSpec]:
        """Allocation spec of an expression, through pin/factory sugar."""
        node = _unwrap_pin(node)
        if not isinstance(node, ast.Call):
            return None
        spec = _spec_from_call(node, self.consts)
        if spec is not None:
            return spec
        callee = node.func
        if isinstance(callee, ast.Name):
            return self.factories.get(callee.id)
        if (isinstance(callee, ast.Attribute)
                and isinstance(callee.value, ast.Name)
                and callee.value.id == "self"):
            return self.factories.get(callee.attr)
        return None

    def _visit_all(self, nodes: Sequence[ast.AST]) -> None:
        for node in nodes:
            self.visit(node)

    # -- scopes --------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.consts.enter_class(node.name)
        self.generic_visit(node)
        self.consts.exit_class()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.function_stack.append(node.name)
        self.scope = _Scope(parent=self.scope)
        self.consts.enter_function(node)
        outer_depth, self.loop_depth = self.loop_depth, 0
        self._visit_all(node.body)
        self.loop_depth = outer_depth
        self.consts.exit_function()
        self.scope = self.scope.parent
        self.function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- binding -------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.consts.record_assign(node)
        spec = self._resolve_spec(node.value)
        target = node.targets[0] if len(node.targets) == 1 else None
        if spec is not None and isinstance(target, ast.Name):
            site = AllocationSite(
                variable=target.id, kind=spec.kind,
                src_types=spec.src_types, capacity_set=spec.capacity_set,
                location=self.location, file=self.path, line=node.lineno)
            self.sites.append(site)
            self.scope.bind(target.id, site)
            value = _unwrap_pin(node.value)
            if isinstance(value, ast.Call):
                self._visit_all(value.args)
                self._visit_all([kw.value for kw in value.keywords])
            return
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                # Rebinding kills the old association so later operations
                # on the name are not misattributed to the allocation.
                if self.scope.lookup(tgt.id) is not None:
                    self.scope.bind(tgt.id, None)
            else:
                self.visit(tgt)
        self.visit(node.value)

    # -- operations and escapes ----------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        callee = node.func
        if isinstance(callee, ast.Attribute):
            base = callee.value
            if isinstance(base, ast.Name):
                site = self.scope.lookup(base.id)
                if site is not None:
                    if callee.attr not in _NEUTRAL_METHODS:
                        site.ops.append((callee.attr, self.loop_depth > 0))
                    self._visit_all(node.args)
                    self._visit_all([kw.value for kw in node.keywords])
                    return
            else:
                # Iterating a factory's fresh return value: the classic
                # returned-and-iterated temporary.
                inner_spec = self._resolve_spec(base)
                if (inner_spec is not None
                        and callee.attr in ("iterate", "iterate_items",
                                            "iterate_keys", "to_list")):
                    self.temporaries.append((inner_spec, node.lineno))
        elif (isinstance(callee, ast.Name) and callee.id == "len"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Name)):
            site = self.scope.lookup(node.args[0].id)
            if site is not None:
                site.ops.append(("size", self.loop_depth > 0))
                return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            site = self.scope.lookup(node.id)
            if site is not None:
                site.escapes = True

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.value, ast.Name)
                and self.scope.lookup(node.value.id) is not None
                and node.attr in _NEUTRAL_ATTRS):
            return
        self.generic_visit(node)

    # -- loops ---------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        iter_spec = self._resolve_spec(node.iter)
        if iter_spec is not None:
            self.temporaries.append((iter_spec, node.iter.lineno))
        else:
            self.visit(node.iter)
        if isinstance(node.target, ast.Name):
            if self.scope.lookup(node.target.id) is not None:
                self.scope.bind(node.target.id, None)
        self.loop_depth += 1
        self._visit_all(node.body)
        self.loop_depth -= 1
        self._visit_all(node.orelse)

    visit_AsyncFor = visit_For

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self.loop_depth += 1
        self._visit_all(node.body)
        self.loop_depth -= 1
        self._visit_all(node.orelse)


def _site_findings(site: AllocationSite,
                   ) -> Tuple[List[Finding], List[StaticPrediction]]:
    findings: List[Finding] = []
    predictions: List[StaticPrediction] = []
    span = Span(file=site.file, line=site.line)

    def fact(finding_id: str, severity: Severity, message: str,
             predicted: Optional[str] = None,
             fix_hint: Optional[str] = None) -> None:
        findings.append(Finding(
            id=finding_id, severity=severity, message=message, span=span,
            fix_hint=fix_hint, context=site.context,
            predicted_rule=predicted))
        if predicted is not None:
            predictions.append(StaticPrediction(
                location=site.location, src_types=site.src_types,
                predicted_rule=predicted, finding_id=finding_id,
                file=site.file, line=site.line))

    loop_ops = site.loop_ops()
    types = "/".join(sorted(site.src_types))
    if site.kind == "list" and "contains" in loop_ops:
        fact("L2-contains-in-loop", Severity.WARNING,
             f"{site.variable!r} ({types}) takes contains() inside a "
             f"loop; linear membership tests dominate on large lists",
             predicted=("contains-heavy-list"
                        if "ArrayList" in site.src_types else None),
             fix_hint="consider a set, or expect the contains-heavy-list "
                      "rule to fire")
    if site.kind == "list" and "get" in loop_ops \
            and "LinkedList" in site.src_types:
        fact("L2-indexed-get-in-loop", Severity.WARNING,
             f"{site.variable!r} may be a LinkedList read with get(i) "
             f"inside a loop; positional reads on a linked list are "
             f"linear each",
             predicted="random-access-linked-list",
             fix_hint="replace with ArrayList")
    if loop_ops & _GROWTH_OPS and not site.capacity_set:
        fact("L2-growth-no-capacity", Severity.WARNING,
             f"{site.variable!r} ({types}) grows inside a loop but is "
             f"allocated without an initial capacity; it will resize "
             f"incrementally",
             predicted="incremental-resizing",
             fix_hint="pass initial_capacity= at the allocation")
    if not site.ops and not site.escapes:
        fact("L2-never-used", Severity.WARNING,
             f"{site.variable!r} ({types}) is allocated but never "
             f"operated on",
             predicted="redundant-collection",
             fix_hint="delete the allocation")
    elif (site.ops and not site.escapes
            and not (site.op_names() & _MUTATING_OPS)):
        fact("L2-never-mutated", Severity.NOTE,
             f"{site.variable!r} ({types}) is never mutated after "
             f"construction; an immutable or fixed-shape implementation "
             f"would do")
    return findings, predictions


def _parse_waivers(source: str) -> Dict[int, Set[str]]:
    waivers: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _WAIVER_RE.search(line)
        if match:
            ids = {part.strip() for part in match.group(1).split(",")
                   if part.strip()}
            waivers[lineno] = ids or {"*"}
    return waivers


def lint_source(source: str, path: str,
                ) -> Tuple[List[Finding], List[StaticPrediction]]:
    """Lint one Python source string; returns (findings, predictions)."""
    findings, predictions, _waived = lint_source_detailed(source, path)
    return findings, predictions


def lint_source_detailed(
        source: str, path: str,
) -> Tuple[List[Finding], List[StaticPrediction], Dict[str, int]]:
    """Like :func:`lint_source`, plus per-id waiver counts.

    The third element maps finding ids to the number of findings that a
    ``# lint: ignore[...]`` comment silenced, so reports can show how
    much is being waived without re-running the walk.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            id="L2-syntax-error", severity=Severity.ERROR,
            message=f"cannot parse: {exc.msg}",
            span=Span(file=path, line=exc.lineno or 0,
                      column=exc.offset))
        return [finding], [], {}
    collector = _FactoryCollector()
    collector.visit(tree)
    module = _module_name(path)
    walker = _UsageWalker(module, path, collector.factories,
                          collector.consts)
    walker.visit(tree)

    findings: List[Finding] = []
    predictions: List[StaticPrediction] = []
    for site in walker.sites:
        site_findings, site_predictions = _site_findings(site)
        findings.extend(site_findings)
        predictions.extend(site_predictions)
    for spec, lineno in walker.temporaries:
        types = "/".join(sorted(spec.src_types))
        findings.append(Finding(
            id="L2-temporary-iterated", severity=Severity.WARNING,
            message=f"freshly built {types} collection is returned and "
                    f"immediately iterated; the copy is redundant",
            span=Span(file=path, line=lineno),
            fix_hint="iterate the source directly",
            predicted_rule="redundant-copying"))

    waivers = _parse_waivers(source)
    kept: List[Finding] = []
    waived: Dict[str, int] = {}
    for finding in findings:
        ids = waivers.get(finding.span.line)
        if ids is not None and ("*" in ids or finding.id in ids):
            waived[finding.id] = waived.get(finding.id, 0) + 1
            continue
        kept.append(finding)
    return kept, predictions, waived


def _expand_paths(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    return sorted(set(files))


def lint_paths(paths: Sequence[str],
               ) -> Tuple[List[Finding], List[StaticPrediction]]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings, predictions, _waived = lint_paths_detailed(paths)
    return findings, predictions


def lint_paths_detailed(
        paths: Sequence[str],
) -> Tuple[List[Finding], List[StaticPrediction], Dict[str, int]]:
    """Like :func:`lint_paths`, plus aggregated per-id waiver counts."""
    findings: List[Finding] = []
    predictions: List[StaticPrediction] = []
    waived: Dict[str, int] = {}
    for file_path in _expand_paths(paths):
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        file_findings, file_predictions, file_waived = \
            lint_source_detailed(source, file_path)
        findings.extend(file_findings)
        predictions.extend(file_predictions)
        for finding_id, count in file_waived.items():
            waived[finding_id] = waived.get(finding_id, 0) + count
    return findings, predictions, waived
