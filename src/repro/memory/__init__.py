"""Simulated heap, collection-aware GC, and semantic ADT maps."""

from repro.memory.gc import GcCostParameters, MarkSweepGC
from repro.memory.generational import (GenerationalCostParameters,
                                       GenerationalGC)
from repro.memory.heap import HeapObject, OutOfMemoryError, SimHeap
from repro.memory.layout import MemoryModel
from repro.memory.semantic_maps import (AdtFootprint, FootprintTriple,
                                        SemanticMap, SemanticMapRegistry)
from repro.memory.stats import (ContextCycleStats, ContextHeapAggregate,
                                GcCycleStats, HeapAggregate, HeapTimeline)

__all__ = [
    "GcCostParameters", "MarkSweepGC", "GenerationalCostParameters",
    "GenerationalGC", "HeapObject", "OutOfMemoryError",
    "SimHeap", "MemoryModel", "AdtFootprint", "FootprintTriple",
    "SemanticMap", "SemanticMapRegistry", "ContextCycleStats",
    "ContextHeapAggregate", "GcCycleStats", "HeapAggregate", "HeapTimeline",
]
