"""Collection-aware mark-sweep garbage collector.

This reproduces the instrumented "base parallel mark and sweep" collector
of section 4.3.2.  The observable behaviour is identical to the paper's:

* **Mark** -- compute the transitive closure from the roots.
* **Account** -- using the semantic ADT maps, attribute each reachable
  collection's live/used/core bytes to its type and allocation context
  (Table 3).  Internal objects (backing arrays, entries, boxes) are
  attributed to the owning ADT, never double counted.
* **Sweep** -- free every unmarked object, running death hooks so the
  profiler can fold per-instance usage data into its allocation context
  (the paper's selective finalizers).

Parallelism in the original collector only affects wall-clock time, which
the simulation models with a configurable tick charge per marked/swept
object instead of actual threads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Set, Tuple

from repro.memory.heap import HeapObject, SimHeap
from repro.memory.semantic_maps import SemanticMap, SemanticMapRegistry
from repro.memory.stats import GcCycleStats, HeapTimeline

__all__ = ["GcCostParameters", "MarkSweepGC"]


@dataclass(frozen=True)
class GcCostParameters:
    """Tick charges for the collector's work, per object touched.

    The defaults make GC cost proportional to live data (marking) plus
    reclaimed garbage (sweeping), which is what lets the PMD experiment
    reproduce its "fewer GCs => 8.33% faster" result.
    """

    base_ticks: int = 2_000
    mark_ticks_per_object: int = 2
    sweep_ticks_per_object: int = 1
    account_ticks_per_collection: int = 1


class MarkSweepGC:
    """Mark-sweep collector over a :class:`SimHeap` with semantic maps."""

    def __init__(self, heap: SimHeap,
                 semantic_maps: Optional[SemanticMapRegistry] = None,
                 charge: Optional[Callable[[int], None]] = None,
                 costs: Optional[GcCostParameters] = None) -> None:
        self.heap = heap
        self.semantic_maps = semantic_maps or SemanticMapRegistry()
        self.timeline = HeapTimeline()
        self.costs = costs or GcCostParameters()
        self._charge = charge or (lambda ticks: None)
        self.cycle_count = 0
        self._collecting = False
        # Sanitizer/observer hook points.  Pre hooks run before marking;
        # post hooks run after the sweep with the marked set and any
        # deliberately kept (e.g. tenured) ids.  Hooks are observers:
        # they must not charge ticks or mutate the heap, so an attached
        # sanitizer leaves the simulation byte-identical.
        self.pre_cycle_hooks: List[Callable[["MarkSweepGC"], None]] = []
        self.post_cycle_hooks: List[
            Callable[["MarkSweepGC", Set[int], GcCycleStats,
                      FrozenSet[int]], None]] = []

    _NO_KEEP: FrozenSet[int] = frozenset()

    def _run_pre_cycle_hooks(self) -> None:
        for hook in self.pre_cycle_hooks:
            hook(self)

    def _run_post_cycle_hooks(self, marked: Set[int], stats: GcCycleStats,
                              kept: FrozenSet[int]) -> None:
        for hook in self.post_cycle_hooks:
            hook(self, marked, stats, kept)

    @property
    def collecting(self) -> bool:
        """Whether a cycle is in progress (a death hook is on the stack).

        The runtime consults this before triggering a collection from an
        allocation, so a death hook that allocates cannot start a nested
        cycle mid-sweep.
        """
        return self._collecting

    # ------------------------------------------------------------------
    # The collection cycle
    # ------------------------------------------------------------------
    def collect(self, tick: int = 0, major: bool = True) -> GcCycleStats:
        """Run one full GC cycle and record its statistics.

        Args:
            tick: Current virtual time, stamped into the cycle record so
                timelines can be plotted against time as well as cycle
                index.
            major: Accepted for collector polymorphism; the base
                mark-sweep collector always runs a full cycle.

        Returns:
            The cycle's :class:`GcCycleStats` (also appended to
            :attr:`timeline`).
        """
        self._run_pre_cycle_hooks()
        self.cycle_count += 1
        stats = GcCycleStats(cycle=self.cycle_count, tick=tick)

        marked = self._mark()
        self._account(marked, stats)
        self._collecting = True
        try:
            self._sweep(marked, stats)
        finally:
            self._collecting = False
        self._run_post_cycle_hooks(marked, stats, self._NO_KEEP)

        self._charge(self.costs.base_ticks
                     + self.costs.mark_ticks_per_object * len(marked)
                     + self.costs.sweep_ticks_per_object * stats.freed_objects
                     + self.costs.account_ticks_per_collection
                     * stats.collection_objects)
        self.timeline.record(stats)
        return stats

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _mark(self) -> Set[int]:
        """Transitive closure from the heap's root set."""
        live = self.heap.ids()
        heap_get = self.heap.get
        marked: Set[int] = set()
        worklist = deque(
            root_id for root_id in self.heap.root_ids() if root_id in live
        )
        marked.update(worklist)
        popleft = worklist.popleft
        append = worklist.append
        while worklist:
            obj = heap_get(popleft())
            for ref_id in obj.refs.keys():
                if ref_id not in marked and ref_id in live:
                    marked.add(ref_id)
                    append(ref_id)
        return marked

    def _account(self, marked: Set[int], stats: GcCycleStats) -> None:
        """Compute Table 3 statistics over the marked set.

        Runs in two passes so the result is independent of visit order:
        first find every ADT anchor and the internal objects it claims,
        then attribute bytes.  An anchor that is itself claimed by another
        anchor (e.g. a backing implementation owned by a wrapper) is folded
        into its owner rather than reported separately.
        """
        anchors: List[Tuple[HeapObject, SemanticMap]] = []
        claimed: Set[int] = set()
        heap_get = self.heap.get
        lookup = self.semantic_maps.lookup
        for obj_id in marked:
            obj = heap_get(obj_id)
            stats.live_data += obj.size
            semantic_map = lookup(obj)
            if semantic_map is not None:
                # A half-built ADT (construction-rooted, not yet adopted
                # by an owner) cannot answer the footprint protocol yet;
                # account it as plain data for this cycle.
                payload = obj.payload
                if payload is not None and getattr(
                        payload, "_construction_rooted", False):
                    continue
                anchors.append((obj, semantic_map))

        for anchor, semantic_map in anchors:
            claimed.update(semantic_map.internal_ids(anchor))

        anchor_ids = {a.obj_id for a, _ in anchors}
        for anchor, semantic_map in anchors:
            if anchor.obj_id in claimed:
                continue  # owned by an enclosing ADT (wrapper)
            triple = semantic_map.footprint(anchor)
            stats.collection_live += triple.live
            stats.collection_used += triple.used
            stats.collection_core += triple.core
            stats.collection_objects += 1
            stats.add_type_bytes(anchor.type_name, triple.live)
            context_id = semantic_map.context_id(anchor)
            if context_id is not None:
                stats.context(context_id).add(
                    triple.live, triple.used, triple.core)

        for obj_id in marked:
            if obj_id in claimed or obj_id in anchor_ids:
                continue
            obj = heap_get(obj_id)
            stats.add_type_bytes(obj.type_name, obj.size)

    def _sweep(self, marked: Set[int], stats: GcCycleStats) -> None:
        """Free unmarked objects, invoking death hooks as they die.

        The heap partitions itself into live set and free list
        (:meth:`SimHeap.sweep_dead`); this phase only runs hooks and
        accounts the cycle statistics over the yielded dead objects.
        """
        for obj in self.heap.sweep_dead(marked):
            if obj.on_death is not None:
                obj.on_death(obj)
            stats.freed_bytes += obj.size
            stats.freed_objects += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_bytes_estimate(self) -> int:
        """Exact live bytes right now (runs a mark without sweeping)."""
        marked = self._mark()
        return sum(self.heap.get(obj_id).size for obj_id in marked)
