"""Collection-aware mark-sweep garbage collector.

This reproduces the instrumented "base parallel mark and sweep" collector
of section 4.3.2.  The observable behaviour is identical to the paper's:

* **Mark** -- compute the transitive closure from the roots.
* **Account** -- using the semantic ADT maps, attribute each reachable
  collection's live/used/core bytes to its type and allocation context
  (Table 3).  Internal objects (backing arrays, entries, boxes) are
  attributed to the owning ADT, never double counted.
* **Sweep** -- free every unmarked object, running death hooks so the
  profiler can fold per-instance usage data into its allocation context
  (the paper's selective finalizers).

Parallelism in the original collector only affects wall-clock time, which
the simulation models with a configurable tick charge per marked/swept
object instead of actual threads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Set, Tuple

from repro.memory.heap import HeapObject, SimHeap
from repro.memory.semantic_maps import SemanticMap, SemanticMapRegistry
from repro.memory.stats import GcCycleStats, HeapTimeline

__all__ = ["GcCostParameters", "MarkSweepGC"]

_NUMPY = None
_NUMPY_CHECKED = False


def _numpy():
    """The numpy module, or ``None`` when not installed (checked once)."""
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        try:
            import numpy
            _NUMPY = numpy
        except ImportError:  # pragma: no cover - numpy ships in CI
            _NUMPY = None
        _NUMPY_CHECKED = True
    return _NUMPY


def _have_numpy() -> bool:
    return _numpy() is not None


@dataclass(frozen=True)
class GcCostParameters:
    """Tick charges for the collector's work, per object touched.

    The defaults make GC cost proportional to live data (marking) plus
    reclaimed garbage (sweeping), which is what lets the PMD experiment
    reproduce its "fewer GCs => 8.33% faster" result.
    """

    base_ticks: int = 2_000
    mark_ticks_per_object: int = 2
    sweep_ticks_per_object: int = 1
    account_ticks_per_collection: int = 1


class MarkSweepGC:
    """Mark-sweep collector over a :class:`SimHeap` with semantic maps.

    The mark and account phases exist in interchangeable *cores* selected
    by :meth:`set_core` (``ToolConfig.gc_core`` end to end):

    * ``"reference"`` -- the straightforward per-object BFS and
      accounting loops, kept as the executable specification.
    * ``"fast"`` (default) -- batched set-frontier marking and a single
      allocation-order accounting sweep over the heap store.
    * ``"vector"`` -- the fast account plus a flat-adjacency-array mark
      closure vectorised with numpy; silently falls back to ``"fast"``
      when numpy is unavailable.

    Every core charges identical ticks (charges are pure counts) and
    produces identical :class:`GcCycleStats` including dict insertion
    order: both cores visit marked objects in allocation order (ids are
    dense and monotonically increasing, so ascending id order *is*
    allocation order).  The differential property test in
    ``tests/verify`` enforces byte-identity over the trace corpus.
    """

    CORES = ("reference", "fast", "vector")

    def __init__(self, heap: SimHeap,
                 semantic_maps: Optional[SemanticMapRegistry] = None,
                 charge: Optional[Callable[[int], None]] = None,
                 costs: Optional[GcCostParameters] = None,
                 core: str = "fast") -> None:
        self.heap = heap
        self.semantic_maps = semantic_maps or SemanticMapRegistry()
        self.timeline = HeapTimeline()
        self.costs = costs or GcCostParameters()
        self._charge = charge or (lambda ticks: None)
        self.cycle_count = 0
        self._collecting = False
        self._live_bytes_stamp: Optional[tuple] = None
        self._live_bytes_value = 0
        self.set_core(core)
        # Sanitizer/observer hook points.  Pre hooks run before marking;
        # post hooks run after the sweep with the marked set and any
        # deliberately kept (e.g. tenured) ids.  Hooks are observers:
        # they must not charge ticks or mutate the heap, so an attached
        # sanitizer leaves the simulation byte-identical.
        self.pre_cycle_hooks: List[Callable[["MarkSweepGC"], None]] = []
        self.post_cycle_hooks: List[
            Callable[["MarkSweepGC", Set[int], GcCycleStats,
                      FrozenSet[int]], None]] = []

    _NO_KEEP: FrozenSet[int] = frozenset()

    def _run_pre_cycle_hooks(self) -> None:
        for hook in self.pre_cycle_hooks:
            hook(self)

    def _run_post_cycle_hooks(self, marked: Set[int], stats: GcCycleStats,
                              kept: FrozenSet[int]) -> None:
        for hook in self.post_cycle_hooks:
            hook(self, marked, stats, kept)

    @property
    def collecting(self) -> bool:
        """Whether a cycle is in progress (a death hook is on the stack).

        The runtime consults this before triggering a collection from an
        allocation, so a death hook that allocates cannot start a nested
        cycle mid-sweep.
        """
        return self._collecting

    # ------------------------------------------------------------------
    # The collection cycle
    # ------------------------------------------------------------------
    def collect(self, tick: int = 0, major: bool = True) -> GcCycleStats:
        """Run one full GC cycle and record its statistics.

        Args:
            tick: Current virtual time, stamped into the cycle record so
                timelines can be plotted against time as well as cycle
                index.
            major: Accepted for collector polymorphism; the base
                mark-sweep collector always runs a full cycle.

        Returns:
            The cycle's :class:`GcCycleStats` (also appended to
            :attr:`timeline`).
        """
        self._run_pre_cycle_hooks()
        self.cycle_count += 1
        stats = GcCycleStats(cycle=self.cycle_count, tick=tick)

        marked = self._mark()
        self._account(marked, stats)
        self._collecting = True
        try:
            self._sweep(marked, stats)
        finally:
            self._collecting = False
        self._run_post_cycle_hooks(marked, stats, self._NO_KEEP)

        self._charge(self.costs.base_ticks
                     + self.costs.mark_ticks_per_object * len(marked)
                     + self.costs.sweep_ticks_per_object * stats.freed_objects
                     + self.costs.account_ticks_per_collection
                     * stats.collection_objects)
        self.timeline.record(stats)
        return stats

    # ------------------------------------------------------------------
    # Core selection
    # ------------------------------------------------------------------
    def set_core(self, core: str) -> None:
        """Select the mark/account core (``reference``/``fast``/``vector``).

        Cores are byte-identical; switching mid-run is therefore safe.
        ``vector`` requires numpy and degrades to ``fast`` without it.
        """
        if core not in self.CORES:
            raise ValueError(f"unknown gc core {core!r}; "
                             f"expected one of {self.CORES}")
        if core == "vector" and not _have_numpy():
            core = "fast"
        self.core = core
        if core == "reference":
            self._mark = self._mark_reference
            self._account = self._account_reference
        elif core == "vector":
            self._mark = self._mark_vector
            self._account = self._account_fast
        else:
            self._mark = self._mark_fast
            self._account = self._account_fast

    # ------------------------------------------------------------------
    # Phases -- reference core
    # ------------------------------------------------------------------
    def _mark_reference(self) -> Set[int]:
        """Transitive closure from the heap's root set (per-object BFS)."""
        live = self.heap.ids()
        heap_get = self.heap.get
        marked: Set[int] = set()
        worklist = deque(
            root_id for root_id in self.heap.root_ids() if root_id in live
        )
        marked.update(worklist)
        popleft = worklist.popleft
        append = worklist.append
        while worklist:
            obj = heap_get(popleft())
            for ref_id in obj.refs.keys():
                if ref_id not in marked and ref_id in live:
                    marked.add(ref_id)
                    append(ref_id)
        return marked

    def _account_reference(self, marked: Set[int],
                           stats: GcCycleStats) -> None:
        """Compute Table 3 statistics over the marked set.

        Runs in two passes so the result is independent of visit order:
        first find every ADT anchor and the internal objects it claims,
        then attribute bytes.  An anchor that is itself claimed by another
        anchor (e.g. a backing implementation owned by a wrapper) is folded
        into its owner rather than reported separately.  Objects are
        visited in ascending id (= allocation) order so the statistics
        dicts carry the same insertion order as the fast core's
        allocation-order sweep.
        """
        anchors: List[Tuple[HeapObject, SemanticMap]] = []
        claimed: Set[int] = set()
        heap_get = self.heap.get
        lookup = self.semantic_maps.lookup
        for obj_id in sorted(marked):
            obj = heap_get(obj_id)
            stats.live_data += obj.size
            semantic_map = lookup(obj)
            if semantic_map is not None:
                # A half-built ADT (construction-rooted, not yet adopted
                # by an owner) cannot answer the footprint protocol yet;
                # account it as plain data for this cycle.
                payload = obj.payload
                if payload is not None and getattr(
                        payload, "_construction_rooted", False):
                    continue
                anchors.append((obj, semantic_map))

        for anchor, semantic_map in anchors:
            claimed.update(semantic_map.internal_ids(anchor))

        anchor_ids = {a.obj_id for a, _ in anchors}
        for anchor, semantic_map in anchors:
            if anchor.obj_id in claimed:
                continue  # owned by an enclosing ADT (wrapper)
            triple = semantic_map.footprint(anchor)
            stats.collection_live += triple.live
            stats.collection_used += triple.used
            stats.collection_core += triple.core
            stats.collection_objects += 1
            stats.add_type_bytes(anchor.type_name, triple.live)
            context_id = semantic_map.context_id(anchor)
            if context_id is not None:
                stats.context(context_id).add(
                    triple.live, triple.used, triple.core)

        for obj_id in sorted(marked):
            if obj_id in claimed or obj_id in anchor_ids:
                continue
            obj = heap_get(obj_id)
            stats.add_type_bytes(obj.type_name, obj.size)

    # ------------------------------------------------------------------
    # Phases -- fast core
    # ------------------------------------------------------------------
    def _mark_fast(self) -> Set[int]:
        """Transitive closure via whole-frontier set algebra.

        Instead of testing every edge against the marked set one by one,
        each round unions the frontier's complete out-edge sets and
        subtracts/intersects at the C level.  Visits the same edges, so
        the result is identical to the reference BFS.
        """
        objects = self.heap._objects
        keys = objects.keys()
        marked = {rid for rid in self.heap._roots if rid in objects}
        frontier = marked
        while frontier:
            if len(frontier) <= 8:
                # Narrow frontier (deep chains): the n-ary union's three
                # temporary sets per round cost more than they save, so
                # walk the handful of edges directly.
                fresh: Set[int] = set()
                for obj_id in frontier:
                    for ref in objects[obj_id].refs:
                        if ref not in marked and ref in objects:
                            fresh.add(ref)
            else:
                # One C-level n-ary union per round instead of one
                # update() call per frontier object.
                fresh = set()
                fresh.update(*[objects[obj_id].refs for obj_id in frontier])
                fresh -= marked
                fresh &= keys
            marked |= fresh
            frontier = fresh
        return marked

    def _account_fast(self, marked: Set[int], stats: GcCycleStats) -> None:
        """Table 3 statistics via one allocation-order sweep.

        Semantics are identical to :meth:`_account_reference`; the loop
        iterates the heap store directly (dict insertion order =
        allocation order = ascending id, matching the reference core's
        sorted visits), skips the per-id ``heap.get`` calls, and folds
        the three reference passes' bookkeeping into local variables.
        """
        objects = self.heap._objects
        registry = self.semantic_maps
        lookup = registry.lookup
        version = registry._version
        anchors: List[Tuple[HeapObject, SemanticMap]] = []
        plain: List[HeapObject] = []
        plain_append = plain.append
        live_data = 0
        if len(marked) * 3 < len(objects):
            # Sparse marking: touching every stored object would dwarf
            # the work; visit the marked ids directly (sorted == same
            # allocation order).
            items = [objects[obj_id] for obj_id in sorted(marked)]
        else:
            items = objects.values() if len(marked) == len(objects) \
                else [obj for obj_id, obj in objects.items()
                      if obj_id in marked]
        for obj in items:
            live_data += obj.size
            # Inlined fast path of SemanticMapRegistry.lookup: the
            # verdict cached on the object is valid while the registry
            # version matches.
            if obj.sm_version == version:
                semantic_map = obj.sm_map
            else:
                semantic_map = lookup(obj)
            if semantic_map is None:
                plain_append(obj)
                continue
            payload = obj.payload
            if payload is not None and getattr(
                    payload, "_construction_rooted", False):
                # A half-built ADT is accounted as plain data this cycle,
                # exactly as in the reference core.
                plain_append(obj)
                continue
            anchors.append((obj, semantic_map))
        stats.live_data += live_data

        claimed: Set[int] = set()
        for anchor, semantic_map in anchors:
            claimed.update(semantic_map.internal_ids(anchor))

        collection_live = collection_used = collection_core = 0
        collection_objects = 0
        add_type_bytes = stats.add_type_bytes
        context = stats.context
        for anchor, semantic_map in anchors:
            if anchor.obj_id in claimed:
                continue  # owned by an enclosing ADT (wrapper)
            triple = semantic_map.footprint(anchor)
            collection_live += triple.live
            collection_used += triple.used
            collection_core += triple.core
            collection_objects += 1
            add_type_bytes(anchor.type_name, triple.live)
            context_id = semantic_map.context_id(anchor)
            if context_id is not None:
                context(context_id).add(triple.live, triple.used, triple.core)
        stats.collection_live += collection_live
        stats.collection_used += collection_used
        stats.collection_core += collection_core
        stats.collection_objects += collection_objects

        type_distribution = stats.type_distribution
        get_bytes = type_distribution.get
        for obj in plain:
            # ``plain`` preserves the visit order, so insertion order in
            # the distribution matches the reference core; anchors never
            # receive plain attribution (claimed or not), internals
            # claimed by an ADT are attributed to their owner above.
            if obj.obj_id in claimed:
                continue
            name = obj.type_name
            type_distribution[name] = get_bytes(name, 0) + obj.size

    # ------------------------------------------------------------------
    # Phases -- vector core (numpy flat-adjacency mark)
    # ------------------------------------------------------------------
    def _mark_vector(self) -> Set[int]:
        """Mark closure over flat adjacency arrays (numpy frontier).

        Builds a CSR-style (heads, edges) pair for the current object
        graph, then expands the root frontier with vectorised gather /
        unique passes.  Reaches exactly the reference closure.
        """
        np = _numpy()
        objects = self.heap._objects
        if not objects:
            return set()
        index_of = {obj_id: i for i, obj_id in enumerate(objects)}
        n = len(index_of)
        heads = [0] * (n + 1)
        flat: List[int] = []
        append = flat.extend
        for i, obj in enumerate(objects.values()):
            refs = obj.refs
            if refs:
                append(idx for ref_id in refs
                       if (idx := index_of.get(ref_id)) is not None)
            heads[i + 1] = len(flat)
        heads_arr = np.asarray(heads, dtype=np.int64)
        edges = np.asarray(flat, dtype=np.int64)
        counts = heads_arr[1:] - heads_arr[:-1]

        marked = np.zeros(n, dtype=bool)
        frontier = np.asarray(
            sorted({index_of[rid] for rid in self.heap._roots
                    if rid in index_of}), dtype=np.int64)
        marked[frontier] = True
        while frontier.size:
            spans_from = heads_arr[frontier]
            spans_len = counts[frontier]
            total = int(spans_len.sum())
            if not total:
                break
            gather = np.repeat(spans_from + spans_len
                               - spans_len.cumsum(), spans_len)
            gather += np.arange(total, dtype=np.int64)
            targets = edges[gather]
            fresh = np.unique(targets[~marked[targets]])
            marked[fresh] = True
            frontier = fresh
        ids = np.fromiter(objects.keys(), dtype=np.int64, count=n)
        return set(ids[marked].tolist())

    def _sweep(self, marked: Set[int], stats: GcCycleStats) -> None:
        """Free unmarked objects, invoking death hooks as they die.

        The heap partitions itself into live set and free list
        (:meth:`SimHeap.sweep_dead`); this phase only runs hooks and
        accounts the cycle statistics over the yielded dead objects.
        """
        for obj in self.heap.sweep_dead(marked):
            if obj.on_death is not None:
                obj.on_death(obj)
            stats.freed_bytes += obj.size
            stats.freed_objects += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_bytes_estimate(self) -> int:
        """Exact live bytes right now (a mark without sweeping).

        The full mark is run only when the heap has mutated since the
        last query: the result is cached keyed on the heap's mutation
        stamp (allocations, frees, root edits, reference edits), so
        back-to-back estimates -- the minimal-heap search's probing
        pattern -- cost one dict-free comparison instead of a heap walk.
        The stamp can only over-invalidate, so the estimate stays exact.
        """
        stamp = self.heap.mutation_stamp()
        if stamp == self._live_bytes_stamp:
            return self._live_bytes_value
        marked = self._mark()
        objects = self.heap._objects
        value = sum(objects[obj_id].size for obj_id in marked)
        self._live_bytes_stamp = stamp
        self._live_bytes_value = value
        return value
