"""A two-generation collector: the paper's threat-to-validity, testable.

Section 4.3.2: "We note that our choice of this specific collector can
possibly lead to different results than if we had used for example a
generational collector.  However, the improvements in collection usage
are orthogonal to the specific GC."  This module makes that claim
checkable: :class:`GenerationalGC` is a drop-in alternative collector,
and the ``test_ablations`` benchmark re-measures the headline TVLA result
under it.

Model
-----
Objects are born in the *nursery*; an object that survives
``tenure_age`` minor collections is promoted to the *tenured*
generation.

* **Minor** cycles compute the full reachability closure (the simulation
  has no remembered sets, so marking stays exact and the Table 3
  statistics stay complete) but only *sweep the nursery*: unreachable
  tenured objects persist as floating garbage until the next major cycle
  -- the usual generational behaviour.  The cost model reflects the
  generational bargain: full mark work is charged only for nursery
  objects, with a small card-scanning charge per tenured object.
* **Major** cycles behave exactly like the base mark-sweep collector.

The runtime triggers minor cycles on the periodic allocation threshold
and escalates to major cycles under heap-limit pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.memory.gc import GcCostParameters, MarkSweepGC
from repro.memory.heap import SimHeap
from repro.memory.semantic_maps import SemanticMapRegistry
from repro.memory.stats import GcCycleStats

__all__ = ["GenerationalCostParameters", "GenerationalGC"]


@dataclass(frozen=True)
class GenerationalCostParameters(GcCostParameters):
    """Tick charges for the generational collector.

    Inherits the base parameters (used for major cycles) and adds the
    minor-cycle economics.
    """

    minor_base_ticks: int = 400
    """Fixed charge per minor cycle (cheaper pause setup)."""

    tenured_card_ticks_per_object: int = 1
    """Minor-cycle charge per tenured object (card/remembered-set scan
    standing in for not re-marking the old generation)."""


class GenerationalGC(MarkSweepGC):
    """Nursery + tenured generations over the same simulated heap."""

    def __init__(self, heap: SimHeap,
                 semantic_maps: Optional[SemanticMapRegistry] = None,
                 charge: Optional[Callable[[int], None]] = None,
                 costs: Optional[GenerationalCostParameters] = None,
                 tenure_age: int = 2) -> None:
        super().__init__(heap, semantic_maps, charge,
                         costs or GenerationalCostParameters())
        if tenure_age < 1:
            raise ValueError("tenure age must be >= 1")
        self.tenure_age = tenure_age
        self._ages: Dict[int, int] = {}
        self._tenured: Set[int] = set()
        self.minor_cycles = 0
        self.major_cycles = 0
        self.promoted_objects = 0

    # ------------------------------------------------------------------
    # Generation tracking
    # ------------------------------------------------------------------
    def is_tenured(self, obj_id: int) -> bool:
        """Whether ``obj_id`` has been promoted out of the nursery."""
        return obj_id in self._tenured

    @property
    def nursery_size(self) -> int:
        """Objects currently considered nursery residents."""
        return len(self.heap) - len(self._tenured)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def collect(self, tick: int = 0, major: bool = True) -> GcCycleStats:
        """Run one cycle: a full collection, or a nursery-only minor."""
        if major:
            return self._collect_major(tick)
        return self._collect_minor(tick)

    def _collect_major(self, tick: int) -> GcCycleStats:
        self.major_cycles += 1
        stats = super().collect(tick)
        # Anything swept is gone from both generations.
        self._tenured &= {obj.obj_id for obj in self.heap.objects()}
        for obj_id in list(self._ages):
            if not self.heap.contains(obj_id):
                del self._ages[obj_id]
        return stats

    def _collect_minor(self, tick: int) -> GcCycleStats:
        self._run_pre_cycle_hooks()
        self.minor_cycles += 1
        self.cycle_count += 1
        stats = GcCycleStats(cycle=self.cycle_count, tick=tick,
                             kind="minor")

        marked = self._mark()
        self._account(marked, stats)

        # Sweep the nursery only; unreachable tenured objects float.
        self._collecting = True
        try:
            for obj in self.heap.sweep_dead(marked, keep=self._tenured):
                if obj.on_death is not None:
                    obj.on_death(obj)
                self._ages.pop(obj.obj_id, None)
                stats.freed_bytes += obj.size
                stats.freed_objects += 1
        finally:
            self._collecting = False
        # Unreachable tenured objects legitimately float until the next
        # major cycle; post hooks receive them as the kept set.
        self._run_post_cycle_hooks(marked, stats, frozenset(self._tenured))

        # Age and promote the nursery survivors.
        promoted = 0
        for obj in self.heap.objects():
            obj_id = obj.obj_id
            if obj_id in self._tenured:
                continue
            age = self._ages.get(obj_id, 0) + 1
            if age >= self.tenure_age:
                self._tenured.add(obj_id)
                self._ages.pop(obj_id, None)
                promoted += 1
            else:
                self._ages[obj_id] = age
        self.promoted_objects += promoted

        costs = self.costs
        nursery_marked = sum(1 for obj_id in marked
                             if obj_id not in self._tenured)
        self._charge(costs.minor_base_ticks
                     + costs.mark_ticks_per_object * nursery_marked
                     + costs.tenured_card_ticks_per_object
                     * len(self._tenured)
                     + costs.sweep_ticks_per_object * stats.freed_objects
                     + costs.account_ticks_per_collection
                     * stats.collection_objects)
        self.timeline.record(stats)
        return stats
