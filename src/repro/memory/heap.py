"""The simulated heap: an explicit object graph with byte-accurate sizes.

Chameleon's VM-side measurements are all statements about the *object
graph*: which objects are reachable at each GC cycle, how many bytes they
occupy, and which of those bytes belong to collection ADTs.  This module
provides that substrate.  Every allocation performed by a workload or by a
collection implementation creates a :class:`HeapObject` in a
:class:`SimHeap`; the mark-sweep collector in :mod:`repro.memory.gc` then
computes reachability and per-cycle statistics over exactly this graph.

Design notes
------------
* Reference edges are reference-counted per *edge multiplicity* (a list may
  legitimately reference the same element twice), so removing one of two
  identical refs keeps the edge alive.
* Objects may carry a ``payload``: the Python-side entity they model (a
  collection implementation, an application record...).  Semantic ADT maps
  use the payload to compute used/core bytes without walking the graph.
* Death hooks replace the paper's selective finalizers: when the sweeper
  frees an object that has an ``on_death`` callback, the callback runs so
  the profiler can fold the instance's ``ObjectContextInfo`` into its
  allocation context (section 4.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, Iterator, Optional

from repro.memory.layout import MemoryModel

__all__ = ["HeapObject", "SimHeap", "OutOfMemoryError"]


class OutOfMemoryError(Exception):
    """Raised when an allocation cannot be satisfied under the heap limit
    even after a full collection."""

    def __init__(self, requested: int, live: int, limit: int) -> None:
        super().__init__(
            f"out of memory: requested {requested} bytes with {live} live "
            f"of {limit} byte limit"
        )
        self.requested = requested
        self.live = live
        self.limit = limit


@dataclass
class HeapObject:
    """One simulated heap cell.

    Attributes:
        obj_id: Dense integer identity, unique within the owning heap.
        type_name: The simulated Java type (``"HashMap"``, ``"Object[]"``,
            ``"LinkedList$Entry"``...).  Semantic maps key off this.
        size: Aligned size in bytes.
        refs: Outgoing reference edges with multiplicity, as a plain
            ``{target_id: count}`` dict.  (A ``collections.Counter`` would
            read more naturally, but its Python-level ``__init__`` and
            ``__missing__`` are measurable at one instance per allocation;
            the two mutators below keep the zero-default semantics by
            hand.)
        payload: Optional Python-side entity this object models.
        context_id: Allocation-context identity, when tracked.
        on_death: Optional callback invoked by the sweeper when freed.
    """

    obj_id: int
    type_name: str
    size: int
    refs: Dict[int, int] = field(default_factory=dict)
    payload: Any = None
    context_id: Optional[int] = None
    on_death: Optional[Callable[["HeapObject"], None]] = None

    # Anchor-classification cache maintained by SemanticMapRegistry.lookup:
    # the verdict for this object under registry state `sm_version`.
    sm_version: int = field(default=0, repr=False)
    sm_map: Any = field(default=None, repr=False)

    #: Process-wide edge-mutation epoch.  Reachability caches (e.g. the
    #: collector's live-bytes estimate) key on this together with the
    #: owning heap's :meth:`SimHeap.mutation_stamp`; sharing one counter
    #: across heaps over-invalidates (another heap's edit flushes our
    #: cache) but can never under-invalidate, and costs one integer
    #: increment per edge edit instead of a heap back-pointer per object.
    graph_epoch: ClassVar[int] = 0

    def add_ref(self, target_id: int) -> None:
        """Add one reference edge to ``target_id``."""
        refs = self.refs
        refs[target_id] = refs.get(target_id, 0) + 1
        HeapObject.graph_epoch += 1

    def remove_ref(self, target_id: int) -> None:
        """Drop one reference edge to ``target_id``.

        Raises:
            KeyError: if no such edge exists -- an edge-accounting bug in
                the caller that must not pass silently.
        """
        count = self.refs.get(target_id, 0)
        if count <= 0:
            raise KeyError(f"object #{self.obj_id} holds no ref to #{target_id}")
        if count == 1:
            del self.refs[target_id]
        else:
            self.refs[target_id] = count - 1
        HeapObject.graph_epoch += 1

    def clear_refs(self) -> None:
        """Drop every outgoing edge (used when a structure is discarded)."""
        self.refs.clear()
        HeapObject.graph_epoch += 1

    def __hash__(self) -> int:
        return self.obj_id

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HeapObject #{self.obj_id} {self.type_name} {self.size}B>"


class SimHeap:
    """A growable object graph with named GC roots and a byte budget.

    The heap does not collect by itself; :class:`repro.memory.gc.MarkSweepGC`
    owns the mark/sweep logic.  The heap *does* know its occupancy so the
    runtime can decide when a collection is needed and when to declare an
    :class:`OutOfMemoryError` (which is how the minimal-heap experiments of
    Fig. 6 are driven).
    """

    def __init__(self, model: Optional[MemoryModel] = None,
                 limit: Optional[int] = None) -> None:
        self.model = model or MemoryModel.for_32bit()
        self.limit = limit
        self._objects: Dict[int, HeapObject] = {}
        # Root pin counts, {obj_id: count}; a plain dict for the same
        # reason HeapObject.refs is one (see its docstring).
        self._roots: Dict[int, int] = {}
        self._next_id = 1
        self._root_epoch = 0
        # Monotonic accounting across the whole run.
        self.total_allocated_bytes = 0
        self.total_allocated_objects = 0
        self.total_freed_bytes = 0
        self.total_freed_objects = 0

    # ------------------------------------------------------------------
    # Allocation and the object store
    # ------------------------------------------------------------------
    def allocate(self, type_name: str, size: int, *, payload: Any = None,
                 context_id: Optional[int] = None,
                 on_death: Optional[Callable[[HeapObject], None]] = None,
                 ) -> HeapObject:
        """Allocate an object of ``size`` aligned bytes.

        The caller is expected to have produced ``size`` from the heap's
        :class:`MemoryModel`; the heap aligns defensively anyway so
        accounting invariants hold even for hand-written sizes.
        """
        if size < 0:
            raise ValueError("allocation size cannot be negative")
        size = self.model.align(size)
        obj = HeapObject(self._next_id, type_name, size,
                         payload=payload, context_id=context_id,
                         on_death=on_death)
        self._next_id += 1
        self._objects[obj.obj_id] = obj
        self.total_allocated_bytes += size
        self.total_allocated_objects += 1
        return obj

    def free(self, obj: HeapObject) -> None:
        """Remove ``obj`` from the store (called by the sweeper)."""
        del self._objects[obj.obj_id]
        self.total_freed_bytes += obj.size
        self.total_freed_objects += 1

    def get(self, obj_id: int) -> HeapObject:
        """Look up a live object by id."""
        return self._objects[obj_id]

    def contains(self, obj_id: int) -> bool:
        """Whether ``obj_id`` is currently in the store (i.e. not swept)."""
        return obj_id in self._objects

    def objects(self) -> Iterator[HeapObject]:
        """Iterate over every object currently in the store."""
        return iter(self._objects.values())

    def ids(self):
        """A live view of every object id currently in the store."""
        return self._objects.keys()

    @property
    def high_water_id(self) -> int:
        """The next object id to be assigned.

        Every id ever allocated is strictly below this boundary, which
        lets observers (e.g. the heap sanitizer) distinguish objects that
        existed before a GC cycle from ones allocated mid-sweep by death
        hooks.
        """
        return self._next_id

    def sweep_dead(self, marked: "set[int]",
                   keep: Optional["set[int]"] = None,
                   ) -> Iterator[HeapObject]:
        """Partition the store into the live set and the free list.

        ``marked`` (plus the optional ``keep`` set, e.g. a tenured
        generation) names the survivors; everything else is popped from
        the store, accounted as freed, and yielded to the caller -- the
        sweeper runs death hooks and per-cycle statistics over the yielded
        free list.  The dead ids are computed with one C-level set
        difference instead of a Python-level scan over every object, so
        sweep cost tracks the garbage, not the heap.

        Reentrancy: the partition is a snapshot.  A death hook that
        *allocates* adds to the live store and is never swept this cycle;
        a hook that *frees* a not-yet-yielded dead object simply causes
        that object to be skipped here (it was already accounted by
        :meth:`free`), so ``total_freed_*`` counts every object exactly
        once.
        """
        dead_ids = self._objects.keys() - marked
        if keep:
            dead_ids -= keep
        pop = self._objects.pop
        for obj_id in dead_ids:
            obj = pop(obj_id, None)
            if obj is None:
                continue  # freed by a reentrant death hook
            self.total_freed_bytes += obj.size
            self.total_freed_objects += 1
            yield obj

    def __len__(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    # Roots
    # ------------------------------------------------------------------
    def add_root(self, obj: HeapObject) -> None:
        """Pin ``obj`` as a GC root (thread stack / static analog)."""
        roots = self._roots
        roots[obj.obj_id] = roots.get(obj.obj_id, 0) + 1
        self._root_epoch += 1

    def remove_root(self, obj: HeapObject) -> None:
        """Unpin one root registration of ``obj``."""
        count = self._roots.get(obj.obj_id, 0)
        if count <= 0:
            raise KeyError(f"object #{obj.obj_id} is not a root")
        if count == 1:
            del self._roots[obj.obj_id]
        else:
            self._roots[obj.obj_id] = count - 1
        self._root_epoch += 1

    def mutation_stamp(self) -> tuple:
        """A value that changes whenever reachability could have changed.

        Composed of the monotonic allocation/free counters (object birth
        and death, including sweeps, which free without :meth:`free`),
        the root-set epoch, and the process-wide edge epoch
        (:attr:`HeapObject.graph_epoch`).  Equal stamps guarantee an
        identical reachable set; the converse need not hold (the stamp
        may over-invalidate), which is the safe direction for caches.
        """
        return (self.total_allocated_objects, self.total_freed_objects,
                self._root_epoch, HeapObject.graph_epoch)

    def root_ids(self) -> Iterator[int]:
        """Iterate over the ids of the current root set."""
        return iter(self._roots.keys())

    def is_root(self, obj: HeapObject) -> bool:
        """Whether ``obj`` is currently pinned as a root."""
        return obj.obj_id in self._roots

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    @property
    def occupied_bytes(self) -> int:
        """Bytes held by every not-yet-swept object (live or garbage)."""
        return self.total_allocated_bytes - self.total_freed_bytes

    def would_overflow(self, size: int) -> bool:
        """Whether allocating ``size`` more bytes would exceed the limit."""
        if self.limit is None:
            return False
        return self.occupied_bytes + self.model.align(size) > self.limit
