"""Memory-layout arithmetic for the simulated Java-like heap.

Chameleon's space measurements (collection *live*, *used* and *core* bytes)
are pure layout arithmetic over a Java object model: object headers, array
headers, reference slots and primitive slots, rounded up to the allocation
alignment.  This module captures that arithmetic in a single
:class:`MemoryModel` value object so every other component (the simulated
heap, the collection footprint models, the semantic ADT maps) agrees on the
numbers.

The paper reports its space results for a 32-bit JVM -- e.g. a
``HashMap$Entry`` "consumes 24 bytes (object header and three pointers)"
(section 2.3).  :meth:`MemoryModel.for_32bit` reproduces exactly that
layout; :meth:`MemoryModel.for_64bit` is provided for completeness and for
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryModel"]


@dataclass(frozen=True)
class MemoryModel:
    """Byte-level layout parameters of the simulated VM.

    Attributes:
        pointer_bytes: Size of one reference slot.
        header_bytes: Size of a plain object header (mark word + class
            pointer on HotSpot/J9-like VMs).
        array_header_bytes: Size of an array header (object header plus the
            32-bit length field).
        alignment: Allocation granularity; every object size is rounded up
            to a multiple of this.
        int_bytes: Size of a primitive ``int`` slot.
        name: Human-readable tag used in reports.
    """

    pointer_bytes: int = 4
    header_bytes: int = 8
    array_header_bytes: int = 12
    alignment: int = 8
    int_bytes: int = 4
    name: str = "32-bit"

    def __post_init__(self) -> None:
        if self.pointer_bytes <= 0 or self.header_bytes <= 0:
            raise ValueError("pointer and header sizes must be positive")
        if self.alignment <= 0 or (self.alignment & (self.alignment - 1)):
            raise ValueError("alignment must be a positive power of two")
        if self.array_header_bytes < self.header_bytes:
            raise ValueError("array header cannot be smaller than object header")

    @classmethod
    def for_32bit(cls) -> "MemoryModel":
        """The 32-bit layout used throughout the paper's evaluation."""
        return cls()

    @classmethod
    def for_64bit(cls, compressed_oops: bool = False) -> "MemoryModel":
        """A 64-bit layout (optionally with compressed references)."""
        if compressed_oops:
            return cls(
                pointer_bytes=4,
                header_bytes=12,
                array_header_bytes=16,
                alignment=8,
                int_bytes=4,
                name="64-bit/compressed",
            )
        return cls(
            pointer_bytes=8,
            header_bytes=16,
            array_header_bytes=24,
            alignment=8,
            int_bytes=4,
            name="64-bit",
        )

    def align(self, size: int) -> int:
        """Round ``size`` up to the allocation alignment."""
        mask = self.alignment - 1
        return (size + mask) & ~mask

    def object_size(self, ref_fields: int = 0, int_fields: int = 0,
                    long_fields: int = 0) -> int:
        """Aligned size of a plain object with the given field counts."""
        raw = (self.header_bytes
               + ref_fields * self.pointer_bytes
               + int_fields * self.int_bytes
               + long_fields * 8)
        return self.align(raw)

    def ref_array_size(self, length: int) -> int:
        """Aligned size of an ``Object[length]`` array."""
        if length < 0:
            raise ValueError("array length cannot be negative")
        return self.align(self.array_header_bytes + length * self.pointer_bytes)

    def int_array_size(self, length: int) -> int:
        """Aligned size of an ``int[length]`` array."""
        if length < 0:
            raise ValueError("array length cannot be negative")
        return self.align(self.array_header_bytes + length * self.int_bytes)

    def box_size(self) -> int:
        """Aligned size of a boxed primitive (``java.lang.Integer``-like)."""
        return self.object_size(int_fields=1)

    def hash_entry_size(self) -> int:
        """Size of a chained hash-table entry: header + key/value/next refs
        plus a cached 32-bit hash.

        On the 32-bit model this is 24 bytes, matching the figure quoted in
        section 2.3 of the paper.
        """
        return self.object_size(ref_fields=3, int_fields=1)

    def linked_entry_size(self) -> int:
        """Size of a doubly-linked list entry: header + element/next/prev.

        24 bytes on the 32-bit model -- the ``LinkedList$Entry`` weight the
        paper blames for bloat's empty-list spike.
        """
        return self.object_size(ref_fields=3)

    def core_size(self, element_count: int) -> int:
        """The paper's *core* metric: the ideal space needed to store
        ``element_count`` elements in a bare pointer array."""
        return self.ref_array_size(element_count)
