"""Semantic ADT maps: teaching the collector what a collection *is*.

A collection ADT is not one heap object.  An ``ArrayList`` is a header
object plus a backing ``Object[]``; a ``HashMap`` is a header object, a
table array, and a chain of entry objects.  A collector that "blindly
iterates over the heap" (section 4.3.2) cannot tell a backing array from an
unrelated ``Object[]``.  Chameleon solves this with *semantic maps*:
per-type descriptors, precomputed at VM startup, that tell the collector
how to find a collection's internal objects and how to compute its live,
used and core sizes.

This module reproduces that mechanism.  A :class:`SemanticMap` answers four
questions about an ADT anchor object:

* ``footprint`` -- the (live, used, core) byte triple of Table 3;
* ``internal_ids`` -- the ids of the internal objects that belong to the
  ADT (backing arrays, entries, boxes) so per-type statistics attribute
  them to the collection rather than to ``Object[]``;
* ``element_count`` -- how many application elements the ADT stores;
* ``context_id`` -- the allocation context the statistics aggregate into.

The default map delegates to the :class:`AdtFootprint` protocol implemented
by every collection implementation in :mod:`repro.collections`.  Custom
collection classes (the paper's HSQLDB example) can register their own map
with :meth:`SemanticMapRegistry.register`, keeping the collector fully
parametric in the set of ADTs it understands.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Protocol, runtime_checkable

from repro.memory.heap import HeapObject

__all__ = [
    "AdtFootprint",
    "FootprintTriple",
    "SemanticMap",
    "ProtocolSemanticMap",
    "SemanticMapRegistry",
]


@dataclass(frozen=True)
class FootprintTriple:
    """The three space measures Chameleon tracks for a collection ADT.

    Attributes:
        live: Every byte the ADT occupies -- anchor object, wrapper,
            backing arrays, entry objects, boxed primitives.
        used: The subset of ``live`` actually employed to store the
            current elements (i.e. ``live`` minus slack such as unused
            array capacity).  ``live - used`` is the paper's potential
            space saving for the context.
        core: The lower bound -- the bytes of a bare pointer array holding
            exactly the current elements.
    """

    live: int
    used: int
    core: int

    def __post_init__(self) -> None:
        if not (self.live >= self.used >= self.core >= 0):
            raise ValueError(
                f"footprint must satisfy live >= used >= core >= 0, "
                f"got {self.live}/{self.used}/{self.core}"
            )

    @property
    def slack(self) -> int:
        """Allocated-but-unused bytes (the optimisable gap)."""
        return self.live - self.used

    @property
    def overhead(self) -> int:
        """Bytes beyond the theoretical minimum representation."""
        return self.live - self.core


@runtime_checkable
class AdtFootprint(Protocol):
    """Protocol every collection implementation exposes to the collector."""

    def adt_footprint(self) -> FootprintTriple:
        """Current (live, used, core) bytes of the whole ADT."""

    def adt_internal_ids(self) -> Iterable[int]:
        """Heap ids of internal objects owned by the ADT (excluding the
        anchor object itself and excluding application elements)."""

    def adt_element_count(self) -> int:
        """Number of application elements currently stored."""


class SemanticMap:
    """Base class for per-type semantic maps."""

    def matches(self, obj: HeapObject) -> bool:
        """Whether ``obj`` anchors an ADT this map understands."""
        raise NotImplementedError

    def footprint(self, obj: HeapObject) -> FootprintTriple:
        """(live, used, core) bytes of the ADT anchored at ``obj``."""
        raise NotImplementedError

    def internal_ids(self, obj: HeapObject) -> Iterable[int]:
        """Ids of the ADT's internal objects."""
        raise NotImplementedError

    def element_count(self, obj: HeapObject) -> int:
        """Number of stored application elements."""
        raise NotImplementedError

    def context_id(self, obj: HeapObject) -> Optional[int]:
        """Allocation context of the ADT, if tracked."""
        return obj.context_id


class ProtocolSemanticMap(SemanticMap):
    """Semantic map that reads the :class:`AdtFootprint` protocol off the
    anchor object's payload.

    This is the analog of the paper's offset tables: instead of byte
    offsets into a J9 object, we dispatch to the payload's accessors, which
    are equally "precomputed" -- no name lookup or graph search happens at
    collection time.

    ``isinstance`` against a ``runtime_checkable`` Protocol inspects every
    protocol member on every call, which made this the dominant cost of a
    GC cycle; the verdict only depends on the payload's *class*, so it is
    cached per class.
    """

    def __init__(self) -> None:
        self._class_matches: Dict[type, bool] = {}

    def matches(self, obj: HeapObject) -> bool:
        payload = obj.payload
        if payload is None:
            return False
        cls = payload.__class__
        verdict = self._class_matches.get(cls)
        if verdict is None:
            verdict = isinstance(payload, AdtFootprint)
            self._class_matches[cls] = verdict
        return verdict

    def footprint(self, obj: HeapObject) -> FootprintTriple:
        return obj.payload.adt_footprint()

    def internal_ids(self, obj: HeapObject) -> Iterable[int]:
        return obj.payload.adt_internal_ids()

    def element_count(self, obj: HeapObject) -> int:
        return obj.payload.adt_element_count()


#: Globally unique registry-state versions.  Each registry draws a fresh
#: version on every mutation, so a :class:`HeapObject`'s cached
#: classification can never be mistaken for another registry's (or an
#: older) state.
_registry_versions = itertools.count(1)


class SemanticMapRegistry:
    """Type-name -> :class:`SemanticMap` lookup used by the collector.

    The registry is consulted once per visited object during marking; a
    ``None`` result means the object is not a collection anchor and is
    accounted as plain application data.  The verdict for an object is
    immutable while the registry is unchanged (payloads are assigned at
    allocation), so :meth:`lookup` caches its anchor classification on the
    :class:`HeapObject` itself, stamped with the registry version; any
    ``register``/``unregister``/dispatch change invalidates every cached
    verdict at once by bumping the version.
    """

    def __init__(self) -> None:
        self._by_type: Dict[str, SemanticMap] = {}
        self._protocol_map = ProtocolSemanticMap()
        self._protocol_enabled = True
        self._version = next(_registry_versions)

    def _invalidate(self) -> None:
        self._version = next(_registry_versions)

    def register(self, type_name: str, semantic_map: SemanticMap) -> None:
        """Register a custom map for ``type_name`` (overrides protocol
        dispatch for that type)."""
        self._by_type[type_name] = semantic_map
        self._invalidate()

    def unregister(self, type_name: str) -> None:
        """Remove a previously registered custom map."""
        del self._by_type[type_name]
        self._invalidate()

    def set_protocol_dispatch(self, enabled: bool) -> None:
        """Enable/disable the default payload-protocol dispatch.

        Disabling it models running the collector on a VM where only
        explicitly described custom collections are profiled.
        """
        self._protocol_enabled = enabled
        self._invalidate()

    def lookup(self, obj: HeapObject) -> Optional[SemanticMap]:
        """Find the semantic map for ``obj``, or ``None`` for plain data."""
        if obj.sm_version == self._version:
            return obj.sm_map
        custom = self._by_type.get(obj.type_name)
        if custom is not None and custom.matches(obj):
            result: Optional[SemanticMap] = custom
        elif self._protocol_enabled and self._protocol_map.matches(obj):
            result = self._protocol_map
        else:
            result = None
        obj.sm_version = self._version
        obj.sm_map = result
        return result

    def registered_types(self) -> Iterable[str]:
        """Names with explicitly registered maps."""
        return self._by_type.keys()
