"""GC-cycle statistics (Table 3) and their cross-cycle aggregation (Table 1).

Every garbage-collection cycle the collection-aware collector computes a
:class:`GcCycleStats` snapshot: overall live data, collection live/used/core
data, live collection counts, a per-type breakdown, and a per-allocation-
context breakdown.  These are exactly the rows of Table 3 in the paper.

Across cycles the snapshots are folded into :class:`HeapAggregate` values
(total and max, as in Table 1) and appended to a :class:`HeapTimeline`,
which is the data behind Fig. 2 (TVLA's live/used/core percentages per GC
cycle) and Fig. 8 (bloat's collection spike).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "ContextCycleStats",
    "GcCycleStats",
    "HeapAggregate",
    "ContextHeapAggregate",
    "HeapTimeline",
]


@dataclass
class ContextCycleStats:
    """Per-allocation-context slice of one GC cycle."""

    context_id: int
    live: int = 0
    used: int = 0
    core: int = 0
    object_count: int = 0

    def add(self, live: int, used: int, core: int) -> None:
        """Fold one collection instance's footprint into this context."""
        self.live += live
        self.used += used
        self.core += core
        self.object_count += 1

    @property
    def potential(self) -> int:
        """This cycle's potential saving at the context (live - used)."""
        return self.live - self.used


@dataclass
class GcCycleStats:
    """One cycle's collection-aware statistics (Table 3).

    Attributes:
        cycle: 1-based GC cycle index.
        tick: Virtual time at which the cycle ran.
        live_data: Bytes of all reachable objects.
        collection_live: Bytes of reachable collection ADTs.
        collection_used: Used bytes of reachable collection ADTs.
        collection_core: Core bytes of reachable collection ADTs.
        collection_objects: Number of reachable collection ADTs.
        type_distribution: Live-byte breakdown per simulated type, with
            collection internals attributed to the owning ADT's type.
        per_context: Per-allocation-context collection statistics.
        kind: Cycle flavour: ``"full"`` for the base collector, or
            ``"minor"``/``"full"`` under the generational collector.
        freed_bytes: Garbage reclaimed by the sweep.
        freed_objects: Objects reclaimed by the sweep.
    """

    cycle: int
    tick: int = 0
    kind: str = "full"
    live_data: int = 0
    collection_live: int = 0
    collection_used: int = 0
    collection_core: int = 0
    collection_objects: int = 0
    type_distribution: Dict[str, int] = field(default_factory=dict)
    per_context: Dict[int, ContextCycleStats] = field(default_factory=dict)
    freed_bytes: int = 0
    freed_objects: int = 0

    def context(self, context_id: int) -> ContextCycleStats:
        """The (created-on-demand) per-context slice for ``context_id``."""
        stats = self.per_context.get(context_id)
        if stats is None:
            stats = ContextCycleStats(context_id)
            self.per_context[context_id] = stats
        return stats

    def add_type_bytes(self, type_name: str, size: int) -> None:
        """Attribute ``size`` live bytes to ``type_name``."""
        self.type_distribution[type_name] = (
            self.type_distribution.get(type_name, 0) + size
        )

    @property
    def collection_fraction(self) -> float:
        """Fraction of live data occupied by collections (Fig. 2 'live')."""
        return self.collection_live / self.live_data if self.live_data else 0.0

    @property
    def used_fraction(self) -> float:
        """Fraction of live data that is used collection space."""
        return self.collection_used / self.live_data if self.live_data else 0.0

    @property
    def core_fraction(self) -> float:
        """Fraction of live data that is core collection space."""
        return self.collection_core / self.live_data if self.live_data else 0.0


@dataclass
class HeapAggregate:
    """Total-and-max aggregation of one heap metric across GC cycles.

    Table 1 reports every heap metric both as a *total* (sum over all GC
    cycles -- a byte-cycles integral that weights long-lived space more)
    and a *max* (the worst single cycle).
    """

    total: int = 0
    max: int = 0
    cycles: int = 0

    def observe(self, value: int) -> None:
        """Fold one cycle's value into the aggregate."""
        self.total += value
        if value > self.max:
            self.max = value
        self.cycles += 1

    @property
    def mean(self) -> float:
        """Average per observed cycle."""
        return self.total / self.cycles if self.cycles else 0.0


@dataclass
class ContextHeapAggregate:
    """Cross-cycle heap aggregates for one allocation context."""

    context_id: int
    live: HeapAggregate = field(default_factory=HeapAggregate)
    used: HeapAggregate = field(default_factory=HeapAggregate)
    core: HeapAggregate = field(default_factory=HeapAggregate)
    object_count: HeapAggregate = field(default_factory=HeapAggregate)

    def observe_cycle(self, stats: ContextCycleStats) -> None:
        """Fold one cycle's context slice into the aggregates."""
        self.live.observe(stats.live)
        self.used.observe(stats.used)
        self.core.observe(stats.core)
        self.object_count.observe(stats.object_count)

    @property
    def total_potential(self) -> int:
        """Aggregate potential saving: totLive - totUsed (section 3.3)."""
        return self.live.total - self.used.total

    @property
    def max_potential(self) -> int:
        """Peak-cycle potential saving: maxLive - maxUsed."""
        return self.live.max - self.used.max


class HeapTimeline:
    """The full per-cycle history plus Table 1 heap aggregates.

    This is the collector-side output of a run: Fig. 2 and Fig. 8 plot
    ``cycles`` directly, while the rule engine consumes the per-context
    aggregates.
    """

    def __init__(self) -> None:
        self.cycles: List[GcCycleStats] = []
        self.overall_live = HeapAggregate()
        self.collection_live = HeapAggregate()
        self.collection_used = HeapAggregate()
        self.collection_core = HeapAggregate()
        self.collection_objects = HeapAggregate()
        self.per_context: Dict[int, ContextHeapAggregate] = {}

    def record(self, stats: GcCycleStats) -> None:
        """Append one cycle and update every aggregate."""
        self.cycles.append(stats)
        self.overall_live.observe(stats.live_data)
        self.collection_live.observe(stats.collection_live)
        self.collection_used.observe(stats.collection_used)
        self.collection_core.observe(stats.collection_core)
        self.collection_objects.observe(stats.collection_objects)
        for context_id, ctx_stats in stats.per_context.items():
            agg = self.per_context.get(context_id)
            if agg is None:
                agg = ContextHeapAggregate(context_id)
                self.per_context[context_id] = agg
            agg.observe_cycle(ctx_stats)

    def context(self, context_id: int) -> Optional[ContextHeapAggregate]:
        """Heap aggregates for ``context_id``, if any cycle saw it."""
        return self.per_context.get(context_id)

    @property
    def cycle_count(self) -> int:
        """Number of GC cycles recorded."""
        return len(self.cycles)

    @property
    def max_live_data(self) -> int:
        """Peak live data over the run (the footprint headline)."""
        return self.overall_live.max

    def fractions_series(self) -> List[tuple]:
        """(cycle, live%, used%, core%) rows -- the Fig. 2 series."""
        return [
            (s.cycle, s.collection_fraction, s.used_fraction, s.core_fraction)
            for s in self.cycles
        ]

    def contexts_by_total_potential(self) -> List[ContextHeapAggregate]:
        """Contexts ranked by aggregate potential saving, best first."""
        return sorted(self.per_context.values(),
                      key=lambda a: a.total_potential, reverse=True)
