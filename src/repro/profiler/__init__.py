"""Semantic collections profiling: counters, aggregates, reports."""

from repro.profiler.context_info import ContextInfo
from repro.profiler.counters import MUTATING_OPS, OP_BY_DSL_NAME, READ_OPS, Op
from repro.profiler.object_info import ObjectContextInfo
from repro.profiler.profiler import SemanticProfiler
from repro.profiler.report import ContextProfile, ProfileReport, build_report
from repro.profiler.stability import StabilityPolicy, StabilityVerdict
from repro.profiler.welford import Welford

__all__ = [
    "ContextInfo", "MUTATING_OPS", "OP_BY_DSL_NAME", "READ_OPS", "Op",
    "ObjectContextInfo", "SemanticProfiler", "ContextProfile",
    "ProfileReport", "build_report", "StabilityPolicy", "StabilityVerdict",
    "Welford",
]
