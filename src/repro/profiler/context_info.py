"""Per-allocation-context aggregation (the paper's ``ContextInfo``).

A :class:`ContextInfo` holds everything Table 1 lists for one allocation
context, aggregated over the collection instances that were allocated
there:

* the number of instances (allocated / already dead);
* per-operation Welford aggregates -- average and standard deviation of
  each operation count over instances (``#add`` and ``@add`` in the rule
  language);
* the Welford aggregate of per-instance *maximal size* (``maxSize`` /
  ``@maxSize``);
* the distribution of initial capacities.

The heap-side statistics of Table 1 (total/max collection live, used and
core data per context) are produced by the collector on every GC cycle and
live in :class:`repro.memory.stats.ContextHeapAggregate`; the rule engine
joins the two views through :class:`ContextProfile` in
:mod:`repro.profiler.report`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.profiler.counters import N_OPS, OPS, Op
from repro.profiler.object_info import ObjectContextInfo
from repro.profiler.welford import Welford

__all__ = ["ContextInfo"]


class ContextInfo:
    """Table 1 trace statistics for one allocation context.

    Per-operation aggregates live in a flat array parallel to the dense
    operation vocabulary (:data:`~repro.profiler.counters.OPS`); a slot
    stays ``None`` until its operation is first observed, so absorbing an
    instance costs one array scan instead of two dict merges.
    """

    def __init__(self, context_id: int, src_type: str) -> None:
        self.context_id = context_id
        self.src_type = src_type
        self.impl_names: Set[str] = set()
        self.instances_allocated = 0
        self.instances_dead = 0
        self._op_stats: List[Optional[Welford]] = [None] * N_OPS
        # Indices whose slot is live, so absorb visits only observed ops
        # instead of scanning the whole vocabulary per instance.
        self._active_ops: List[int] = []
        self.max_size_stats = Welford()
        self.final_size_stats = Welford()
        self.initial_capacity_stats = Welford()
        self.total_ops = 0
        self.swap_count = 0

    @property
    def op_stats(self) -> Dict[Op, Welford]:
        """Sparse ``{Op: Welford}`` view of the flat aggregate array."""
        return {op: stat for op, stat in zip(OPS, self._op_stats)
                if stat is not None}

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def on_allocation(self, impl_name: str) -> None:
        """Register one new instance at this context."""
        self.instances_allocated += 1
        self.impl_names.add(impl_name)

    def absorb(self, info: ObjectContextInfo) -> None:
        """Fold a dead (or end-of-run live) instance's record in.

        Every operation in the vocabulary is observed -- an instance that
        never performed ``#contains`` contributes a 0 observation, so the
        per-op mean really is "average per instance at this context".
        """
        if info.context_id != self.context_id:
            raise ValueError(
                f"instance belongs to context {info.context_id}, "
                f"not {self.context_id}")
        prior_dead = self.instances_dead
        self.instances_dead += 1
        counts = info.counts
        total = sum(counts)
        self.total_ops += total
        self.swap_count += info.swap_count
        stats = self._op_stats
        seen = 0
        for index in self._active_ops:
            count = counts[index]
            stats[index].observe(count)
            seen += count
        if seen != total:
            # The instance performed an op with no aggregate yet: one
            # vocabulary scan to create the missing slots.  (`seen` only
            # equals `total` when every nonzero count hit an active
            # slot, since counts are non-negative.)
            for index in range(N_OPS):
                count = counts[index]
                if count and stats[index] is None:
                    stat = Welford()
                    # Backfill zeros for instances absorbed before this
                    # op was first seen, keeping all op aggregates over
                    # the same observation count.
                    for _ in range(prior_dead):
                        stat.observe(0)
                    stat.observe(count)
                    stats[index] = stat
                    self._active_ops.append(index)
        self.max_size_stats.observe(info.max_size)
        self.final_size_stats.observe(info.final_size)
        if info.initial_capacity is not None:
            self.initial_capacity_stats.observe(info.initial_capacity)

    # ------------------------------------------------------------------
    # Rule-language accessors
    # ------------------------------------------------------------------
    def op_mean(self, op: Op) -> float:
        """``#op`` in the rule language: average count per instance."""
        stat = self._op_stats[op.index]
        return stat.mean if stat is not None else 0.0

    def op_stddev(self, op: Op) -> float:
        """``@op``: standard deviation of the count across instances."""
        stat = self._op_stats[op.index]
        return stat.stddev if stat is not None else 0.0

    def op_total(self, op: Op) -> float:
        """Total count of ``op`` summed over absorbed instances."""
        stat = self._op_stats[op.index]
        return stat.total if stat is not None else 0.0

    @property
    def all_ops_mean(self) -> float:
        """``#allOps``: average total operations per instance."""
        if self.instances_dead == 0:
            return 0.0
        return self.total_ops / self.instances_dead

    @property
    def avg_max_size(self) -> float:
        """``maxSize``: average maximal size across instances."""
        return self.max_size_stats.mean if self.max_size_stats.count else 0.0

    @property
    def max_max_size(self) -> float:
        """Largest maximal size any instance at this context reached."""
        return self.max_size_stats.max if self.max_size_stats.count else 0.0

    @property
    def max_size_stddev(self) -> float:
        """``@maxSize``: size-stability input for Definition 3.1."""
        return self.max_size_stats.stddev

    @property
    def avg_initial_capacity(self) -> float:
        """``initialCapacity``: average explicit initial capacity."""
        if self.initial_capacity_stats.count == 0:
            return 0.0
        return self.initial_capacity_stats.mean

    def operation_distribution(self) -> Dict[Op, float]:
        """Fraction of total operations per op kind (the Fig. 3 circles)."""
        totals = {op: stat.total for op, stat in zip(OPS, self._op_stats)
                  if stat is not None and stat.total > 0}
        grand = sum(totals.values())
        if grand == 0:
            return {}
        return {op: total / grand for op, total in totals.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ContextInfo ctx={self.context_id} {self.src_type} "
                f"n={self.instances_allocated} dead={self.instances_dead} "
                f"avgMaxSize={self.avg_max_size:.2f}>")
