"""The operation vocabulary tracked by the semantic profiler.

Chameleon does not record full operation sequences ("prohibitive cost",
section 3.2.2); it records the *distribution* of operations per allocation
context.  This module defines the operation alphabet: every collection
operation the library can perform, plus the two argument-side counters the
paper singles out -- ``copied`` (the collection was the *source* of an
``addAll``/``putAll``/copy-construction) and ``iterEmpty`` (an iterator was
created over the collection while it was empty).

Each operation knows its DSL spelling (``#add``, ``#get(int)``,
``#get(Object)``...) so the Fig. 4 rule language and the profiler agree on
names.

The vocabulary is resolved to a *dense index* exactly once, at import:
every member carries an ``index`` attribute into the flat counter arrays
used by :class:`~repro.profiler.object_info.ObjectContextInfo` and
:class:`~repro.profiler.context_info.ContextInfo`, so the per-operation
hot path is one list-index increment instead of a dict update.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

__all__ = ["Op", "OPS", "N_OPS", "OP_INDEX", "OP_BY_DSL_NAME",
           "MUTATING_OPS", "READ_OPS"]


class Op(enum.Enum):
    """One trackable collection operation (or argument-side event)."""

    # -- growth -----------------------------------------------------------
    ADD = "#add"
    ADD_INDEX = "#add(int)"
    ADD_ALL = "#addAll"
    ADD_ALL_INDEX = "#addAll(int)"
    PUT = "#put"
    PUT_ALL = "#putAll"

    # -- reads ------------------------------------------------------------
    GET_INDEX = "#get(int)"
    GET_OBJECT = "#get(Object)"
    CONTAINS = "#contains"
    CONTAINS_KEY = "#containsKey"
    CONTAINS_VALUE = "#containsValue"
    INDEX_OF = "#indexOf"
    SIZE = "#size"
    IS_EMPTY = "#isEmpty"
    TO_ARRAY = "#toArray"

    # -- removal ----------------------------------------------------------
    REMOVE_OBJECT = "#remove"
    REMOVE_INDEX = "#remove(int)"
    REMOVE_FIRST = "#removeFirst"
    REMOVE_KEY = "#removeKey"
    CLEAR = "#clear"

    # -- updates ----------------------------------------------------------
    SET_INDEX = "#set(int)"

    # -- iteration ----------------------------------------------------------
    ITERATE = "#iterator"

    # -- argument-side events (section 3.2.2) -------------------------------
    COPIED = "#copied"
    ITER_EMPTY = "#iterEmpty"

    @property
    def dsl_name(self) -> str:
        """The spelling used in the Fig. 4 rule language."""
        return self.value


OPS: Tuple[Op, ...] = tuple(Op)
"""The operation vocabulary in dense-index order."""

N_OPS: int = len(OPS)
"""Size of the vocabulary (length of every flat counter array)."""

for _index, _op in enumerate(OPS):
    _op.index = _index  # type: ignore[attr-defined]
del _index, _op

OP_INDEX: Dict[Op, int] = {op: op.index for op in OPS}
"""Op -> dense index (``op.index`` is the attribute form used on hot
paths; this dict serves generic callers)."""

OP_BY_DSL_NAME: Dict[str, Op] = {op.dsl_name: op for op in Op}
"""Reverse lookup used by the rule parser (``#add(int)`` -> ``ADD_INDEX``)."""


MUTATING_OPS = frozenset({
    Op.ADD, Op.ADD_INDEX, Op.ADD_ALL, Op.ADD_ALL_INDEX, Op.PUT, Op.PUT_ALL,
    Op.REMOVE_OBJECT, Op.REMOVE_INDEX, Op.REMOVE_FIRST, Op.REMOVE_KEY,
    Op.CLEAR, Op.SET_INDEX,
})
"""Operations that change collection contents."""


READ_OPS = frozenset({
    Op.GET_INDEX, Op.GET_OBJECT, Op.CONTAINS, Op.CONTAINS_KEY,
    Op.CONTAINS_VALUE, Op.INDEX_OF, Op.SIZE, Op.IS_EMPTY, Op.TO_ARRAY,
    Op.ITERATE,
})
"""Operations that only observe collection contents."""
