"""Per-instance usage records (the paper's ``ObjectContextInfo``).

While a profiled collection instance is alive, its wrapper updates a small
:class:`ObjectContextInfo`: one counter per operation kind, the maximal
size observed, and the initial capacity.  When the instance dies (GC death
hook, the analog of the paper's selective finalizers) the record is folded
into the :class:`~repro.profiler.context_info.ContextInfo` of its
allocation context and discarded.

The paper stresses that these objects are "usually very small (few words)"
so finalization stays cheap; correspondingly this class is ``__slots__``-ed
and its operation counters are one flat integer array indexed by the dense
operation vocabulary (:data:`~repro.profiler.counters.OPS`), so the
per-operation hot path is a single list-index increment.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.profiler.counters import N_OPS, OPS, Op

__all__ = ["ObjectContextInfo"]


class ObjectContextInfo:
    """Usage profile of one live collection instance."""

    __slots__ = ("context_id", "src_type", "impl_name", "initial_capacity",
                 "counts", "max_size", "final_size", "swap_count",
                 "_registry_key")

    def __init__(self, context_id: int, src_type: str, impl_name: str,
                 initial_capacity: Optional[int] = None) -> None:
        self.context_id = context_id
        self.src_type = src_type
        self.impl_name = impl_name
        self.initial_capacity = initial_capacity
        self.counts: List[int] = [0] * N_OPS
        self.max_size = 0
        self.final_size = 0
        self.swap_count = 0
        self._registry_key: Optional[int] = None

    def record_op(self, op: Op) -> None:
        """Count one operation event."""
        self.counts[op.index] += 1

    @property
    def op_counts(self) -> Dict[Op, int]:
        """Sparse ``{Op: count}`` view of the flat counter array."""
        return {op: count for op, count in zip(OPS, self.counts) if count}

    def record_size(self, size: int) -> None:
        """Track the running and maximal collection size."""
        self.final_size = size
        if size > self.max_size:
            self.max_size = size

    def record_op_size(self, op_index: int, size: int) -> None:
        """Fused :meth:`record_op` + :meth:`record_size` for a mutation.

        The ``vm_core="fast"`` wrapper plans pre-resolve ``op.index`` to
        a plain integer, so one call updates both the dense counter
        array and the size watermark -- half the call overhead of the
        reference pair on every recorded mutation.
        """
        self.counts[op_index] += 1
        self.final_size = size
        if size > self.max_size:
            self.max_size = size

    def record_copied(self) -> None:
        """This instance was the source of an addAll/putAll/copy-ctor."""
        self.record_op(Op.COPIED)

    def record_iteration(self, empty: bool) -> None:
        """An iterator was created; flag it if the collection was empty."""
        self.record_op(Op.ITERATE)
        if empty:
            self.record_op(Op.ITER_EMPTY)

    def record_swap(self) -> None:
        """The backing implementation was swapped (SizeAdapting/online)."""
        self.swap_count += 1

    def count(self, op: Op) -> int:
        """The recorded count of ``op`` (0 if never seen)."""
        return self.counts[op.index]

    @property
    def total_ops(self) -> int:
        """``#allOps``: every recorded event, including argument-side ones.

        Including ``COPIED`` is what makes the Table 2 temporaries rule
        ``#allOps == #copied`` satisfiable for a nonempty collection that
        was filled by copy-construction and then only ever copied out of.
        """
        return sum(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ObjectContextInfo ctx={self.context_id} {self.src_type}"
                f"/{self.impl_name} maxSize={self.max_size} "
                f"ops={self.total_ops}>")
