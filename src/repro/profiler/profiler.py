"""The semantic profiler facade.

This is the library half of Chameleon's instrumentation (Fig. 5): it hands
out :class:`ObjectContextInfo` records to collection wrappers at allocation
time (subject to the sampling policy), and folds them into per-context
:class:`ContextInfo` aggregates when instances die.  The VM half -- the
collection-aware GC -- feeds per-context heap statistics into the
:class:`~repro.memory.stats.HeapTimeline`; the two views are joined by
:mod:`repro.profiler.report`.

Death notification uses the heap's death hooks (the analog of the paper's
selective finalizers on ``ObjectContextInfo``); instances still alive when
the run ends are folded in by :meth:`SemanticProfiler.flush`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.profiler.context_info import ContextInfo
from repro.profiler.object_info import ObjectContextInfo
from repro.runtime.sampling import AlwaysSample, SamplingPolicy

__all__ = ["SemanticProfiler"]


class SemanticProfiler:
    """Collects and aggregates per-context collection usage statistics."""

    def __init__(self, sampling: Optional[SamplingPolicy] = None) -> None:
        self.sampling = sampling or AlwaysSample()
        self.enabled = True
        self._contexts: Dict[int, ContextInfo] = {}
        self._live: Dict[int, ObjectContextInfo] = {}
        self._next_instance_id = 1
        # Run-level counters for overhead accounting / reports.
        self.sampled_allocations = 0
        self.unsampled_allocations = 0

    # ------------------------------------------------------------------
    # Allocation-side API (called by wrappers)
    # ------------------------------------------------------------------
    def should_sample(self, src_type: str) -> bool:
        """Whether the next allocation of ``src_type`` should be profiled.

        Consults the sampling policy exactly once; callers must call this
        once per allocation (the policy's counters advance).
        """
        if not self.enabled:
            return False
        return self.sampling.should_sample(src_type)

    def on_allocation(self, context_id: int, src_type: str, impl_name: str,
                      initial_capacity: Optional[int] = None,
                      ) -> ObjectContextInfo:
        """Create the per-instance record for a sampled allocation."""
        info = ObjectContextInfo(context_id, src_type, impl_name,
                                 initial_capacity)
        key = self._next_instance_id
        self._next_instance_id += 1
        self._live[key] = info
        info_context = self._context(context_id, src_type)
        info_context.on_allocation(impl_name)
        self.sampled_allocations += 1
        # Stash the registry key on the record so death hooks can find it.
        info._registry_key = key  # type: ignore[attr-defined]
        return info

    def on_unsampled_allocation(self, src_type: str) -> None:
        """Count an allocation that the sampling policy skipped."""
        self.unsampled_allocations += 1

    # ------------------------------------------------------------------
    # Death-side API (GC hooks / end of run)
    # ------------------------------------------------------------------
    def on_death(self, info: ObjectContextInfo) -> None:
        """Fold a dying instance's record into its context aggregate."""
        key = getattr(info, "_registry_key", None)
        if key is not None and key in self._live:
            del self._live[key]
        context = self._context(info.context_id, info.src_type)
        context.absorb(info)
        self.sampling.observe_potential(info.src_type, 0)

    def flush(self) -> int:
        """Fold every still-live instance in (end of run).

        Returns the number of instances flushed.
        """
        live = list(self._live.values())
        self._live.clear()
        for info in live:
            self._context(info.context_id, info.src_type).absorb(info)
        return len(live)

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------
    def context_info(self, context_id: int) -> Optional[ContextInfo]:
        """The aggregate for ``context_id``, if any instance was profiled."""
        return self._contexts.get(context_id)

    def snapshot_context(self, context_id: int) -> Optional[ContextInfo]:
        """A point-in-time aggregate that also folds in the *live*
        instances at ``context_id`` (without disturbing their records).

        This is what lets the online mode decide "based on partial
        information" (section 3.3.2) for contexts whose collections never
        die -- TVLA's immortal abstract-state maps being the motivating
        case.
        """
        import copy

        base = self._contexts.get(context_id)
        if base is None:
            return None
        snapshot = copy.deepcopy(base)
        for info in self._live.values():
            if info.context_id == context_id:
                snapshot.absorb(info)
        return snapshot

    def contexts(self) -> Iterable[ContextInfo]:
        """All per-context aggregates."""
        return self._contexts.values()

    @property
    def live_instance_count(self) -> int:
        """Profiled instances not yet absorbed."""
        return len(self._live)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _context(self, context_id: int, src_type: str) -> ContextInfo:
        context = self._contexts.get(context_id)
        if context is None:
            context = ContextInfo(context_id, src_type)
            self._contexts[context_id] = context
        return context
