"""Joined profiling views and report rendering.

The trace half of Table 1 lives in :class:`ContextInfo` (library
counters); the heap half lives in :class:`ContextHeapAggregate` (collector
statistics).  :class:`ContextProfile` joins the two for one allocation
context, and :class:`ProfileReport` assembles the run-level picture: the
ranked list of contexts by space-saving potential (the tool output of
Fig. 3) and the per-cycle fraction series (Fig. 2 / Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.memory.stats import ContextHeapAggregate, HeapTimeline
from repro.profiler.context_info import ContextInfo
from repro.profiler.profiler import SemanticProfiler
from repro.runtime.context import ContextKey, ContextRegistry

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.collections.base import CollectionKind

__all__ = ["ContextProfile", "ProfileReport", "build_report"]


@dataclass
class ContextProfile:
    """Everything known about one allocation context after a run."""

    context_id: int
    key: Optional[ContextKey]
    info: ContextInfo
    heap: Optional[ContextHeapAggregate]
    kind: Optional["CollectionKind"]

    @property
    def src_type(self) -> str:
        """The program-visible collection type allocated here."""
        return self.info.src_type

    @property
    def total_potential(self) -> int:
        """Aggregate saving potential: totLive - totUsed over all cycles."""
        return self.heap.total_potential if self.heap is not None else 0

    @property
    def max_potential(self) -> int:
        """Peak-cycle saving potential: maxLive - maxUsed."""
        return self.heap.max_potential if self.heap is not None else 0

    def render_context(self) -> str:
        """``Type:frame;frame`` -- the paper's suggestion format."""
        frames = self.key.render() if self.key is not None else "<unknown>"
        return f"{self.src_type}:{frames}"

    def to_dict(self) -> dict:
        """A JSON-serialisable view of this context's statistics."""
        info = self.info
        data = {
            "context": self.render_context(),
            "srcType": self.src_type,
            "kind": self.kind.value if self.kind is not None else None,
            "instances": info.instances_allocated,
            "deadInstances": info.instances_dead,
            "implementations": sorted(info.impl_names),
            "avgMaxSize": info.avg_max_size,
            "maxSizeStddev": info.max_size_stddev,
            "initialCapacity": info.avg_initial_capacity,
            "allOps": info.all_ops_mean,
            "operations": {op.dsl_name: stat.mean
                           for op, stat in info.op_stats.items()
                           if stat.total > 0},
            "totalPotential": self.total_potential,
            "maxPotential": self.max_potential,
        }
        if self.heap is not None:
            data["heap"] = {
                "totLive": self.heap.live.total,
                "maxLive": self.heap.live.max,
                "totUsed": self.heap.used.total,
                "maxUsed": self.heap.used.max,
                "totCore": self.heap.core.total,
                "maxCore": self.heap.core.max,
                "maxLiveCount": self.heap.object_count.max,
            }
        return data


class ProfileReport:
    """Run-level profiling summary: ranked contexts + heap timeline."""

    def __init__(self, profiles: List[ContextProfile],
                 timeline: HeapTimeline) -> None:
        self.profiles = profiles
        self.timeline = timeline
        self._by_id: Dict[int, ContextProfile] = {
            profile.context_id: profile for profile in profiles}

    def context(self, context_id: int) -> Optional[ContextProfile]:
        """The profile for ``context_id``, if present."""
        return self._by_id.get(context_id)

    def top_contexts(self, n: int = 4,
                     by: str = "total_potential") -> List[ContextProfile]:
        """The ``n`` contexts with the largest saving potential.

        ``by`` selects the ranking aggregate: ``total_potential`` (default,
        the paper's sort) or ``max_potential``.
        """
        key = (lambda p: p.max_potential) if by == "max_potential" else (
            lambda p: p.total_potential)
        return sorted(self.profiles, key=key, reverse=True)[:n]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_top_contexts(self, n: int = 4) -> str:
        """Fig. 3-style text: per-context potential and op distribution."""
        total_live = self.timeline.overall_live.total or 1
        lines = [f"Top {n} allocation contexts by space-saving potential:"]
        for rank, profile in enumerate(self.top_contexts(n), start=1):
            percent = 100.0 * profile.total_potential / total_live
            lines.append(
                f"{rank}: {profile.render_context()}  "
                f"potential={profile.total_potential}B "
                f"({percent:.1f}% of live-byte-cycles)  "
                f"instances={profile.info.instances_allocated} "
                f"avgMaxSize={profile.info.avg_max_size:.1f}")
            distribution = profile.info.operation_distribution()
            if distribution:
                ops = "  ".join(
                    f"{op.dsl_name}={fraction:.0%}"
                    for op, fraction in sorted(
                        distribution.items(),
                        key=lambda item: item[1], reverse=True)[:6])
                lines.append(f"   ops: {ops}")
        return "\n".join(lines)

    def to_dict(self, top: Optional[int] = None) -> dict:
        """A JSON-serialisable view of the whole report."""
        profiles = (self.top_contexts(top) if top is not None
                    else sorted(self.profiles,
                                key=lambda p: p.total_potential,
                                reverse=True))
        return {
            "gcCycles": self.timeline.cycle_count,
            "maxLiveData": self.timeline.max_live_data,
            "collectionLiveMax": self.timeline.collection_live.max,
            "collectionUsedMax": self.timeline.collection_used.max,
            "collectionCoreMax": self.timeline.collection_core.max,
            "fractions": [
                {"cycle": cycle, "live": live, "used": used, "core": core}
                for cycle, live, used, core in
                self.timeline.fractions_series()],
            "contexts": [profile.to_dict() for profile in profiles],
        }

    def render_fractions(self) -> str:
        """Fig. 2-style text: per-GC-cycle live/used/core percentages."""
        lines = ["cycle  live%  used%  core%"]
        for cycle, live, used, core in self.timeline.fractions_series():
            lines.append(f"{cycle:5d}  {100 * live:5.1f}  {100 * used:5.1f}"
                         f"  {100 * core:5.1f}")
        return "\n".join(lines)


def build_report(profiler: SemanticProfiler, timeline: HeapTimeline,
                 contexts: ContextRegistry) -> ProfileReport:
    """Join trace and heap statistics into a :class:`ProfileReport`."""
    from repro.collections.registry import default_registry

    registry = default_registry()
    profiles: List[ContextProfile] = []
    for info in profiler.contexts():
        try:
            key = contexts.describe(info.context_id)
        except KeyError:
            key = None
        try:
            kind = registry.kind_of(info.src_type)
        except KeyError:
            kind = None
        profiles.append(ContextProfile(
            context_id=info.context_id,
            key=key,
            info=info,
            heap=timeline.context(info.context_id),
            kind=kind))
    return ProfileReport(profiles, timeline)
