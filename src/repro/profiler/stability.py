"""The stability metric of Definition 3.1 and its gating policy.

    "We define the stability of a metric in a partial allocation context c
    as the standard deviation of that metric in the usage profile of
    collections allocated in c."  (section 3.2.1)

A selection rule should only fire when the metrics it reads are *stable*:
replacing a HashMap with an ArrayMap because sizes are small is only safe
if the sizes at the context really cluster around a small value.  The
paper's implementation requires size values to be tight while leaving
operation counts unrestricted; :class:`StabilityPolicy` encodes exactly
that default and lets callers tighten or loosen each class of metric.

Size distributions are "often biased around a single value (e.g. 1), with
a long tail", so in addition to an absolute standard-deviation cap the
policy supports a relative cap (coefficient of variation) that scales with
the mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.profiler.context_info import ContextInfo
from repro.profiler.welford import Welford

__all__ = ["StabilityPolicy", "StabilityVerdict"]


@dataclass(frozen=True)
class StabilityVerdict:
    """Outcome of a stability check, with the measured dispersion."""

    stable: bool
    stddev: float
    threshold: float
    metric: str

    def __bool__(self) -> bool:
        return self.stable


@dataclass(frozen=True)
class StabilityPolicy:
    """Per-metric-class stability thresholds.

    Attributes:
        size_stddev_cap: Absolute standard-deviation cap for size metrics.
        size_cv_cap: Relative cap -- sizes are also accepted when
            ``stddev <= size_cv_cap * mean`` (long-tail tolerance).
        op_stddev_cap: Cap for operation counts; ``None`` means operation
            counts are not restricted (the paper's default).
        min_instances: Minimum dead instances before any metric at a
            context is trusted ("reasonable statistical confidence").
    """

    size_stddev_cap: float = 2.0
    size_cv_cap: float = 0.5
    op_stddev_cap: Optional[float] = None
    min_instances: int = 3

    def check_size(self, stats: Welford, metric: str = "maxSize"
                   ) -> StabilityVerdict:
        """Whether a size metric is tight enough to act on."""
        if stats.count < self.min_instances:
            return StabilityVerdict(False, math.inf, self.size_stddev_cap,
                                    metric)
        threshold = max(self.size_stddev_cap,
                        self.size_cv_cap * abs(stats.mean))
        return StabilityVerdict(stats.stddev <= threshold, stats.stddev,
                                threshold, metric)

    def check_ops(self, stats: Welford, metric: str = "opCount"
                  ) -> StabilityVerdict:
        """Whether an operation-count metric is stable (default: always)."""
        if self.op_stddev_cap is None:
            return StabilityVerdict(True, stats.stddev, math.inf, metric)
        if stats.count < self.min_instances:
            return StabilityVerdict(False, math.inf, self.op_stddev_cap,
                                    metric)
        return StabilityVerdict(stats.stddev <= self.op_stddev_cap,
                                stats.stddev, self.op_stddev_cap, metric)

    def context_is_stable(self, info: ContextInfo) -> StabilityVerdict:
        """Overall gate used by the rule engine before any size-sensitive
        replacement: enough instances, and the max-size metric is tight."""
        if info.instances_dead < self.min_instances:
            return StabilityVerdict(False, math.inf, self.size_stddev_cap,
                                    "instances")
        return self.check_size(info.max_size_stats)

    @classmethod
    def permissive(cls) -> "StabilityPolicy":
        """No gating at all -- the ablation baseline showing misfires."""
        return cls(size_stddev_cap=math.inf, size_cv_cap=math.inf,
                   op_stddev_cap=None, min_instances=1)
