"""Streaming mean/variance accumulator (Welford's algorithm).

Table 1 reports, per allocation context, the *average* and *standard
deviation* of every operation count and of the maximal collection size.
Those aggregates are computed over the stream of dying collection
instances, one observation per instance, without storing the stream --
exactly what Welford's online algorithm provides.
"""

from __future__ import annotations

import math

__all__ = ["Welford"]


class Welford:
    """Online mean / variance / extrema over a stream of numbers."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Welford") -> None:
        """Fold another accumulator into this one (Chan's parallel merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self.mean * self.count

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than two observations)."""
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation -- the paper's stability measure."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Welford n={self.count} mean={self.mean:.3f} "
                f"sd={self.stddev:.3f}>")
