"""The Fig. 4 rule language, Table 2 rules, and the selection engine."""

from repro.rules.ast import (Action, ActionKind, CAPACITY_MAX_SIZE, Rule)
from repro.rules.builtin import (BUILTIN_RULES, DEFAULT_CONSTANTS, RuleSpec,
                                 builtin_rules)
from repro.rules.engine import RuleEngine
from repro.rules.evaluator import (EvaluationError, RuleEnvironment,
                                   evaluate_condition, evaluate_expression)
from repro.rules.lexer import LexError, tokenize
from repro.rules.parser import ParseError, parse_condition, parse_rule
from repro.rules.suggestions import RuleCategory, Suggestion

__all__ = [
    "Action", "ActionKind", "CAPACITY_MAX_SIZE", "Rule", "BUILTIN_RULES",
    "DEFAULT_CONSTANTS", "RuleSpec", "builtin_rules", "RuleEngine",
    "EvaluationError", "RuleEnvironment", "evaluate_condition",
    "evaluate_expression", "LexError", "tokenize", "ParseError",
    "parse_condition", "parse_rule", "RuleCategory", "Suggestion",
]
