"""AST for the Fig. 4 implementation-selection rule language.

A rule has the shape::

    srcType : cond -> action

where ``cond`` is a boolean combination of comparisons over the Table 1
metrics (operation counts ``#add``/``#get(int)``, count variances
``@add``, trace data ``maxSize``/``initialCapacity``, heap data
``totLive``/``maxUsed``/...), and ``action`` is either a replacement
implementation (optionally with a capacity argument) or one of the
advice-only fixes of Table 2 (``setCapacity``, ``avoid``,
``eliminateTemporaries``, ``emptyIterator``).

Nodes are frozen dataclasses; evaluation lives in
:mod:`repro.rules.evaluator`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.profiler.counters import Op

__all__ = [
    "Expr", "Number", "ConstRef", "OpCount", "OpVariance", "DataRef",
    "BinaryOp", "Condition", "Comparison", "AndCond", "OrCond", "NotCond",
    "ActionKind", "Action", "Rule", "CAPACITY_MAX_SIZE",
]


class Expr:
    """Base class of arithmetic expressions."""


@dataclass(frozen=True)
class Number(Expr):
    """A numeric literal."""

    value: float


@dataclass(frozen=True)
class ConstRef(Expr):
    """A named tunable constant, bound at engine construction.

    The paper keeps rule thresholds symbolic ("the constants used in the
    rules are not shown, as they may be tuned per specific environment").
    """

    name: str


@dataclass(frozen=True)
class OpCount(Expr):
    """``#op``: the average per-instance count of an operation."""

    op: Op


@dataclass(frozen=True)
class OpVariance(Expr):
    """``@op``: the standard deviation of an operation's count."""

    op: Op


@dataclass(frozen=True)
class DataRef(Expr):
    """A trace/heap data identifier (``maxSize``, ``totLive``, ...)."""

    name: str


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic combination of two expressions."""

    operator: str  # one of + - * /
    left: Expr
    right: Expr


class Condition:
    """Base class of boolean conditions."""


@dataclass(frozen=True)
class Comparison(Condition):
    """``expr OP expr`` with OP in ``== != < <= > >=``."""

    operator: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class AndCond(Condition):
    """Conjunction."""

    left: Condition
    right: Condition


@dataclass(frozen=True)
class OrCond(Condition):
    """Disjunction."""

    left: Condition
    right: Condition


@dataclass(frozen=True)
class NotCond(Condition):
    """Negation."""

    operand: Condition


class ActionKind(enum.Enum):
    """What a fired rule asks for (Table 2's "Suggested Fix" column)."""

    REPLACE = "replace"
    SET_CAPACITY = "set initial capacity"
    AVOID_ALLOCATION = "avoid allocation"
    ELIMINATE_TEMPORARIES = "eliminate temporaries"
    EMPTY_ITERATOR = "use shared empty iterator"


CAPACITY_MAX_SIZE = "maxSize"
"""Sentinel capacity expression: size the collection to its observed
maximal size."""


@dataclass(frozen=True)
class Action(Condition):
    """The right-hand side of a rule."""

    kind: ActionKind
    impl_name: Optional[str] = None
    capacity: Optional[object] = None  # int | CAPACITY_MAX_SIZE | None

    def render(self) -> str:
        """Human-readable action text."""
        if self.kind is ActionKind.REPLACE:
            suffix = ""
            if self.capacity is not None:
                suffix = f"({self.capacity})"
            return f"replace with {self.impl_name}{suffix}"
        if self.kind is ActionKind.SET_CAPACITY:
            return f"set initial capacity ({self.capacity})"
        return self.kind.value


@dataclass(frozen=True)
class Rule:
    """One parsed selection rule."""

    src_type: str
    condition: Condition
    action: Action
    text: str = ""

    def render(self) -> str:
        """The rule's source text (or a reconstruction tag)."""
        return self.text or f"{self.src_type} : <cond> -> {self.action.render()}"
