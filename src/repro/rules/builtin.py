"""The built-in selection rules of Table 2, in the Fig. 4 language.

Each spec pairs a rule string with its Table 2 category and message, plus
two engine gates the paper describes in sections 3.3-3.3.1:

* ``requires_stable_size`` -- size-sensitive replacements only fire when
  the context's maximal-size metric is *stable* (Definition 3.1); the
  paper's implementation "requires size values to be tight, while
  operation counts are not restricted".
* ``space_gated`` -- space-motivated rules only fire when the context's
  observed saving potential clears the engine threshold ("we can avoid
  any space-optimizing replacement when the potential space savings seems
  negligible").

Constants are symbolic (``SMALL_SIZE``, ``CONTAINS_HEAVY``...) and bound
at engine construction from :data:`DEFAULT_CONSTANTS`, mirroring the
paper's tunable thresholds.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.rules.ast import Rule
from repro.rules.parser import parse_rule
from repro.rules.suggestions import RuleCategory

__all__ = ["RuleSpec", "DEFAULT_CONSTANTS", "BUILTIN_RULES", "builtin_rules"]


@dataclass(frozen=True)
class RuleSpec:
    """One engine-ready rule with its reporting metadata."""

    name: str
    rule: Rule
    category: RuleCategory
    message: str
    requires_stable_size: bool = False
    space_gated: bool = False
    origin: Optional[Tuple[str, int]] = None
    """``(file, line)`` where the rule was defined, when known -- set by
    :meth:`parse` from its caller and by rule-file loading, so lint
    findings carry real spans."""

    @classmethod
    def parse(cls, name: str, text: str, category: RuleCategory,
              message: str, requires_stable_size: bool = False,
              space_gated: bool = False) -> "RuleSpec":
        """Parse ``text`` and wrap it with metadata.

        The caller's source position is recorded as the spec's origin
        (builtin rules thereby point into ``builtin.py``).
        """
        try:
            caller = sys._getframe(1)
            origin = (caller.f_code.co_filename, caller.f_lineno)
        except ValueError:  # pragma: no cover - no caller frame
            origin = None
        return cls(name, parse_rule(text), category, message,
                   requires_stable_size, space_gated, origin=origin)


DEFAULT_CONSTANTS: Dict[str, float] = {
    # Time thresholds: average per-instance operation volumes.
    "CONTAINS_HEAVY": 16.0,
    "RANDOM_ACCESS_HEAVY": 16.0,
    "ITER_MANY": 4.0,
    # Size thresholds.
    "LARGE_SIZE": 32.0,
    "SMALL_SIZE": 12.0,
    "MIDDLE_OPS_LOW": 1.0,
    "RESIZE_MIN": 8.0,
    "OVERSIZE_SLACK": 4.0,
    "MANY_INSTANCES": 32.0,
}
"""Default bindings for the symbolic rule constants ("tuned per specific
environment", section 3.3.1)."""


def builtin_rules() -> List[RuleSpec]:
    """Fresh copies of the Table 2 rule set, in priority order.

    The engine reports the *first* matching rule per context as the
    primary suggestion (later matches become secondary), so ordering
    encodes priority: structural fixes (never used, pure temporary,
    always empty) come before implementation swaps, which come before
    capacity tuning.
    """
    return [
        RuleSpec.parse(
            "redundant-collection",
            "Collection : allOps == 0 & instances > 0 -> avoid",
            RuleCategory.SPACE_TIME,
            "redundant collection: allocated but never operated on",
            space_gated=True),
        RuleSpec.parse(
            "redundant-copying",
            "Collection : allOps == #copied & #copied > 0 "
            "-> eliminateTemporaries",
            RuleCategory.SPACE_TIME,
            "redundant copying of collections: every operation is a copy-out",
            space_gated=True),
        RuleSpec.parse(
            "empty-list",
            "ArrayList : maxSize == 0 & allOps > 0 -> LazyArrayList",
            RuleCategory.SPACE,
            "redundant collection allocation: lists at this context stay "
            "empty",
            requires_stable_size=True, space_gated=True),
        RuleSpec.parse(
            "empty-linked-list",
            "LinkedList : maxSize == 0 & allOps > 0 -> LazyArrayList",
            RuleCategory.SPACE,
            "redundant collection allocation: linked lists at this context "
            "stay empty (each still carries a header entry)",
            requires_stable_size=True, space_gated=True),
        RuleSpec.parse(
            "empty-set",
            "HashSet : maxSize == 0 & allOps > 0 -> LazySet",
            RuleCategory.SPACE,
            "redundant collection allocation: sets at this context stay "
            "empty",
            requires_stable_size=True, space_gated=True),
        RuleSpec.parse(
            "empty-map",
            "HashMap : maxSize == 0 & allOps > 0 -> LazyMap",
            RuleCategory.SPACE,
            "redundant collection allocation: maps at this context stay "
            "empty",
            requires_stable_size=True, space_gated=True),
        RuleSpec.parse(
            "small-map",
            "HashMap : maxSize < SMALL_SIZE & maxSize > 0 "
            "-> ArrayMap(maxSize)",
            RuleCategory.SPACE_TIME,
            "ArrayMap more efficient than a HashMap: small maps avoid "
            "per-entry objects and table slack; operations on a small "
            "array are faster than hashing",
            requires_stable_size=True, space_gated=True),
        RuleSpec.parse(
            "small-set",
            "HashSet : maxSize < SMALL_SIZE & maxSize > 0 "
            "-> ArraySet(maxSize)",
            RuleCategory.SPACE_TIME,
            "ArraySet more efficient than an HashSet: operations on a "
            "small array might be faster than on an HashSet",
            requires_stable_size=True, space_gated=True),
        RuleSpec.parse(
            "contains-heavy-list",
            "ArrayList : #contains > CONTAINS_HEAVY & maxSize > LARGE_SIZE "
            "& #get(int) == 0 & #add(int) == 0 & #set(int) == 0 "
            "-> LinkedHashSet",
            RuleCategory.TIME,
            "inefficient use of an ArrayList: large volume of contains "
            "operations on a large sized list"),
        RuleSpec.parse(
            "random-access-linked-list",
            "LinkedList : #get(int) > RANDOM_ACCESS_HEAVY -> ArrayList",
            RuleCategory.TIME,
            "inefficient use of a LinkedList: large volume of random "
            "accesses using get(i)"),
        RuleSpec.parse(
            "unjustified-linked-list",
            "LinkedList : (#add(int, Object) + #addAll(int, Collection) "
            "+ #remove(int) + #removeFirst) < MIDDLE_OPS_LOW -> ArrayList",
            RuleCategory.SPACE,
            "LinkedList overhead not justified when adding/removing "
            "elements from the middle/head of the list is hardly performed",
            space_gated=True),
        RuleSpec.parse(
            "singleton-list",
            "ArrayList : maxSize == 1 & #set(int) == 0 & #remove == 0 "
            "& #remove(int) == 0 & #removeFirst == 0 & #add(int) == 0 "
            "& #clear == 0 -> SingletonList",
            RuleCategory.SPACE,
            "lists at this context hold exactly one element and are never "
            "modified after construction",
            requires_stable_size=True, space_gated=True),
        RuleSpec.parse(
            "redundant-iterator",
            "Collection : #iterator > ITER_MANY & #iterEmpty == #iterator "
            "-> emptyIterator",
            RuleCategory.SPACE,
            "redundant iterator: iterators are only ever created over the "
            "empty collection",
            space_gated=True),
        RuleSpec.parse(
            # Not potential-gated: grossly oversized short-lived
            # collections (PMD's mistake) never survive to a GC cycle, so
            # they show no *live* potential -- their cost is allocation
            # churn, which the instance count proxies.
            "oversized-capacity",
            "Collection : initialCapacity > OVERSIZE_SLACK + 2 * maxSize "
            "& initialCapacity > RESIZE_MIN & instances >= MANY_INSTANCES "
            "-> setCapacity(maxSize)",
            RuleCategory.SPACE,
            "initial capacity far exceeds observed sizes",
            requires_stable_size=True),
        RuleSpec.parse(
            "incremental-resizing",
            "Collection : maxSize > initialCapacity & maxSize >= RESIZE_MIN "
            "-> setCapacity(maxSize)",
            RuleCategory.SPACE_TIME,
            "incremental resizing: collections grow past their initial "
            "capacity",
            requires_stable_size=True, space_gated=True),
    ]


BUILTIN_RULES: List[RuleSpec] = builtin_rules()
"""The shared default rule set (treat as immutable)."""
