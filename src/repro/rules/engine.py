"""The rule engine: evaluate selection rules over profiled contexts.

For every profiled allocation context the engine walks the rule list in
priority order, applying three gates before a rule may fire:

1. **Type match** -- the rule's ``srcType`` must cover the context's
   allocated type (exact name, ADT-kind name ``List``/``Set``/``Map``, or
   the universal ``Collection``).
2. **Stability** (Definition 3.1) -- size-sensitive rules require the
   context's maximal-size metric to be tight.
3. **Potential** -- space-motivated rules require the context's observed
   saving potential (peak-cycle ``live - used``) to clear a threshold.

The first matching rule becomes the context's primary suggestion; further
matches are kept as secondary suggestions.  Output is ranked by saving
potential, matching the tool behaviour of section 2.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from repro.collections.base import CollectionKind
from repro.profiler.report import ContextProfile, ProfileReport
from repro.profiler.stability import StabilityPolicy
from repro.rules.ast import Action, ActionKind, CAPACITY_MAX_SIZE
from repro.rules.builtin import DEFAULT_CONSTANTS, RuleSpec, builtin_rules
from repro.rules.evaluator import RuleEnvironment, evaluate_condition
from repro.rules.suggestions import RuleCategory, Suggestion

__all__ = ["RuleEngine", "IntervalRuleResult"]


@dataclass
class IntervalRuleResult:
    """Three-valued static outcome of one rule over interval inputs.

    ``verdict`` is a :class:`repro.lint.intervals.Tri`; the two gate
    flags record *why* a TRUE condition may still not fire at runtime
    (stability demotions already show as UNKNOWN; the space gate is
    runtime-only and purely informational here).
    """

    rule: str
    verdict: "object"
    stability_gated: bool = False
    space_gated: bool = False


_KIND_NAMES = {
    "List": CollectionKind.LIST,
    "Set": CollectionKind.SET,
    "Map": CollectionKind.MAP,
}


class RuleEngine:
    """Evaluates a rule set over a run's profiling report."""

    def __init__(self,
                 rules: Optional[Iterable[RuleSpec]] = None,
                 constants: Optional[Mapping[str, float]] = None,
                 stability: Optional[StabilityPolicy] = None,
                 min_potential_bytes: int = 512,
                 validate: bool = True) -> None:
        self.rules: List[RuleSpec] = list(rules) if rules is not None \
            else builtin_rules()
        self.constants: Dict[str, float] = dict(DEFAULT_CONSTANTS)
        if constants:
            self.constants.update(constants)
        self.stability = stability or StabilityPolicy()
        self.min_potential_bytes = min_potential_bytes
        if validate:
            # Eager Layer 1 validation: a typo'd constant or a bogus
            # replacement target is a named error *here*, not a raw
            # KeyError when the rule first fires (or is applied).  The
            # import is deferred to keep repro.rules importable without
            # triggering the lint package (and vice versa).
            from repro.lint.rule_checker import validate_rules

            validate_rules(self.rules, self.constants)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, report: ProfileReport) -> List[Suggestion]:
        """All primary suggestions, ranked by saving potential."""
        suggestions: List[Suggestion] = []
        for profile in report.profiles:
            suggestion = self.evaluate_context(profile)
            if suggestion is not None:
                suggestions.append(suggestion)
        suggestions.sort(key=lambda s: s.potential_bytes, reverse=True)
        return suggestions

    def evaluate_context(self, profile: ContextProfile,
                         ) -> Optional[Suggestion]:
        """The primary suggestion for one context (secondaries attached)."""
        matches: List[Suggestion] = []
        env = RuleEnvironment(profile, self.constants)
        size_stable = None  # lazily computed, shared across rules
        for spec in self.rules:
            if not self._type_matches(spec.rule.src_type, profile):
                continue
            if spec.requires_stable_size:
                if size_stable is None:
                    size_stable = bool(
                        self.stability.context_is_stable(profile.info))
                if not size_stable:
                    continue
            if spec.space_gated and not self._clears_potential(profile):
                continue
            if not evaluate_condition(spec.rule.condition, env):
                continue
            matches.append(self._make_suggestion(spec, profile))
        if not matches:
            return None
        primary = matches[0]
        primary.secondary = matches[1:]
        return primary

    def evaluate_intervals(self, profile: ContextProfile,
                           env: Mapping[str, "object"],
                           size_stable: bool,
                           ) -> "tuple":
        """Static rule evaluation over inferred statistic *intervals*.

        The Layer 2.5 interprocedural linter
        (:mod:`repro.lint.interproc`) infers an interval per statistic
        instead of a number; this walks the same rules, in the same
        priority order, with the same type gate, but evaluates each
        condition three-valuedly via
        :func:`repro.lint.intervals.analyze_condition`.

        A condition that is TRUE but size-gated
        (``requires_stable_size``) while the static size is *not*
        provably stable demotes to UNKNOWN: the dynamic engine might
        reject the context at the stability gate.  The space
        (potential) gate is **not** modelled -- heap potential is a
        runtime quantity -- so a returned decision means "the dynamic
        engine decides this rule whenever its space gate clears".

        Returns ``(results, decision)``: one
        :class:`IntervalRuleResult` per type-matching rule, plus the
        first provably-firing rule as ``(rule_name, Suggestion)`` when
        every higher-priority matching rule is provably FALSE (the
        only case in which the dynamic engine is guaranteed to reach
        and pick it), else ``None``.
        """
        from repro.lint.intervals import Tri, analyze_condition

        results: List[IntervalRuleResult] = []
        decision = None
        blocked = False      # an earlier rule *might* fire dynamically
        for spec in self.rules:
            if not self._type_matches(spec.rule.src_type, profile):
                continue
            verdict = analyze_condition(spec.rule.condition,
                                        constants=self.constants,
                                        env=env).verdict
            stability_gated = False
            if verdict is Tri.TRUE and spec.requires_stable_size \
                    and not size_stable:
                verdict = Tri.UNKNOWN
                stability_gated = True
            results.append(IntervalRuleResult(
                rule=spec.name, verdict=verdict,
                stability_gated=stability_gated,
                space_gated=spec.space_gated))
            if decision is None and not blocked \
                    and verdict is Tri.TRUE:
                decision = (spec.name,
                            self._make_suggestion(spec, profile))
            if verdict is not Tri.FALSE:
                blocked = True
        return results, decision

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------
    @staticmethod
    def _type_matches(rule_type: str, profile: ContextProfile) -> bool:
        if rule_type == "Collection":
            return True
        kind = _KIND_NAMES.get(rule_type)
        if kind is not None:
            return profile.kind is kind
        return profile.src_type == rule_type

    def _clears_potential(self, profile: ContextProfile) -> bool:
        return profile.max_potential >= self.min_potential_bytes

    # ------------------------------------------------------------------
    # Suggestion construction
    # ------------------------------------------------------------------
    def _make_suggestion(self, spec: RuleSpec,
                         profile: ContextProfile) -> Suggestion:
        capacity = self._resolve_capacity(spec.rule.action, profile)
        if (capacity is None
                and spec.rule.action.kind is ActionKind.REPLACE
                and profile.info.max_size_stats.count > 0):
            # A replacement without an explicit capacity is still sized
            # from the observed profile: the program's own requested
            # capacity was aimed at the *old* implementation (which may
            # have ignored it entirely, as LinkedList does) and honouring
            # it blindly can regress the footprint.  Stable contexts get
            # the conservative typical size; unstable ones the observed
            # maximum (never triggers regrowth, bounded by real need).
            info = profile.info
            if self.stability.context_is_stable(info):
                capacity = max(1, math.ceil(info.avg_max_size
                                            - info.max_size_stddev))
            else:
                capacity = max(1, math.ceil(info.max_size_stats.max))
        return Suggestion(profile=profile, rule=spec.rule,
                          action=spec.rule.action, category=spec.category,
                          message=spec.message, resolved_capacity=capacity)

    @staticmethod
    def _resolve_capacity(action: Action,
                          profile: ContextProfile) -> Optional[int]:
        if action.capacity is None:
            return None
        if action.capacity == CAPACITY_MAX_SIZE:
            # Conservative resolution: one standard deviation below the
            # context's average maximal size.  For tight contexts (the
            # only ones the stability gate lets through with sd ~ 0)
            # this is the average itself; for mixed-but-tolerated
            # contexts it sizes for the *smaller* instances -- larger
            # ones regrow cheaply, whereas an average-sized capacity
            # would permanently overshoot every small instance and can
            # regress the footprint.
            info = profile.info
            return max(1, math.ceil(info.avg_max_size
                                    - info.max_size_stddev))
        return int(action.capacity)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def render(suggestions: List[Suggestion],
               limit: Optional[int] = None) -> str:
        """The ranked suggestion list in the paper's report format."""
        shown = suggestions if limit is None else suggestions[:limit]
        if not shown:
            return "No collection adaptations suggested."
        lines = []
        for rank, suggestion in enumerate(shown, start=1):
            lines.append(suggestion.render(rank))
        return "\n".join(lines)
