"""Evaluation of rule conditions against a context's profile.

The evaluator binds the rule language's vocabulary to the Table 1
statistics of one :class:`~repro.profiler.report.ContextProfile`:

========================  ====================================================
Rule identifier           Bound value
========================  ====================================================
``#op``                   average per-instance count of ``op``
``@op``                   standard deviation of ``op``'s count
``#allOps`` / ``allOps``  average total operations per instance
``size``                  average final size of instances
``maxSize``               average maximal size (``avgMaxSize`` alias)
``maxMaxSize``            largest maximal size any instance reached
``initialCapacity``       average explicitly-requested capacity (0 if none)
``instances``             instances allocated at the context
``deadInstances``         instances already aggregated
``swaps``                 backing-implementation swaps observed
``totLive/maxLive``       collection live bytes, summed/peak over GC cycles
``totUsed/maxUsed``       used bytes likewise
``totCore/maxCore``       core bytes likewise
``liveCount``             summed live collection count over cycles
``maxLiveCount``          peak live collection count in one cycle
``potential``             ``totLive - totUsed`` (the paper's saving measure)
``maxPotential``          ``maxLive - maxUsed``
========================  ====================================================

Floating-point equality in comparisons uses an absolute epsilon so that
counter averages like ``#remove == 0`` behave as intended.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from repro.profiler.report import ContextProfile
from repro.rules.ast import (AndCond, BinaryOp, Comparison, Condition,
                             ConstRef, DataRef, Expr, Number, NotCond,
                             OpCount, OpVariance, OrCond)

__all__ = ["EvaluationError", "RuleEnvironment", "evaluate_condition",
           "evaluate_expression"]

_EPSILON = 1e-9


class EvaluationError(ValueError):
    """Raised when a rule references an unbound constant or bad data."""


class RuleEnvironment:
    """Binds rule identifiers for one allocation context."""

    def __init__(self, profile: ContextProfile,
                 constants: Optional[Mapping[str, float]] = None) -> None:
        self.profile = profile
        self.constants: Dict[str, float] = dict(constants or {})

    # ------------------------------------------------------------------
    # Identifier resolution
    # ------------------------------------------------------------------
    def constant(self, name: str) -> float:
        try:
            return float(self.constants[name])
        except KeyError:
            raise EvaluationError(
                f"rule constant {name!r} is not bound; known constants: "
                f"{sorted(self.constants)}") from None

    def data(self, name: str) -> float:
        info = self.profile.info
        heap = self.profile.heap
        if name == "size":
            return info.final_size_stats.mean if info.final_size_stats.count else 0.0
        if name in ("maxSize", "avgMaxSize"):
            return info.avg_max_size
        if name == "maxMaxSize":
            return info.max_max_size
        if name == "initialCapacity":
            return info.avg_initial_capacity
        if name == "instances":
            return float(info.instances_allocated)
        if name == "deadInstances":
            return float(info.instances_dead)
        if name == "allOps":
            return info.all_ops_mean
        if name == "swaps":
            return float(info.swap_count)
        if name == "totLive":
            return float(heap.live.total) if heap else 0.0
        if name == "maxLive":
            return float(heap.live.max) if heap else 0.0
        if name == "totUsed":
            return float(heap.used.total) if heap else 0.0
        if name == "maxUsed":
            return float(heap.used.max) if heap else 0.0
        if name == "totCore":
            return float(heap.core.total) if heap else 0.0
        if name == "maxCore":
            return float(heap.core.max) if heap else 0.0
        if name == "liveCount":
            return float(heap.object_count.total) if heap else 0.0
        if name == "maxLiveCount":
            return float(heap.object_count.max) if heap else 0.0
        if name == "potential":
            return float(self.profile.total_potential)
        if name == "maxPotential":
            return float(self.profile.max_potential)
        raise EvaluationError(f"unknown data identifier {name!r}")


def evaluate_expression(expr: Expr, env: RuleEnvironment) -> float:
    """Evaluate an arithmetic expression to a float."""
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, ConstRef):
        return env.constant(expr.name)
    if isinstance(expr, OpCount):
        return env.profile.info.op_mean(expr.op)
    if isinstance(expr, OpVariance):
        return env.profile.info.op_stddev(expr.op)
    if isinstance(expr, DataRef):
        return env.data(expr.name)
    if isinstance(expr, BinaryOp):
        left = evaluate_expression(expr.left, env)
        right = evaluate_expression(expr.right, env)
        if expr.operator == "+":
            return left + right
        if expr.operator == "-":
            return left - right
        if expr.operator == "*":
            return left * right
        if expr.operator == "/":
            if abs(right) < _EPSILON:
                raise EvaluationError("division by zero in rule expression")
            return left / right
        raise EvaluationError(f"unknown operator {expr.operator!r}")
    raise EvaluationError(f"cannot evaluate {type(expr).__name__} as value")


def evaluate_condition(condition: Condition, env: RuleEnvironment) -> bool:
    """Evaluate a boolean condition."""
    if isinstance(condition, Comparison):
        left = evaluate_expression(condition.left, env)
        right = evaluate_expression(condition.right, env)
        if condition.operator == "==":
            return math.isclose(left, right, abs_tol=_EPSILON)
        if condition.operator == "!=":
            return not math.isclose(left, right, abs_tol=_EPSILON)
        if condition.operator == "<":
            return left < right
        if condition.operator == "<=":
            return left <= right + _EPSILON
        if condition.operator == ">":
            return left > right
        if condition.operator == ">=":
            return left >= right - _EPSILON
        raise EvaluationError(f"unknown comparator {condition.operator!r}")
    if isinstance(condition, AndCond):
        return (evaluate_condition(condition.left, env)
                and evaluate_condition(condition.right, env))
    if isinstance(condition, OrCond):
        return (evaluate_condition(condition.left, env)
                or evaluate_condition(condition.right, env))
    if isinstance(condition, NotCond):
        return not evaluate_condition(condition.operand, env)
    raise EvaluationError(
        f"cannot evaluate {type(condition).__name__} as boolean")
