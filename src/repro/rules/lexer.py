"""Tokenizer for the Fig. 4 rule language.

Token kinds:

* ``NUMBER`` -- integer or decimal literals;
* ``IDENT`` -- identifiers (source types, data names, constants, actions);
* ``OPCOUNT`` -- ``#name`` or ``#name(args)`` operation counters, with the
  argument list folded into the canonical DSL spelling (``#add(int,
  Object)`` normalises to ``#add(int)``, matching Table 2's notation);
* ``OPVAR`` -- ``@name`` count-variance references;
* punctuation -- comparison and arithmetic operators, booleans ``& | !``,
  parentheses, ``:`` and the ``->`` arrow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["Token", "LexError", "tokenize"]


class LexError(ValueError):
    """Raised on malformed rule text."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


@dataclass(frozen=True)
class Token:
    """One lexeme with its source offset."""

    kind: str
    value: str
    position: int


_PUNCT_TWO = ("->", "==", "!=", "<=", ">=", "&&", "||")
_PUNCT_ONE = "()+-*/<>=&|!:,."


def _is_ident_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_ident_char(char: str) -> bool:
    return char.isalnum() or char == "_"


def _read_ident(text: str, start: int) -> int:
    end = start
    while end < len(text) and _is_ident_char(text[end]):
        end += 1
    return end


def _read_counter(text: str, start: int, sigil: str) -> tuple:
    """Read ``#name`` / ``@name`` with an optional ``(arg, ...)`` suffix.

    Returns ``(canonical_name, end_offset)`` where the canonical name keeps
    only the first argument: ``#addAll(int, Collection)`` -> ``#addAll(int)``.
    """
    pos = start + 1
    if pos >= len(text) or not _is_ident_start(text[pos]):
        raise LexError(f"expected operation name after {sigil!r}", start)
    end = _read_ident(text, pos)
    name = text[pos:end]
    if end < len(text) and text[end] == "(":
        close = text.find(")", end)
        if close < 0:
            raise LexError("unterminated operation argument list", end)
        args = [piece.strip() for piece in text[end + 1:close].split(",")]
        if not args or not args[0]:
            raise LexError("empty operation argument list", end)
        canonical = f"{sigil}{name}({args[0]})"
        return canonical, close + 1
    return f"{sigil}{name}", end


def tokenize(text: str) -> List[Token]:
    """Tokenize one rule's source text."""
    tokens: List[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        char = text[pos]
        if char.isspace():
            pos += 1
            continue
        if char == "#":
            value, end = _read_counter(text, pos, "#")
            tokens.append(Token("OPCOUNT", value, pos))
            pos = end
            continue
        if char == "@":
            value, end = _read_counter(text, pos, "@")
            tokens.append(Token("OPVAR", value, pos))
            pos = end
            continue
        if char.isdigit():
            end = pos
            seen_dot = False
            while end < length and (text[end].isdigit()
                                    or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # Only treat the dot as decimal point when a digit
                    # follows; otherwise it's member access punctuation.
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token("NUMBER", text[pos:end], pos))
            pos = end
            continue
        if _is_ident_start(char):
            end = _read_ident(text, pos)
            tokens.append(Token("IDENT", text[pos:end], pos))
            pos = end
            continue
        two = text[pos:pos + 2]
        if two in _PUNCT_TWO:
            tokens.append(Token(two, two, pos))
            pos += 2
            continue
        if char in _PUNCT_ONE:
            tokens.append(Token(char, char, pos))
            pos += 1
            continue
        raise LexError(f"unexpected character {char!r}", pos)
    tokens.append(Token("EOF", "", length))
    return tokens
