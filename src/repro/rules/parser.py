"""Recursive-descent parser for the Fig. 4 rule language.

Concrete syntax (one rule per string)::

    rule   := srcType ':' cond '->' action
    action := implName [ '(' capacity ')' ]
            | 'setCapacity' '(' capacity ')'
            | 'avoid' | 'eliminateTemporaries' | 'emptyIterator'
    capacity := INT | 'maxSize'

Conditions and expressions share one precedence ladder (low to high):
``|``, ``&``, ``!``, comparisons, ``+ -``, ``* /``, atoms.  Parentheses
re-enter the ladder at the top, so they can group either booleans
(``(a > 1) & (b < 2)``) or arithmetic (``(#add + #remove) < X``); the
parser types every node and rejects mixtures like ``#add & 3``.

Identifiers that are not recognised trace/heap data names are *constant
references*, bound at engine construction -- the paper's tunable rule
thresholds.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.profiler.counters import OP_BY_DSL_NAME
from repro.rules.ast import (Action, ActionKind, AndCond, BinaryOp,
                             CAPACITY_MAX_SIZE, Comparison, Condition,
                             ConstRef, DataRef, Expr, Number, NotCond,
                             OpCount, OpVariance, OrCond, Rule)
from repro.rules.lexer import Token, tokenize

__all__ = ["ParseError", "parse_rule", "parse_condition", "DATA_NAMES"]

DATA_NAMES = frozenset({
    "size", "maxSize", "avgMaxSize", "maxMaxSize", "initialCapacity",
    "instances", "deadInstances", "allOps", "swaps",
    "maxLive", "totLive", "maxUsed", "totUsed", "maxCore", "totCore",
    "liveCount", "maxLiveCount", "potential", "maxPotential",
})
"""Trace and heap data identifiers the evaluator understands (Table 1)."""

_COMPARATORS = ("==", "!=", "<=", ">=", "<", ">")
_ADVICE_ACTIONS = {
    "setCapacity": ActionKind.SET_CAPACITY,
    "avoid": ActionKind.AVOID_ALLOCATION,
    "avoidAllocation": ActionKind.AVOID_ALLOCATION,
    "eliminateTemporaries": ActionKind.ELIMINATE_TEMPORARIES,
    "emptyIterator": ActionKind.EMPTY_ITERATOR,
}


class ParseError(ValueError):
    """Raised on syntactically or semantically malformed rules.

    Carries full position information: the offending token, its 1-based
    ``line`` and ``column`` within the rule source, and -- when the
    source text is available -- a caret-context ``snippet``::

        expected '->' (line 1, column 21)
          HashSet : maxSize < 2 ArraySet
                              ^
    """

    def __init__(self, message: str, token: Token,
                 source: Optional[str] = None) -> None:
        self.token = token
        self.source = source
        self.line, self.column = _line_and_column(source, token.position)
        where = f"line {self.line}, column {self.column}"
        if token.value:
            where = f"near {token.value!r}, {where}"
        rendered = f"{message} ({where})"
        self.snippet = _caret_snippet(source, token.position)
        if self.snippet:
            rendered += "\n" + self.snippet
        super().__init__(rendered)


def _line_and_column(source: Optional[str], position: int):
    """1-based (line, column) of a character offset in ``source``."""
    if not source:
        return 1, position + 1
    clamped = max(0, min(position, len(source)))
    line = source.count("\n", 0, clamped) + 1
    line_start = source.rfind("\n", 0, clamped) + 1
    return line, clamped - line_start + 1


def _caret_snippet(source: Optional[str], position: int,
                   indent: str = "  ") -> str:
    """The offending source line with a ``^`` under the error column."""
    if not source:
        return ""
    clamped = max(0, min(position, len(source)))
    line_start = source.rfind("\n", 0, clamped) + 1
    line_end = source.find("\n", line_start)
    if line_end < 0:
        line_end = len(source)
    text_line = source[line_start:line_end]
    caret_pad = " " * (clamped - line_start)
    return f"{indent}{text_line}\n{indent}{caret_pad}^"


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- token plumbing ------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def expect(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise ParseError(f"expected {kind!r}", self.current,
                             self.text)
        return self.advance()

    def accept(self, *kinds: str) -> Optional[Token]:
        if self.current.kind in kinds:
            return self.advance()
        return None

    # -- entry points ----------------------------------------------------
    def parse_rule(self) -> Rule:
        src_type = self.expect("IDENT").value
        self.expect(":")
        condition = self.parse_or()
        if not isinstance(condition, Condition):
            raise ParseError("rule condition must be boolean",
                             self.current, self.text)
        self.expect("->")
        action = self.parse_action()
        self.expect("EOF")
        return Rule(src_type, condition, action, text=self.text.strip())

    def parse_bare_condition(self) -> Condition:
        condition = self.parse_or()
        if not isinstance(condition, Condition):
            raise ParseError("expected a boolean condition",
                             self.current, self.text)
        self.expect("EOF")
        return condition

    # -- precedence ladder -------------------------------------------------
    def parse_or(self) -> Union[Expr, Condition]:
        left = self.parse_and()
        while self.accept("|", "||"):
            right = self.parse_and()
            left = OrCond(self._as_cond(left), self._as_cond(right))
        return left

    def parse_and(self) -> Union[Expr, Condition]:
        left = self.parse_not()
        while self.accept("&", "&&"):
            right = self.parse_not()
            left = AndCond(self._as_cond(left), self._as_cond(right))
        return left

    def parse_not(self) -> Union[Expr, Condition]:
        if self.accept("!"):
            return NotCond(self._as_cond(self.parse_not()))
        return self.parse_comparison()

    def parse_comparison(self) -> Union[Expr, Condition]:
        left = self.parse_additive()
        if self.current.kind in _COMPARATORS:
            operator = self.advance().kind
            # Accept '=' style from the paper's grammar as '=='.
            right = self.parse_additive()
            return Comparison(operator, self._as_expr(left),
                              self._as_expr(right))
        if self.current.kind == "=":
            self.advance()
            right = self.parse_additive()
            return Comparison("==", self._as_expr(left),
                              self._as_expr(right))
        return left

    def parse_additive(self) -> Union[Expr, Condition]:
        left = self.parse_multiplicative()
        while self.current.kind in ("+", "-"):
            operator = self.advance().kind
            right = self.parse_multiplicative()
            left = BinaryOp(operator, self._as_expr(left),
                            self._as_expr(right))
        return left

    def parse_multiplicative(self) -> Union[Expr, Condition]:
        left = self.parse_atom()
        while self.current.kind in ("*", "/"):
            operator = self.advance().kind
            right = self.parse_atom()
            left = BinaryOp(operator, self._as_expr(left),
                            self._as_expr(right))
        return left

    def parse_atom(self) -> Union[Expr, Condition]:
        token = self.current
        if token.kind == "-":
            self.advance()
            operand = self._as_expr(self.parse_atom())
            return BinaryOp("-", Number(0.0), operand)
        if token.kind == "NUMBER":
            self.advance()
            return Number(float(token.value))
        if token.kind == "OPCOUNT":
            self.advance()
            return self._counter(token, variance=False)
        if token.kind == "OPVAR":
            self.advance()
            return self._counter(token, variance=True)
        if token.kind == "IDENT":
            self.advance()
            name = token.value
            # 'collection.size' style member access: keep the member name.
            while self.accept("."):
                name = self.expect("IDENT").value
            if name in DATA_NAMES:
                return DataRef(name)
            return ConstRef(name)
        if token.kind == "(":
            self.advance()
            inner = self.parse_or()
            self.expect(")")
            return inner
        raise ParseError("expected an expression", token, self.text)

    # -- pieces -----------------------------------------------------------
    def _counter(self, token: Token,
                 variance: bool) -> Union[Expr, Condition]:
        name = token.value
        body = name[1:]
        if body == "allOps":
            if variance:
                raise ParseError("@allOps is not tracked", token, self.text)
            return DataRef("allOps")
        op = OP_BY_DSL_NAME.get("#" + body)
        if op is None:
            known = ", ".join(sorted(OP_BY_DSL_NAME))
            raise ParseError(f"unknown operation {name!r}; known: {known}",
                             token, self.text)
        return OpVariance(op) if variance else OpCount(op)

    def parse_action(self) -> Action:
        name = self.expect("IDENT").value
        capacity = None
        if self.accept("("):
            token = self.current
            if token.kind == "NUMBER":
                self.advance()
                capacity = int(float(token.value))
            elif token.kind == "IDENT" and token.value == CAPACITY_MAX_SIZE:
                self.advance()
                capacity = CAPACITY_MAX_SIZE
            else:
                raise ParseError("capacity must be an integer or 'maxSize'",
                                 token, self.text)
            self.expect(")")
        kind = _ADVICE_ACTIONS.get(name)
        if kind is ActionKind.SET_CAPACITY:
            if capacity is None:
                raise ParseError("setCapacity requires a capacity argument",
                                 self.current, self.text)
            return Action(kind, capacity=capacity)
        if kind is not None:
            if capacity is not None:
                raise ParseError(f"{name} takes no capacity",
                                 self.current, self.text)
            return Action(kind)
        return Action(ActionKind.REPLACE, impl_name=name, capacity=capacity)

    # -- typing helpers -----------------------------------------------------
    def _as_cond(self, node: Union[Expr, Condition]) -> Condition:
        if not isinstance(node, Condition):
            raise ParseError("expected a boolean operand", self.current,
                             self.text)
        return node

    def _as_expr(self, node: Union[Expr, Condition]) -> Expr:
        if not isinstance(node, Expr):
            raise ParseError("expected an arithmetic operand", self.current,
                             self.text)
        return node


def parse_rule(text: str) -> Rule:
    """Parse one rule string into its AST."""
    return _Parser(text).parse_rule()


def parse_condition(text: str) -> Condition:
    """Parse a bare condition (testing/inspection convenience)."""
    return _Parser(text).parse_bare_condition()
