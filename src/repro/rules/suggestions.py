"""Suggestion records: what the rule engine tells the programmer (or the
automatic applier) about each allocation context.

A suggestion carries the matched context, the fired rule's category and
message (Table 2's "Category: Message" column), the resolved action, and
the context's saving potential.  Rendering follows the succinct format of
section 2.1::

    1: HashMap:tvla.util.HashMapFactory:31;tvla.core.base.BaseTVS:50
       replace with ArrayMap
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.collections.base import CollectionKind
from repro.profiler.report import ContextProfile
from repro.rules.ast import Action, ActionKind, Rule
from repro.runtime.vm import ImplementationChoice

__all__ = ["RuleCategory", "Suggestion", "LAZY_IMPL_BY_KIND"]


class RuleCategory(enum.Enum):
    """Which resource a rule targets (Table 2's Category column)."""

    TIME = "Time"
    SPACE = "Space"
    SPACE_TIME = "Space/Time"


LAZY_IMPL_BY_KIND = {
    CollectionKind.LIST: "LazyArrayList",
    CollectionKind.SET: "LazySet",
    CollectionKind.MAP: "LazyMap",
}
"""Lazy implementation used to auto-apply avoid-allocation advice: the
collection cannot be deleted by a tool, but deferring its internals
realises most of the saving automatically."""


@dataclass
class Suggestion:
    """One fired rule at one allocation context."""

    profile: ContextProfile
    rule: Rule
    action: Action
    category: RuleCategory
    message: str
    resolved_capacity: Optional[int] = None
    secondary: List["Suggestion"] = field(default_factory=list)

    @property
    def context_id(self) -> int:
        """The allocation context this suggestion targets."""
        return self.profile.context_id

    @property
    def potential_bytes(self) -> int:
        """The context's aggregate space-saving potential."""
        return self.profile.total_potential

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def to_choice(self) -> Optional[ImplementationChoice]:
        """The replacement-policy entry this suggestion induces.

        Replacements map directly; capacity advice maps to a capacity-only
        choice; avoid-allocation advice is auto-applied as the kind's lazy
        implementation.  Purely manual advice (eliminate temporaries,
        shared empty iterators) returns ``None`` -- it needs a code change
        the tool cannot make, as the paper notes for bloat's lazy fix.
        """
        kind = self.action.kind
        if kind is ActionKind.REPLACE:
            return ImplementationChoice(self.action.impl_name,
                                        self.resolved_capacity)
        if kind is ActionKind.SET_CAPACITY:
            return ImplementationChoice(None, self.resolved_capacity)
        if kind is ActionKind.AVOID_ALLOCATION:
            if self.profile.kind is None:
                return None
            return ImplementationChoice(LAZY_IMPL_BY_KIND[self.profile.kind])
        return None

    @property
    def auto_applicable(self) -> bool:
        """Whether the tool can apply this suggestion by itself."""
        return self.to_choice() is not None

    def to_dict(self) -> dict:
        """A JSON-serialisable view of this suggestion."""
        return {
            "context": self.profile.render_context(),
            "srcType": self.profile.src_type,
            "rule": self.rule.render(),
            "category": self.category.value,
            "message": self.message,
            "action": self.action.kind.value,
            "implementation": self.action.impl_name,
            "capacity": self.resolved_capacity,
            "autoApplicable": self.auto_applicable,
            "potentialBytes": self.potential_bytes,
            "secondary": [s.action.render() for s in self.secondary],
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, rank: Optional[int] = None) -> str:
        """Section 2.1's succinct per-context message."""
        prefix = f"{rank}: " if rank is not None else ""
        action = self.action.render()
        if (self.action.kind is ActionKind.SET_CAPACITY
                and self.resolved_capacity is not None):
            action = f"set initial capacity ({self.resolved_capacity})"
        return (f"{prefix}{self.profile.render_context()} {action}  "
                f"[{self.category.value}] {self.message}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Suggestion ctx={self.context_id} {self.action.render()}>"
