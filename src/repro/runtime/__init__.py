"""The simulated VM: clock, cost model, contexts, sampling, environment."""

from repro.runtime.context import (ContextFrame, ContextKey, ContextRegistry,
                                   DEFAULT_CONTEXT_DEPTH, capture_context)
from repro.runtime.costs import CostModel, VMClock
from repro.runtime.sampling import (AdaptiveTypeSampler, AlwaysSample,
                                    NeverSample, RateSampler, SamplingPolicy)
from repro.runtime.vm import (ImplementationChoice,
                              ReplacementPolicyProtocol, RuntimeEnvironment)

__all__ = [
    "ContextFrame", "ContextKey", "ContextRegistry", "DEFAULT_CONTEXT_DEPTH",
    "capture_context", "CostModel", "VMClock", "AdaptiveTypeSampler",
    "AlwaysSample", "NeverSample", "RateSampler", "SamplingPolicy",
    "ImplementationChoice", "ReplacementPolicyProtocol",
    "RuntimeEnvironment",
]
