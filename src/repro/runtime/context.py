"""Allocation-context capture and interning.

Chameleon's central hypothesis (section 3.2.1) is that collections
allocated at the same *allocation context* -- the allocation site plus a
bounded call stack, usually of depth 2 or 3 -- behave similarly.  All
profiling data is keyed by context, and the final reports print contexts
in the ``Type:frame;frame`` format shown in section 2.1.

Two capture mechanisms existed in the paper's tool (Throwable walking and
JVMTI); both boil down to reading the top frames of the caller's stack.
Here capture walks the live Python stack with ``sys._getframe``, skipping
frames that belong to this library itself so a context always names
*application* (workload) code.  Tests and workloads may instead pass an
explicit :class:`ContextKey`, which models factory-provided contexts.

Capture cost is charged by the caller via the cost model; this module only
reports how many frames it walked.  The *simulator's own* wall-clock cost
of capture is memoized: repeat allocations from the same bytecode position
(keyed on ``(id(code object), f_lasti)`` of every walked frame) reuse the
interned :class:`ContextKey` and the recorded walk length, so the string
formatting and module lookups run once per distinct site.  The memo always
returns the same ``frames_walked`` the uncached walk would have reported,
so the virtual-clock charge -- and with it the section 5.4 overhead
results -- is unchanged.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["ContextFrame", "ContextKey", "ContextRegistry",
           "DEFAULT_CONTEXT_DEPTH", "TOPLEVEL_FRAME", "clear_capture_caches"]

DEFAULT_CONTEXT_DEPTH = 2
"""The paper's default partial-context depth ("usually of depth 2 or 3")."""

_INTERNAL_PREFIXES = ("repro.collections", "repro.runtime", "repro.core",
                      "repro.profiler", "repro.memory", "repro.rules",
                      "repro.verify")


@dataclass(frozen=True)
class ContextFrame:
    """One stack frame of an allocation context."""

    location: str
    """Module-qualified function or class-site name."""

    line: int
    """Line number of the call."""

    def render(self) -> str:
        """``location:line`` -- the per-frame piece of report output."""
        return f"{self.location}:{self.line}"


@dataclass(frozen=True)
class ContextKey:
    """An interned allocation context: an ordered tuple of frames.

    The innermost (allocating) frame comes first, matching the report
    format ``HashMap:tvla.util.HashMapFactory:31;tvla.core.base.BaseTVS:50``
    where the factory method precedes its caller.
    """

    frames: Tuple[ContextFrame, ...]

    @property
    def depth(self) -> int:
        """Number of frames retained."""
        return len(self.frames)

    @property
    def site(self) -> Optional[ContextFrame]:
        """The allocation site (innermost frame)."""
        return self.frames[0] if self.frames else None

    def render(self) -> str:
        """Semicolon-joined frame list, as in the paper's suggestions."""
        return ";".join(frame.render() for frame in self.frames)

    @classmethod
    def synthetic(cls, *names: str) -> "ContextKey":
        """A hand-built context for tests/workloads (line numbers 0)."""
        return cls(tuple(ContextFrame(name, 0) for name in names))


def _is_internal(module_name: str) -> bool:
    return any(module_name == prefix or module_name.startswith(prefix + ".")
               for prefix in _INTERNAL_PREFIXES)


TOPLEVEL_FRAME = ContextFrame("<toplevel>", 0)
"""Synthetic site used when the stack holds no application frames.

A capture issued from a thread entry point, a top-level script, or from
inside the library itself still needs a *distinct, stable* context --
interning an empty key would silently alias every such site into one
context.
"""

# id(code) -> is_internal, with the code objects pinned in a side list
# so an id can never be recycled and alias the cached internality bit.
# (Two flat structures instead of one id -> (code, bool) dict: the hot
# capture loop then reads a bare bool per frame.)
_code_cache: Dict[int, bool] = {}
_code_pins: List[Any] = []

# (depth, code_id, f_lasti, code_id, f_lasti, ...) for every frame walked
# -> the (ContextKey, frames_walked) that walk produced.  f_lasti pins the
# exact bytecode position of each call, so two call sites on different
# lines of the same function never collide.
_site_cache: Dict[Tuple[int, ...], Tuple[ContextKey, int]] = {}


def clear_capture_caches() -> None:
    """Drop the capture memo (tests / benchmark hygiene)."""
    _code_cache.clear()
    _code_pins.clear()
    _site_cache.clear()


def capture_context(depth: int = DEFAULT_CONTEXT_DEPTH,
                    skip: int = 1) -> Tuple[ContextKey, int]:
    """Capture the caller's allocation context from the live Python stack.

    Args:
        depth: Number of application frames to retain.
        skip: Frames to discard before filtering (the direct caller by
            default, since it is capture's own invoker inside the library).

    Returns:
        ``(key, frames_walked)`` where ``frames_walked`` counts every frame
        examined, so the caller can charge capture cost proportionally --
        walking past library frames is work even though they are not
        retained, which is part of why capture is expensive.  A stack too
        shallow to skip into, or one with no application frames at all,
        yields the synthetic :data:`TOPLEVEL_FRAME` site rather than
        raising or aliasing distinct sites into an empty key.
    """
    try:
        top = sys._getframe(skip + 1)
    except ValueError:  # shallower than `skip` (thread/script entry point)
        top = None
    # Hot path: build only the memo signature -- one bool lookup and two
    # list appends per frame.  The retained frames are re-walked (from
    # the same, still-live stack) exclusively on a memo miss, i.e. once
    # per distinct site.
    sig = [depth]
    append = sig.append
    internal_of = _code_cache.get
    retained = 0
    frame = top
    while frame is not None and retained < depth:
        code_id = id(frame.f_code)
        append(code_id)
        append(frame.f_lasti)
        internal = internal_of(code_id)
        if internal is None:
            internal = _is_internal(frame.f_globals.get("__name__", "?"))
            _code_cache[code_id] = internal
            _code_pins.append(frame.f_code)
        if not internal:
            retained += 1
        frame = frame.f_back
    cached = _site_cache.get(tuple(sig))
    if cached is not None:
        return cached
    walked = (len(sig) - 1) // 2
    frames = []
    frame = top
    while frame is not None and len(frames) < depth:
        if not _code_cache[id(frame.f_code)]:
            frames.append(ContextFrame(
                f"{frame.f_globals.get('__name__', '?')}"
                f".{frame.f_code.co_name}",
                frame.f_lineno))
        frame = frame.f_back
    result = (ContextKey(tuple(frames) if frames else (TOPLEVEL_FRAME,)),
              walked)
    _site_cache[tuple(sig)] = result
    return result


class ContextRegistry:
    """Interns :class:`ContextKey` values to dense integer ids.

    Dense ids keep per-context statistics in flat dict lookups, which is
    the analog of the paper's native implementation working "directly with
    unique identifiers, without constructing intermediate objects".
    """

    def __init__(self, depth: int = DEFAULT_CONTEXT_DEPTH) -> None:
        self.depth = depth
        self._ids: Dict[ContextKey, int] = {}
        self._keys: Dict[int, ContextKey] = {}

    def intern(self, key: ContextKey) -> int:
        """Return the dense id for ``key``, assigning one if new."""
        context_id = self._ids.get(key)
        if context_id is None:
            context_id = len(self._ids) + 1
            self._ids[key] = context_id
            self._keys[context_id] = key
        return context_id

    def capture(self, skip: int = 1) -> Tuple[int, int]:
        """Capture and intern the caller's context.

        Returns ``(context_id, frames_walked)``.
        """
        key, walked = capture_context(self.depth, skip=skip + 1)
        return self.intern(key), walked

    def describe(self, context_id: int) -> ContextKey:
        """The :class:`ContextKey` behind a dense id."""
        return self._keys[context_id]

    def ids(self) -> Iterator[int]:
        """All interned context ids."""
        return iter(self._keys.keys())

    def __len__(self) -> int:
        return len(self._ids)
