"""Deterministic cost model: the simulation's substitute for wall-clock time.

The paper's running-time results (Fig. 7, the 35% online-mode slowdown, the
6x PMD slowdown) are *relative* measurements on a real Xeon.  The
simulation replaces the CPU with a virtual clock: every collection
operation, allocation, resize copy, hash computation, stack walk and GC
phase charges a deterministic number of *ticks*.  Relative comparisons
between two runs of the same workload under different collection choices
are then exact and reproducible.

The constants encode the asymmetries the paper's analysis relies on:

* hashing has a per-operation constant that dwarfs a few array compares,
  so small ``ArraySet``/``ArrayMap`` beat ``HashSet``/``HashMap`` (the
  "in the realm of small sizes, constants matter" observation);
* pointer chasing costs more per element than an array scan (locality);
* capturing an allocation context is 1-2 orders of magnitude more
  expensive than a collection operation, which is exactly what makes the
  fully automatic mode slow on allocation-heavy programs (section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel", "VMClock"]


@dataclass(frozen=True)
class CostModel:
    """Tick charges for every priced event in the simulated runtime.

    All values are integers; formulas in the collection implementations
    combine them with element counts.  A tick has no absolute meaning --
    only ratios between runs matter.
    """

    # -- memory management ------------------------------------------------
    alloc_base: int = 4
    """Fixed charge per object allocation (header setup, TLAB bump)."""

    alloc_per_16_bytes: int = 1
    """Additional charge per 16 bytes allocated (zeroing)."""

    # -- element-level operations ------------------------------------------
    array_access: int = 1
    """Indexed read/write of an array slot."""

    array_scan_per_element: int = 1
    """Per-element charge of a linear scan (compare + contiguous load)."""

    link_traverse_per_node: int = 3
    """Per-node charge of a pointer chase (compare + dependent load)."""

    compare: int = 1
    """One equality test outside a scan loop."""

    copy_per_element: int = 1
    """Per-element charge of a resize/compaction copy."""

    hash_compute: int = 8
    """Computing an element's hash code."""

    hash_probe: int = 2
    """Probing one hash bucket (index math + load)."""

    entry_link: int = 2
    """Linking/unlinking one chained entry."""

    # -- indirection and instrumentation ------------------------------------
    wrapper_delegation: int = 1
    """The wrapper's virtual dispatch to the backing implementation
    (section 4.1's "small delta in inefficiency")."""

    profile_op: int = 0
    """Per-operation profiling counter update (cheap library counters)."""

    stack_walk_base: int = 240
    """Fixed charge of capturing an allocation context.

    Calibrated so that the fully automatic mode reproduces section 5.4:
    capture costs tens of collection operations, which is negligible for
    op-heavy collections (TVLA, ~35% slowdown) and crushing for massive
    rapid allocation of short-lived ones (PMD, ~6x)."""

    stack_walk_per_frame: int = 30
    """Per-frame charge of capturing an allocation context."""

    policy_lookup: int = 4
    """Online mode: consulting the replacement policy at allocation."""

    def allocation_ticks(self, size: int) -> int:
        """Total charge for allocating ``size`` bytes."""
        return self.alloc_base + (size // 16) * self.alloc_per_16_bytes

    def context_capture_ticks(self, frames: int) -> int:
        """Total charge for capturing a ``frames``-deep context."""
        return self.stack_walk_base + frames * self.stack_walk_per_frame

    def with_overrides(self, **overrides: int) -> "CostModel":
        """A copy of this model with some constants replaced (ablations)."""
        return replace(self, **overrides)


class VMClock:
    """Monotonic virtual clock accumulating tick charges.

    Two charge lanes feed the same total:

    * :meth:`charge` -- the validated call every reference-path component
      uses;
    * :attr:`pending` -- a plain integer accumulator the ``vm_core="fast"``
      operation pipeline adds pre-validated constants to without a call.

    Tick addition is commutative, so batching is unobservable as long as
    ``pending`` is folded in before anyone reads the clock; :attr:`now`
    (the *only* read point) does exactly that, which is what keeps the
    fast pipeline byte-identical at every GC trigger, tracer callback,
    timeline snapshot and end-of-run report.
    """

    def __init__(self) -> None:
        self.ticks = 0
        #: Batched charges not yet folded into :attr:`ticks`.  Writers
        #: must only ever add non-negative amounts (the fast wrapper
        #: plans validate their constants once, at plan-build time).
        self.pending = 0

    def charge(self, ticks: int) -> None:
        """Advance the clock by ``ticks`` (must be non-negative)."""
        if ticks < 0:
            raise ValueError("cannot charge negative ticks")
        self.ticks += ticks

    def flush(self) -> None:
        """Fold any batched :attr:`pending` charges into the total."""
        if self.pending:
            self.ticks += self.pending
            self.pending = 0

    @property
    def now(self) -> int:
        """Current virtual time (flushes batched charges first)."""
        if self.pending:
            self.ticks += self.pending
            self.pending = 0
        return self.ticks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VMClock {self.ticks} ticks (+{self.pending} pending)>"
