"""Sampling policies for allocation-context capture.

Capturing an allocation context is the single most expensive piece of
Chameleon's instrumentation (section 5.4 measures it as the bottleneck of
the fully automatic mode).  Section 4.2 describes two mitigations, both
reproduced here:

* plain *sampling* -- capture only every N-th allocation, controlled at
  the level of a specific constructor (source type);
* *adaptive shut-off* -- once the observed space-saving potential for a
  source type is low, stop tracking that type entirely.

Policies are deterministic (counter-based, no randomness) so every
experiment is exactly reproducible.
"""

from __future__ import annotations

from typing import Dict, Set

__all__ = [
    "SamplingPolicy",
    "AlwaysSample",
    "NeverSample",
    "RateSampler",
    "AdaptiveTypeSampler",
]


class SamplingPolicy:
    """Decides, per allocation, whether to capture and profile."""

    def should_sample(self, src_type: str) -> bool:
        """Whether this allocation of ``src_type`` should be profiled."""
        raise NotImplementedError

    def observe_potential(self, src_type: str, potential_bytes: int) -> None:
        """Feedback hook: the profiler reports observed saving potential
        so adaptive policies can shut off uninteresting types."""


class AlwaysSample(SamplingPolicy):
    """Profile every allocation (maximum fidelity, maximum overhead)."""

    def should_sample(self, src_type: str) -> bool:
        return True


class NeverSample(SamplingPolicy):
    """Profile nothing -- the instrumentation-off configuration used for
    the timing runs of Fig. 7."""

    def should_sample(self, src_type: str) -> bool:
        return False


class RateSampler(SamplingPolicy):
    """Deterministic 1-in-N sampling, independently per source type.

    The first ``warmup`` allocations of each type are always sampled so
    small contexts are not missed entirely.
    """

    def __init__(self, rate: int, warmup: int = 8) -> None:
        if rate < 1:
            raise ValueError("sampling rate must be >= 1")
        if warmup < 0:
            raise ValueError("warmup cannot be negative")
        self.rate = rate
        self.warmup = warmup
        self._counts: Dict[str, int] = {}

    def should_sample(self, src_type: str) -> bool:
        count = self._counts.get(src_type, 0)
        self._counts[src_type] = count + 1
        if count < self.warmup:
            return True
        return (count - self.warmup) % self.rate == 0


class AdaptiveTypeSampler(SamplingPolicy):
    """Rate sampling plus per-type shut-off on low observed potential.

    Once a source type has been observed at least ``min_observations``
    times with cumulative potential below ``potential_threshold`` bytes,
    tracking for that type is disabled permanently -- the paper's
    "completely turn off tracking of allocation context for that type".
    """

    def __init__(self, rate: int = 1, warmup: int = 8,
                 potential_threshold: int = 4096,
                 min_observations: int = 32) -> None:
        self._base = RateSampler(rate, warmup)
        self.potential_threshold = potential_threshold
        self.min_observations = min_observations
        self._observations: Dict[str, int] = {}
        self._potential: Dict[str, int] = {}
        self._disabled: Set[str] = set()

    def should_sample(self, src_type: str) -> bool:
        if src_type in self._disabled:
            return False
        return self._base.should_sample(src_type)

    def observe_potential(self, src_type: str, potential_bytes: int) -> None:
        if src_type in self._disabled:
            return
        self._observations[src_type] = self._observations.get(src_type, 0) + 1
        self._potential[src_type] = (
            self._potential.get(src_type, 0) + max(potential_bytes, 0)
        )
        if (self._observations[src_type] >= self.min_observations
                and self._potential[src_type] < self.potential_threshold):
            self._disabled.add(src_type)

    def is_disabled(self, src_type: str) -> bool:
        """Whether tracking for ``src_type`` has been shut off."""
        return src_type in self._disabled
