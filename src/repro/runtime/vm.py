"""The runtime environment: heap, collector, clock, profiler -- wired.

:class:`RuntimeEnvironment` is the simulation's stand-in for the paper's
instrumented J9 JVM.  It owns

* the simulated heap and its byte limit (driving the minimal-heap-size
  experiments of Fig. 6),
* the collection-aware mark-sweep collector and its per-cycle timeline,
* the virtual clock and cost model (driving the running-time experiments
  of Fig. 7),
* the allocation-context registry and capture policy,
* the semantic profiler,
* and the (optional) replacement policy consulted at collection
  allocation.

Allocation-context capture is priced asymmetrically, mirroring the paper:
capture performed *for instrumentation* (profiling, online replacement) is
charged through the cost model, while capture performed only to look up an
offline-applied replacement policy is free -- an offline fix is a source
edit, and the re-run program pays nothing at runtime for it.
"""

from __future__ import annotations

import os
from typing import (TYPE_CHECKING, Any, Callable, List, Optional, Protocol,
                    Tuple, runtime_checkable)

from repro.memory.gc import GcCostParameters, MarkSweepGC
from repro.memory.heap import HeapObject, OutOfMemoryError, SimHeap
from repro.memory.layout import MemoryModel
from repro.memory.semantic_maps import SemanticMapRegistry
from repro.memory.stats import HeapTimeline
from repro.runtime.context import (DEFAULT_CONTEXT_DEPTH, ContextKey,
                                   ContextRegistry, capture_context)
from repro.runtime.costs import CostModel, VMClock

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.profiler.profiler import SemanticProfiler

__all__ = ["ImplementationChoice", "ReplacementPolicyProtocol",
           "RuntimeEnvironment", "add_vm_created_hook",
           "remove_vm_created_hook"]


#: Observers invoked with every freshly constructed RuntimeEnvironment.
#: The verify subsystem uses this to auto-attach its heap sanitizer to
#: every VM an experiment harness creates, without the harness knowing.
#: Hooks must be pure observers (no tick charges, no heap mutation).
_vm_created_hooks: List[Callable[["RuntimeEnvironment"], None]] = []


def add_vm_created_hook(hook: Callable[["RuntimeEnvironment"], None]) -> None:
    """Register ``hook`` to run on every new :class:`RuntimeEnvironment`."""
    _vm_created_hooks.append(hook)


def remove_vm_created_hook(hook: Callable[["RuntimeEnvironment"], None],
                           ) -> None:
    """Unregister a hook added via :func:`add_vm_created_hook`."""
    _vm_created_hooks.remove(hook)


class ImplementationChoice:
    """One replacement decision: implementation, capacity, and any
    implementation-specific parameters (e.g. a SizeAdapting conversion
    threshold)."""

    __slots__ = ("impl_name", "initial_capacity", "impl_kwargs")

    def __init__(self, impl_name: Optional[str] = None,
                 initial_capacity: Optional[int] = None,
                 impl_kwargs: Optional[dict] = None) -> None:
        self.impl_name = impl_name
        self.initial_capacity = initial_capacity
        self.impl_kwargs = impl_kwargs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ImplementationChoice({self.impl_name!r}, "
                f"capacity={self.initial_capacity!r}, "
                f"kwargs={self.impl_kwargs!r})")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ImplementationChoice)
                and self.impl_name == other.impl_name
                and self.initial_capacity == other.initial_capacity
                and self.impl_kwargs == other.impl_kwargs)


@runtime_checkable
class ReplacementPolicyProtocol(Protocol):
    """Anything that can pick an implementation for an allocation."""

    def choose(self, src_type: str, context_id: Optional[int]
               ) -> Optional[ImplementationChoice]:
        """The choice for this allocation, or ``None`` for the default."""

    @property
    def requires_runtime_capture(self) -> bool:
        """True when the policy decides *during* the run (online mode) and
        allocation-context capture must therefore be charged."""


class RuntimeEnvironment:
    """The simulated VM every workload and collection runs inside."""

    #: Interchangeable operation-pipeline cores, mirroring
    #: ``MarkSweepGC.CORES``: ``reference`` runs today's per-op loops
    #: (kept as the executable spec), ``fast`` batches tick charges into
    #: ``clock.pending`` and lets the collection wrappers dispatch
    #: through per-instance inline-cached op plans.  Every core is
    #: byte-identical in simulated observables (ticks, GC stats,
    #: profiler reports); the selection trades wall-clock speed only.
    VM_CORES = ("reference", "fast")

    def __init__(self,
                 model: Optional[MemoryModel] = None,
                 cost_model: Optional[CostModel] = None,
                 heap_limit: Optional[int] = None,
                 gc_threshold_bytes: Optional[int] = 256 * 1024,
                 context_depth: int = DEFAULT_CONTEXT_DEPTH,
                 profiler: Optional["SemanticProfiler"] = None,
                 policy: Optional[ReplacementPolicyProtocol] = None,
                 gc_costs: Optional[GcCostParameters] = None,
                 gc_overhead_fraction: float = 0.04,
                 gc_overhead_limit: int = 4,
                 collector_factory: Optional[Callable[..., MarkSweepGC]]
                 = None,
                 gc_core: Optional[str] = None,
                 vm_core: Optional[str] = None) -> None:
        self.model = model or MemoryModel.for_32bit()
        self.costs = cost_model or CostModel()
        self.clock = VMClock()
        # Shortcut the charge chain: `vm.charge` IS the clock's bound
        # `charge` method (an instance attribute, not a def on this
        # class), saving a Python frame on one of the hottest calls in
        # the run phase.  There is deliberately no `def charge` below:
        # a method would be dead code permanently shadowed by this
        # binding.
        self.charge = self.clock.charge
        self.heap = SimHeap(self.model, limit=heap_limit)
        self.semantic_maps = SemanticMapRegistry()
        factory = collector_factory or MarkSweepGC
        self.gc = factory(self.heap, self.semantic_maps,
                          charge=self.clock.charge, costs=gc_costs)
        if gc_core is not None:
            # Applied post-construction so custom collector factories
            # (e.g. GenerationalGC) keep their signatures; every core is
            # byte-identical in simulated observables.
            self.gc.set_core(gc_core)
        from repro.profiler.profiler import SemanticProfiler

        self.contexts = ContextRegistry(depth=context_depth)
        self.profiler = profiler or SemanticProfiler()
        self.policy = policy
        self.profiling_enabled = profiler is not None
        self.gc_threshold_bytes = gc_threshold_bytes
        self._bytes_since_gc = 0
        self.oom_raised = False
        # "GC overhead limit exceeded" semantics: a run whose
        # limit-triggered collections repeatedly reclaim almost nothing is
        # declared out of memory, exactly as the HotSpot/J9 collectors do.
        # This is what gives the minimal-heap measure a small, realistic
        # operating headroom instead of a degenerate collect-per-allocation
        # regime.
        self.gc_overhead_fraction = gc_overhead_fraction
        self.gc_overhead_limit = gc_overhead_limit
        self._low_yield_gcs = 0
        # Optional trace recorder (repro.verify).  Collection wrappers
        # report their construction here; the recorder then observes the
        # wrapper's operations without charging ticks, so a recorded run
        # is byte-identical to a plain one.
        self.tracer: Optional[Any] = None
        # Operation-pipeline core selection.  The environment variable
        # mirrors REPRO_GC_CORE: it is how pool workers, CI legs and
        # direct RuntimeEnvironment() constructions pick a core without
        # threading it through every call site.
        if vm_core is None:
            vm_core = os.environ.get("REPRO_VM_CORE", "fast")
        if vm_core not in self.VM_CORES:
            raise ValueError(f"vm_core must be one of {self.VM_CORES}, "
                             f"got {vm_core!r}")
        self.vm_core = vm_core
        # Structural version token for the wrappers' inline-cached op
        # plans (the adt_footprint_token idea applied to dispatch):
        # plans capture the current stamp at build time and rebuild
        # whenever it moved.  Bumped by set_tracer and the profiling
        # toggles -- anything that could change what a recorded op must
        # do.  `object()` gives a fresh, never-reused identity.
        self.dispatch_stamp: object = object()
        if (vm_core == "fast" and self.costs.alloc_base >= 0
                and self.costs.alloc_per_16_bytes >= 0):
            # Same instance-attribute trick as `charge`: the fast
            # allocation path shadows the reference `allocate` def,
            # which stays below as the executable spec (and serves the
            # reference core plus the fast path's own rare branches).
            # Negative ablation constants keep the reference def so the
            # validated `charge` raises exactly as it always has.
            self._install_fast_allocate()
        for hook in _vm_created_hooks:
            hook(self)

    def set_tracer(self, tracer: Optional[Any]) -> None:
        """Install (or clear, with ``None``) a collection trace recorder."""
        self.tracer = tracer
        self.dispatch_stamp = object()

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time in ticks.

        This is the simulation's *only* clock read point; it flushes any
        batched fast-path charges first, so every observer (GC cycle
        stamps, timeline snapshots, run metrics) sees the same total the
        reference core would have accumulated charge by charge.
        """
        return self.clock.now

    # ------------------------------------------------------------------
    # Allocation and GC
    # ------------------------------------------------------------------
    def allocate(self, type_name: str, size: int, *, payload: Any = None,
                 context_id: Optional[int] = None,
                 on_death: Optional[Callable[[HeapObject], None]] = None,
                 ) -> HeapObject:
        """Allocate an object, triggering GC / OOM per the heap budget.

        A collection runs when the periodic allocation threshold fills (the
        young-generation analog) or when the byte limit would be exceeded;
        if the limit still cannot be met after collecting,
        :class:`OutOfMemoryError` is raised -- the signal the minimal-heap
        search binary-searches against.
        """
        aligned = self.model.align(size)
        if self.gc.collecting:
            # Allocation from inside a death hook: never start a nested
            # cycle mid-sweep; the object is picked up by the next cycle.
            self._bytes_since_gc += aligned
            self.charge(self.costs.allocation_ticks(aligned))
            return self.heap.allocate(type_name, aligned, payload=payload,
                                      context_id=context_id,
                                      on_death=on_death)
        if (self.gc_threshold_bytes is not None
                and self._bytes_since_gc >= self.gc_threshold_bytes):
            # Periodic (young-generation analog) cycles are minor under
            # a generational collector; heap-pressure cycles are major.
            self.collect(major=False)
        if self.heap.would_overflow(aligned):
            stats = self.collect()
            if self.heap.would_overflow(aligned):
                self.oom_raised = True
                raise OutOfMemoryError(aligned, self.heap.occupied_bytes,
                                       self.heap.limit or 0)
            min_yield = self.gc_overhead_fraction * (self.heap.limit or 0)
            if stats.freed_bytes < min_yield:
                self._low_yield_gcs += 1
                if self._low_yield_gcs >= self.gc_overhead_limit:
                    self.oom_raised = True
                    raise OutOfMemoryError(aligned,
                                           self.heap.occupied_bytes,
                                           self.heap.limit or 0)
            else:
                self._low_yield_gcs = 0
        self._bytes_since_gc += aligned
        self.charge(self.costs.allocation_ticks(aligned))
        return self.heap.allocate(type_name, aligned, payload=payload,
                                  context_id=context_id, on_death=on_death)

    def _install_fast_allocate(self) -> None:
        """Install the ``vm_core="fast"`` twin of :meth:`allocate`.

        Byte-identical semantics with the per-allocation call chain
        (``model.align`` -> ``gc.collecting`` -> ``would_overflow`` ->
        ``allocation_ticks`` -> ``charge`` -> ``heap.allocate``) folded
        into local arithmetic, one batched ``clock.pending`` add, and an
        inlined heap store (``self.heap`` shares ``self.model``, so the
        alignment below is exactly the one ``SimHeap.allocate`` would
        re-apply; the store mirrors its body field for field, with the
        :class:`HeapObject` built by direct attribute stores --
        ``test_fast_allocate_matches_reference_fields`` pins the field
        list).  The twin is a closure over everything that is fixed for
        the VM's lifetime (heap, gc, clock, cost constants, alignment
        mask); ``gc_threshold_bytes`` and ``_bytes_since_gc`` stay live
        attribute reads because callers mutate them mid-run.  Every rare
        branch -- a byte-limited heap, allocation from inside a death
        hook, a negative size -- delegates to the reference def above,
        which remains the executable spec for exactly that reason.
        """
        vm = self
        heap = self.heap
        gc = self.gc
        clock = self.clock
        objects = heap._objects
        mask = self.model.alignment - 1
        alloc_base = self.costs.alloc_base
        alloc_per_16 = self.costs.alloc_per_16_bytes
        reference_allocate = RuntimeEnvironment.allocate
        new_object = HeapObject.__new__

        def allocate(type_name: str, size: int, *,
                     payload: Any = None,
                     context_id: Optional[int] = None,
                     on_death: Optional[Callable[[HeapObject], None]]
                     = None) -> HeapObject:
            if heap.limit is not None or gc.collecting or size < 0:
                return reference_allocate(
                    vm, type_name, size, payload=payload,
                    context_id=context_id, on_death=on_death)
            aligned = (size + mask) & ~mask
            threshold = vm.gc_threshold_bytes
            if threshold is not None and vm._bytes_since_gc >= threshold:
                # collect() resets _bytes_since_gc and, via the
                # `tick=now` stamp, flushes pending charges -- the
                # GC-trigger flush boundary of the batching contract.
                vm.collect(major=False)
            vm._bytes_since_gc += aligned
            clock.pending += alloc_base + (aligned // 16) * alloc_per_16
            obj = new_object(HeapObject)
            obj.obj_id = obj_id = heap._next_id
            obj.type_name = type_name
            obj.size = aligned
            obj.refs = {}
            obj.payload = payload
            obj.context_id = context_id
            obj.on_death = on_death
            obj.sm_version = 0
            obj.sm_map = None
            heap._next_id = obj_id + 1
            objects[obj_id] = obj
            heap.total_allocated_bytes += aligned
            heap.total_allocated_objects += 1
            return obj

        self.allocate = allocate

    def allocate_data(self, type_name: str = "AppData", ref_fields: int = 0,
                      int_fields: int = 0,
                      context_id: Optional[int] = None) -> HeapObject:
        """Convenience: allocate a plain application record."""
        size = self.model.object_size(ref_fields=ref_fields,
                                      int_fields=int_fields)
        return self.allocate(type_name, size, context_id=context_id)

    def collect(self, major: bool = True):
        """Run one GC cycle now; returns the cycle's statistics.

        ``major`` selects the cycle flavour under a generational
        collector; the base mark-sweep collector ignores it.
        """
        self._bytes_since_gc = 0
        return self.gc.collect(tick=self.now, major=major)

    # ------------------------------------------------------------------
    # Roots
    # ------------------------------------------------------------------
    def add_root(self, obj: HeapObject) -> None:
        """Pin ``obj`` as a GC root."""
        self.heap.add_root(obj)

    def remove_root(self, obj: HeapObject) -> None:
        """Unpin ``obj``."""
        self.heap.remove_root(obj)

    # ------------------------------------------------------------------
    # Allocation contexts
    # ------------------------------------------------------------------
    def capture_allocation_context(self, explicit: Optional[ContextKey] = None,
                                   charged: bool = True, skip: int = 0,
                                   ) -> int:
        """Capture (or intern) an allocation context.

        Args:
            explicit: A pre-built key (factory-provided context); interning
                it is free.
            charged: Whether to bill the stack walk to the virtual clock.
                Instrumented capture (profiling / online mode) is charged;
                looking up an offline policy models a source edit and is
                not.
            skip: Extra caller frames to discard before the walk; the
                library's own frames are filtered out regardless, so
                direct callers can leave this at 0.
        """
        if explicit is not None:
            return self.contexts.intern(explicit)
        key, walked = capture_context(self.contexts.depth, skip=skip + 1)
        if charged:
            self.charge(self.costs.context_capture_ticks(walked))
        return self.contexts.intern(key)

    def choose_implementation(self, src_type: str,
                              context_id: Optional[int],
                              ) -> Optional[ImplementationChoice]:
        """Consult the replacement policy, charging online lookups."""
        if self.policy is None:
            return None
        if self.policy.requires_runtime_capture:
            self.charge(self.costs.policy_lookup)
        return self.policy.choose(src_type, context_id)

    @property
    def needs_context_at_allocation(self) -> Tuple[bool, bool]:
        """``(needed, charged)`` -- whether collection wrappers must capture
        an allocation context, and whether that capture costs ticks."""
        profiling = self.profiling_enabled
        online = (self.policy is not None
                  and self.policy.requires_runtime_capture)
        offline_policy = self.policy is not None and not online
        needed = profiling or online or offline_policy
        charged = profiling or online
        return needed, charged

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """End-of-run bookkeeping: final GC, flush live profiles."""
        # Fold batched fast-path charges first (collect() would do it
        # through its `tick=now` stamp anyway; being explicit keeps the
        # end-of-run flush boundary visible and hook-order independent).
        self.clock.flush()
        self.collect()
        if self.profiling_enabled:
            self.profiler.flush()

    @property
    def timeline(self) -> HeapTimeline:
        """The collector's per-cycle statistics for this run."""
        return self.gc.timeline

    def enable_profiling(self,
                         profiler: Optional["SemanticProfiler"] = None,
                         ) -> "SemanticProfiler":
        """Switch profiling on (optionally with a custom profiler)."""
        if profiler is not None:
            self.profiler = profiler
        self.profiling_enabled = True
        self.dispatch_stamp = object()
        return self.profiler

    def disable_profiling(self) -> None:
        """Switch profiling off (the Fig. 7 timing configuration)."""
        self.profiling_enabled = False
        self.dispatch_stamp = object()
