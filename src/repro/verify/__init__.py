"""Differential trace fuzzer and heap sanitizer (``repro.verify``).

The verification subsystem checks the property the whole tool rests on:
every registered implementation of an ADT is observably interchangeable,
and the simulated heap plus its semantic-map accounting stays sound under
GC.  See DESIGN.md ("Verification subsystem") for the architecture.
"""

from repro.verify.compile import (CompiledProgram, TraceInstance,
                                  compile_trace, load_trace_file,
                                  perturb_ops)
from repro.verify.fuzz import (FuzzFailure, FuzzResult, record_workload,
                               run_fuzz)
from repro.verify.generate import ADT_KINDS, SWAP_TARGETS, generate_trace
from repro.verify.sanitizer import HeapSanitizer, Violation, sanitized_vms
from repro.verify.shrink import (make_failure_checker, shrink_trace,
                                 write_repro_script)
from repro.verify.trace import (BASELINE_IMPLS, DiffReport, Divergence,
                                ReplayResult, Trace, TraceRecorder,
                                decode_value, diff_trace, eligible_impls,
                                encode_value, replay_trace)

__all__ = [
    "ADT_KINDS", "BASELINE_IMPLS", "SWAP_TARGETS",
    "CompiledProgram", "DiffReport", "Divergence", "FuzzFailure",
    "FuzzResult", "HeapSanitizer", "ReplayResult", "Trace",
    "TraceInstance", "TraceRecorder", "Violation",
    "compile_trace", "decode_value", "diff_trace", "eligible_impls",
    "encode_value", "generate_trace", "load_trace_file",
    "make_failure_checker", "perturb_ops", "record_workload",
    "replay_trace", "run_fuzz", "sanitized_vms", "shrink_trace",
    "write_repro_script",
]
