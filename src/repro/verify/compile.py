"""Trace compiler: recorded traces become standalone workload programs.

MapReplay (PAPERS.md) generates benchmarks by compiling recorded traces;
this module is that idea applied to ``repro.verify`` traces.  Where
:func:`repro.verify.trace.replay_trace` *interprets* a trace -- decoding
every tagged argument from JSON on every step, for one replay in one
throwaway VM -- :func:`compile_trace` lowers the trace once into a
:class:`CompiledProgram` of pre-decoded steps that a
:class:`TraceInstance` can execute any number of times, inside any VM,
against any implementation.  That is what turns one recorded trace into
a *family* of scenarios: the workload layer
(:mod:`repro.workloads.compiled`) replays compiled programs in rounds,
truncates them heavy-tailed, perturbs their value payloads, and weaves
several of them through a single VM.

The compiled path is a second implementation of replay semantics, so it
is held to the same standard as the GC and VM cores: the conformance
harness (``tests/verify/test_conformance.py``) pins the executed tick
stream and per-step outcomes byte-identical to ``replay_trace`` of the
source trace, across every ``gc_core``/``vm_core`` combination, with the
heap sanitizer clean.  ``_apply_op`` in :mod:`repro.verify.trace` stays
the executable spec; this module is the fast path.

Two deliberate semantic mirrors of the interpreter:

* ``init`` contents are applied at the implementation level (they model
  copy-construction, not program operations), so they charge the same
  ticks as replay and stay invisible to an attached
  :class:`~repro.verify.trace.TraceRecorder` -- exactly as a recording
  of the original program would have seen them.
* ``put_all`` goes through the wrapper with a :class:`_PairSource`
  (an ``items()`` duck type over the recorded pair list), never a dict:
  a dict would collapse Java-distinct keys (``1`` vs ``True`` vs
  ``1.0``).  Unlike the interpreter's ``_replay_put_all`` shortcut this
  keeps the wrapper's argument pinning, so compiled programs stay
  GC-sound in VMs with real allocation thresholds; the pinning itself
  is tick-free, preserving byte-identity with replay.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.collections.base import CollectionKind, UnsupportedOperation
from repro.collections.registry import ImplementationRegistry
from repro.memory.heap import HeapObject
from repro.runtime.context import ContextKey
from repro.runtime.vm import RuntimeEnvironment
from repro.verify.trace import (ITER_METHODS, HandleTable, Trace,
                                encode_value, max_handle, ops_for_kind)

__all__ = ["CompiledProgram", "TraceInstance", "HandleRef", "compile_trace",
           "perturb_ops", "load_trace_file"]

# Step opcodes.  A compiled step is a plain tuple whose first element is
# one of these; the remaining layout is per-opcode (see _compile_op).
STEP_CALL = 0       # (CALL, method_name, args_tuple, needs_bind)
STEP_PUT_ALL = 1    # (PUT_ALL, pairs_list, needs_bind)
STEP_INIT = 2       # (INIT, values_list, needs_bind)
STEP_GC = 3         # (GC,)
STEP_SWAP = 4       # (SWAP, target_impl, kwargs_dict)
STEP_ITER_NEW = 5   # (ITER_NEW, wrapper_method, slot)
STEP_ITER_NEXT = 6  # (ITER_NEXT, slot)
STEP_NOP = 7        # (NOP,)


class HandleRef:
    """Compile-time placeholder for a trace object handle.

    Handles are per-VM (each instance allocates fresh simulated objects),
    so compiled arguments carry these symbolic references; binding
    substitutes the executing instance's objects.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HandleRef({self.index})"


def _decode_symbolic(enc: list) -> Tuple[Any, bool]:
    """Decode a tagged value with handles left symbolic.

    Returns ``(value, has_handles)`` -- the flag lets binding skip
    handle-free arguments entirely.
    """
    tag = enc[0]
    if tag == "n":
        return None, False
    if tag in ("b", "i", "s", "x"):
        return enc[1], False
    if tag == "f":
        return float(enc[1]), False
    if tag == "o":
        return HandleRef(enc[1]), True
    if tag == "p":
        first, f1 = _decode_symbolic(enc[1][0])
        second, f2 = _decode_symbolic(enc[1][1])
        return (first, second), f1 or f2
    if tag == "l":
        items = [_decode_symbolic(item) for item in enc[1]]
        return [value for value, _ in items], any(flag for _, flag in items)
    raise ValueError(f"unknown value tag {tag!r}")


def _bind(value: Any, objects: List[HeapObject]) -> Any:
    """Substitute this instance's heap objects for symbolic handles."""
    if isinstance(value, HandleRef):
        return objects[value.index]
    if isinstance(value, tuple):
        return tuple(_bind(item, objects) for item in value)
    if isinstance(value, list):
        return [_bind(item, objects) for item in value]
    return value


class _PairSource:
    """``putAll`` source exposing recorded pairs through ``items()``.

    Never a dict: a dict would collapse Java-distinct keys (``1`` vs
    ``True`` vs ``1.0``) that the trace codec keeps apart.
    """

    __slots__ = ("_pairs",)

    def __init__(self, pairs: List[Tuple[Any, Any]]) -> None:
        self._pairs = pairs

    def items(self) -> List[Tuple[Any, Any]]:
        return list(self._pairs)


def _compile_op(op: list, kind: CollectionKind,
                surface: Dict[str, Tuple[str, ...]]) -> tuple:
    """Lower one encoded op to a step tuple (the one-time decode)."""
    name = op[0]
    if name == "init":
        values = []
        needs_bind = False
        for enc in op[1]:
            value, flag = _decode_symbolic(enc)
            values.append(value)
            needs_bind = needs_bind or flag
        return (STEP_INIT, values, needs_bind)
    if name == "gc":
        return (STEP_GC,)
    if name == "swap":
        return (STEP_SWAP, op[1], dict(op[2]) if len(op) > 2 else {})
    if name == "iter_new":
        slot, mode = op[1], op[2]
        method_name = ITER_METHODS.get(mode)
        if method_name is None or (mode != "values"
                                   and kind is not CollectionKind.MAP):
            return (STEP_NOP,)
        return (STEP_ITER_NEW, method_name, slot)
    if name == "iter_next":
        return (STEP_ITER_NEXT, op[1])

    spec = surface.get(name)
    if spec is None or len(op) - 1 != len(spec):
        return (STEP_NOP,)
    args: List[Any] = []
    needs_bind = False
    for arg_kind, raw in zip(spec, op[1:]):
        if arg_kind == "v":
            value, flag = _decode_symbolic(raw)
        elif arg_kind == "i":
            value, flag = raw, False
        else:  # "vs" / "ps": a plain list of tagged encodings
            value, flag = _decode_symbolic(["l", raw])
        args.append(value)
        needs_bind = needs_bind or flag
    if name == "put_all":
        return (STEP_PUT_ALL, args[0], needs_bind)
    return (STEP_CALL, name, tuple(args), needs_bind)


class CompiledProgram:
    """One trace lowered to pre-decoded steps, ready to instantiate.

    Immutable once built; instances never mutate the shared step list,
    so one program can back any number of concurrent
    :class:`TraceInstance` objects (and be cached across workloads).
    """

    __slots__ = ("trace", "steps", "n_handles")

    def __init__(self, trace: Trace, steps: Tuple[tuple, ...],
                 n_handles: int) -> None:
        self.trace = trace
        self.steps = steps
        self.n_handles = n_handles

    @property
    def kind(self) -> CollectionKind:
        return self.trace.kind

    @property
    def src_type(self) -> str:
        return self.trace.src_type

    @property
    def baseline_impl(self) -> str:
        return self.trace.baseline_impl

    def __len__(self) -> int:
        return len(self.steps)

    def prefix(self, n_ops: int) -> "CompiledProgram":
        """The program of the trace's first ``n_ops`` operations.

        Recompiled from the truncated op list so handle preloading
        matches what ``replay_trace`` of the same prefix would do.
        """
        if n_ops >= len(self.trace.ops):
            return self
        return compile_trace(self.trace.with_ops(self.trace.ops[:n_ops]))

    def perturbed(self, rng: random.Random,
                  strength: float) -> "CompiledProgram":
        """A deterministically value-perturbed sibling of this program."""
        if strength <= 0:
            return self
        return compile_trace(
            self.trace.with_ops(perturb_ops(self.trace.ops, rng, strength)))


def compile_trace(trace: Trace) -> CompiledProgram:
    """Lower ``trace`` into a :class:`CompiledProgram`.

    Faithful to the interpreter including its tolerance: unknown op
    names, arity mismatches and invalid iterator modes compile to no-ops
    exactly where ``_apply_op`` would return ``["nop"]``.
    """
    surface = ops_for_kind(trace.kind)
    steps = tuple(_compile_op(op, trace.kind, surface) for op in trace.ops)
    return CompiledProgram(trace=trace, steps=steps,
                           n_handles=max_handle(trace.ops) + 1)


def load_trace_file(path: str) -> Trace:
    """Read one trace JSON document from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return Trace.from_json(handle.read())


# ----------------------------------------------------------------------
# Value perturbation
# ----------------------------------------------------------------------

# Redraw distributions per primitive tag, matching the generator's value
# profiles so perturbed traces stay in the same value universe (exact
# halves for floats: repr round-trips them losslessly).
_PERTURB_DRAWS = {
    "i": lambda rng: rng.randrange(-50, 50),
    "f": lambda rng: repr(rng.randrange(-40, 40) / 2),
    "s": lambda rng: f"k{rng.randrange(0, 24)}",
    "b": lambda rng: rng.random() < 0.5,
}


#: Ops a perturbation may duplicate: single-value queries/mutations the
#: baseline implementations tolerate at any collection state.  Never
#: structural ops (iterators, swaps, init, gc) or index-addressed list
#: ops, so a duplicated op cannot change the trace's well-formedness.
_DUPLICABLE_OPS = frozenset({
    "add", "put", "get", "contains", "contains_key", "contains_value",
    "remove_value", "remove_key", "index_of", "size", "is_empty",
})


def _is_tagged_value(node: Any) -> bool:
    return (isinstance(node, list) and bool(node)
            and isinstance(node[0], str))


def _perturb_value(enc: list, rng: random.Random, strength: float,
                   n_handles: int) -> list:
    tag = enc[0]
    draw = _PERTURB_DRAWS.get(tag)
    if draw is not None:
        if rng.random() < strength:
            return [tag, draw(rng)]
        return enc
    if tag == "o":
        # Handles are interchangeable preloaded TraceObjs, so redrawing
        # the index within the trace's handle universe is always sound
        # -- and it is the only value axis a recorded benchmark trace
        # (typically all object-valued) can bend along.
        if n_handles > 1 and rng.random() < strength:
            return ["o", rng.randrange(n_handles)]
        return enc
    if tag == "p":
        return ["p", [_perturb_value(enc[1][0], rng, strength, n_handles),
                      _perturb_value(enc[1][1], rng, strength, n_handles)]]
    if tag == "l":
        return ["l", [_perturb_value(item, rng, strength, n_handles)
                      for item in enc[1]]]
    return enc  # "n", "x": nothing to redraw / opaque token


def _perturb_op(op: list, rng: random.Random, strength: float,
                n_handles: int) -> list:
    new_op: List[Any] = [op[0]]
    for arg in op[1:]:
        if _is_tagged_value(arg):
            new_op.append(_perturb_value(arg, rng, strength, n_handles))
        elif isinstance(arg, list):
            # Bulk arg: a plain list of tagged encodings.
            new_op.append([_perturb_value(item, rng, strength, n_handles)
                           if _is_tagged_value(item) else item
                           for item in arg])
        else:
            new_op.append(arg)
    return new_op


def perturb_ops(ops: List[list], rng: random.Random,
                strength: float) -> List[list]:
    """Deterministically perturb value payloads and op mix in ``ops``.

    Three bounded, always-well-formed moves, each drawn with
    probability proportional to ``strength``:

    * primitive leaves (tags ``i``/``f``/``s``/``b``) are redrawn from
      the generator's value profiles, keeping their type tag so
      typed-array eligibility does not shift;
    * object handles are redrawn within the trace's existing handle
      universe (never growing it);
    * safe single-value ops (:data:`_DUPLICABLE_OPS`) are occasionally
      followed by an independently perturbed sibling, bending the op
      mix without touching iterator/swap/init structure.

    Op names, order, index arguments, iterator slots and swap targets
    are preserved, so a perturbed trace always replays.
    """
    n_handles = max_handle(ops) + 1
    perturbed: List[list] = []
    for op in ops:
        perturbed.append(_perturb_op(op, rng, strength, n_handles))
        if op[0] in _DUPLICABLE_OPS and rng.random() < strength * 0.25:
            perturbed.append(_perturb_op(op, rng, strength, n_handles))
    return perturbed


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

_WRAPPER_CLASSES_BY_KIND: Dict[CollectionKind, Any] = {}


def _wrapper_cls(kind: CollectionKind):
    # Deferred import: wrappers import heavy modules the compile step
    # itself does not need.
    if not _WRAPPER_CLASSES_BY_KIND:
        from repro.collections.wrappers import (ChameleonList, ChameleonMap,
                                                ChameleonSet)
        _WRAPPER_CLASSES_BY_KIND.update({
            CollectionKind.LIST: ChameleonList,
            CollectionKind.SET: ChameleonSet,
            CollectionKind.MAP: ChameleonMap,
        })
    return _WRAPPER_CLASSES_BY_KIND[kind]


class TraceInstance:
    """One live collection driven by a compiled program inside a VM.

    Mirrors ``replay_trace`` exactly: handle objects are allocated and
    rooted first, then the wrapper is constructed (explicit context, so
    interning is tick-free) and pinned, then steps execute.  The caller
    owns the end-of-run ``vm.collect()`` and the eventual
    :meth:`release`, which is what lets several instances share a VM --
    the multi-tenant and phase-shifting scenarios -- or die mid-run for
    GC pressure.

    ``step()`` executes one operation and returns whether work remains,
    so schedulers can interleave instances at op granularity.
    """

    def __init__(self, vm: RuntimeEnvironment, program: CompiledProgram,
                 *, impl: Optional[str] = None,
                 registry: Optional[ImplementationRegistry] = None,
                 context: Optional[ContextKey] = None,
                 collect_outcomes: bool = False) -> None:
        self.vm = vm
        self.program = program
        self.objects: List[HeapObject] = []
        for _ in range(program.n_handles):
            obj = vm.allocate_data("TraceObj", ref_fields=1)
            vm.add_root(obj)
            self.objects.append(obj)
        self.wrapper = _wrapper_cls(program.kind)(
            vm, src_type=program.src_type, impl=impl, registry=registry,
            context=context
            or ContextKey.synthetic("repro.workloads.compiled"))
        self.wrapper.pin()
        self._iterators: Dict[int, Any] = {}
        self._cursor = 0
        self.dropped_at: Optional[int] = None
        self._released = False
        self._handles: Optional[HandleTable] = None
        self.outcomes: Optional[List[list]] = None
        if collect_outcomes:
            self._handles = HandleTable()
            self._handles.preload(self.objects)
            self.outcomes = []

    # -- lifecycle -----------------------------------------------------
    @property
    def finished(self) -> bool:
        return (self.dropped_at is not None
                or self._cursor >= len(self.program.steps))

    def run(self) -> "TraceInstance":
        """Execute every remaining step."""
        while self.step():
            pass
        return self

    def release(self) -> None:
        """Unroot the wrapper and this instance's handle objects so the
        whole subgraph can die at the next collection.  Idempotent."""
        if self._released:
            return
        self._released = True
        self.wrapper.unpin()
        for obj in self.objects:
            self.vm.remove_root(obj)

    # -- execution -----------------------------------------------------
    def step(self) -> bool:
        """Execute the next step; returns True while work remains."""
        if self.finished:
            return False
        outcome = self._execute(self.program.steps[self._cursor])
        if self.outcomes is not None:
            self.outcomes.append(outcome)
        if outcome[0] == "unsup":
            # Drop-out: the implementation rejects this operation; the
            # rest of the program is not executed (interpreter parity).
            self.dropped_at = self._cursor
            return False
        self._cursor += 1
        return self._cursor < len(self.program.steps)

    def _encode(self, result: Any) -> list:
        if self._handles is None:
            return ["ok"]  # control-flow token only; never recorded
        return ["ok", encode_value(result, self._handles)]

    def _execute(self, step: tuple) -> list:
        opcode = step[0]
        wrapper = self.wrapper
        if opcode == STEP_CALL:
            args = step[2]
            if step[3]:
                args = tuple(_bind(arg, self.objects) for arg in args)
            try:
                result = getattr(wrapper, step[1])(*args)
            except UnsupportedOperation:
                return ["unsup"]
            except TypeError:
                return ["unsup"]
            except (IndexError, KeyError) as exc:
                return ["raise", type(exc).__name__]
            return self._encode(result)
        if opcode == STEP_ITER_NEXT:
            iterator = self._iterators.get(step[1])
            if iterator is None:
                return ["nop"]
            try:
                value = next(iterator)
            except StopIteration:
                return ["stop"]
            return self._encode(value)
        if opcode == STEP_ITER_NEW:
            self._iterators[step[2]] = getattr(wrapper, step[1])()
            return ["ok", ["n"]]
        if opcode == STEP_PUT_ALL:
            pairs = step[1]
            if step[2]:
                pairs = [_bind(pair, self.objects) for pair in pairs]
            try:
                wrapper.put_all(_PairSource(pairs))
            except (UnsupportedOperation, TypeError):
                return ["unsup"]
            except (IndexError, KeyError) as exc:
                return ["raise", type(exc).__name__]
            return ["ok", ["n"]]
        if opcode == STEP_INIT:
            values = step[1]
            if step[2]:
                values = [_bind(value, self.objects) for value in values]
            is_map = self.program.kind is CollectionKind.MAP
            try:
                for value in values:
                    if is_map:
                        wrapper.impl.put(value[0], value[1])
                    else:
                        wrapper.impl.add(value)
            except (UnsupportedOperation, TypeError):
                return ["unsup"]
            return ["ok", ["n"]]
        if opcode == STEP_GC:
            self.vm.collect()
            return ["ok", ["n"]]
        if opcode == STEP_SWAP:
            try:
                wrapper.swap_to(step[1], impl_kwargs=dict(step[2]) or None)
            except (UnsupportedOperation, TypeError):
                return ["unsup"]
            return ["ok", ["n"]]
        return ["nop"]  # STEP_NOP
