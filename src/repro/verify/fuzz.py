"""Fuzz campaign driver: generate -> diff -> shrink -> emit repro.

This is the engine behind ``chameleon-repro fuzz``.  Each round draws one
deterministic trace (:mod:`repro.verify.generate`), replays it against
every eligible implementation (:mod:`repro.verify.trace`), and on
divergence shrinks the trace (:mod:`repro.verify.shrink`) and writes a
standalone repro script.  Record mode instead runs a registered workload
under a :class:`~repro.verify.trace.TraceRecorder` and saves the captured
traces as a corpus.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.verify.generate import ADT_KINDS, generate_trace
from repro.verify.shrink import (ShrinkStats, make_failure_checker,
                                 shrink_trace, write_repro_script)
from repro.verify.trace import DiffReport, Trace, TraceRecorder, diff_trace

__all__ = ["FuzzFailure", "FuzzResult", "run_fuzz", "record_workload"]


@dataclass
class FuzzFailure:
    """One divergence found (and, when enabled, shrunk) by a campaign."""

    adt: str
    seed: int
    report: DiffReport
    shrunk: Optional[Trace] = None
    repro_path: Optional[str] = None

    def describe(self) -> str:
        lines = [f"FAILURE adt={self.adt} seed={self.seed}"]
        if self.shrunk is not None:
            lines.append(f"  shrunk to {len(self.shrunk.ops)} op(s) "
                         f"(from {self.shrunk.meta.get('shrunk_from', '?')})")
        if self.repro_path:
            lines.append(f"  repro script: {self.repro_path}")
        lines.append(self.report.summary())
        return "\n".join(lines)


@dataclass
class FuzzResult:
    """Aggregate outcome of one fuzz campaign."""

    traces_run: int = 0
    ops_replayed: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed_s: float = 0.0
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURE(S)"
        lines = [f"fuzz: {self.traces_run} trace(s), "
                 f"{self.ops_replayed} op(s) replayed in "
                 f"{self.elapsed_s:.1f}s -> {status}"]
        if self.budget_exhausted:
            lines.append("fuzz: time budget exhausted before all seeds ran")
        for failure in self.failures:
            lines.append(failure.describe())
        return "\n".join(lines)


def run_fuzz(adts: List[str], seeds: int, budget_s: Optional[float] = None,
             n_ops: int = 40, out_dir: Optional[str] = None,
             shrink: bool = True, sanitize: bool = True,
             log: Optional[Callable[[str], None]] = None,
             max_failures: int = 5) -> FuzzResult:
    """Run a differential fuzz campaign.

    Args:
        adts: ADT names to fuzz (subset of ``list``/``set``/``map``).
        seeds: Seeds per ADT (seed ``0 .. seeds-1``).
        budget_s: Optional wall-clock budget; the campaign stops cleanly
            when exceeded (completed seeds only -- never mid-diff).
        n_ops: Ops per generated trace.
        out_dir: Where shrunk repro scripts (and failing trace JSON) go;
            created on first failure.
        shrink: Whether to minimise failing traces.
        sanitize: Attach the heap sanitizer to every replay VM.
        log: Progress callback (one line per event).
        max_failures: Stop after this many distinct failures.
    """
    for adt in adts:
        if adt not in ADT_KINDS:
            raise ValueError(f"unknown adt {adt!r}")
    emit = log or (lambda line: None)
    result = FuzzResult()
    started = time.monotonic()

    for seed in range(seeds):
        for adt in adts:
            if budget_s is not None \
                    and time.monotonic() - started > budget_s:
                result.budget_exhausted = True
                result.elapsed_s = time.monotonic() - started
                emit(f"budget exhausted after {result.traces_run} traces")
                return result
            trace = generate_trace(adt, seed, n_ops=n_ops)
            report = diff_trace(trace, sanitize=sanitize)
            result.traces_run += 1
            result.ops_replayed += len(trace.ops) * len(report.results)
            if report.ok:
                continue
            failure = _handle_failure(adt, seed, trace, report,
                                      out_dir=out_dir, shrink=shrink,
                                      sanitize=sanitize, emit=emit)
            result.failures.append(failure)
            if len(result.failures) >= max_failures:
                emit(f"stopping after {max_failures} failures")
                result.elapsed_s = time.monotonic() - started
                return result

    result.elapsed_s = time.monotonic() - started
    return result


def _handle_failure(adt: str, seed: int, trace: Trace, report: DiffReport,
                    out_dir: Optional[str], shrink: bool, sanitize: bool,
                    emit: Callable[[str], None]) -> FuzzFailure:
    signature = report.failure_signature()
    emit(f"divergence: adt={adt} seed={seed} signature={signature}")
    failure = FuzzFailure(adt=adt, seed=seed, report=report)
    shrunk = trace
    if shrink and signature is not None:
        shrunk = shrink_trace(
            trace, make_failure_checker(signature, sanitize=sanitize),
            stats=ShrinkStats())
        failure.shrunk = shrunk
        failure.report = diff_trace(shrunk, sanitize=sanitize)
        emit(f"shrunk {len(trace.ops)} -> {len(shrunk.ops)} ops")
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        stem = os.path.join(out_dir, f"repro-{adt}-seed{seed}")
        with open(stem + ".json", "w", encoding="utf-8") as handle:
            handle.write(shrunk.to_json(indent=2))
        failure.repro_path = write_repro_script(shrunk, stem + ".py")
        emit(f"wrote {failure.repro_path}")
    return failure


def record_workload(name: str, scale: float = 0.1, seed: int = 1,
                    out_dir: Optional[str] = None,
                    max_traces: Optional[int] = 50,
                    min_ops: int = 3) -> List[Trace]:
    """Run workload ``name`` with a trace recorder attached; optionally
    save the captured traces (one JSON file each) under ``out_dir``.

    Only traces with at least ``min_ops`` operations are kept -- tiny
    touch-once collections dominate real workloads and add nothing to a
    differential corpus.
    """
    from repro.core.chameleon import Chameleon
    from repro.workloads import default_workload_registry

    workload = default_workload_registry().create(name, seed=seed,
                                                  scale=scale)
    vm = Chameleon().make_vm()
    recorder = TraceRecorder(max_traces=max_traces).install(vm)
    workload.run(vm)
    vm.finish()

    kept = [t for t in recorder.traces if len(t.ops) >= min_ops]
    kept.sort(key=lambda t: len(t.ops), reverse=True)
    for index, trace in enumerate(kept):
        trace.meta.update({"workload": name, "scale": scale, "seed": seed})
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        for index, trace in enumerate(kept):
            kind = trace.kind.value.lower()
            path = os.path.join(out_dir, f"{name}-{kind}-{index:03d}.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(trace.to_json(indent=2))
    return kept
