"""Seeded random trace generation for the differential fuzzer.

Traces are generated directly in encoded form (no simulated objects are
involved until replay), from a ``random.Random`` seeded with a *string* --
string seeding hashes with SHA-512 internally, so generation is fully
deterministic under any ``PYTHONHASHSEED``.  The same ``(adt, seed,
n_ops)`` always yields the identical trace, which is what makes CI
failures reproducible from the one-line seed in the log.

The generator is ADT-aware rather than uniformly random:

* it tracks a model of the collection's size so most index arguments are
  valid, with a deliberate sliver of out-of-range indices to check that
  every implementation raises the same ``IndexError``;
* each seed draws a *value profile* (ints, floats, bools, strings, heap
  handles, or mixed) so homogeneous traces exercise the primitive-array
  family and mixed traces exercise its type rejection;
* it opens iterators mid-trace and interleaves mutations with their
  advancement, probing the uniform snapshot-at-start semantics;
* it occasionally requests an *online swap* to another implementation of
  the same ADT (the :mod:`repro.core.online` retrofit path), whose replay
  doubles as a state-equivalence check across the migration;
* it occasionally forces a GC so the collection's internals survive a
  collection mid-trace.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro.collections.base import CollectionKind
from repro.verify.trace import BASELINE_IMPLS, Trace

__all__ = ["generate_trace", "ADT_KINDS", "SWAP_TARGETS"]

ADT_KINDS: Dict[str, CollectionKind] = {
    "list": CollectionKind.LIST,
    "set": CollectionKind.SET,
    "map": CollectionKind.MAP,
}

_SRC_TYPES = {
    CollectionKind.LIST: "java/util/ArrayList",
    CollectionKind.SET: "java/util/HashSet",
    CollectionKind.MAP: "java/util/HashMap",
}

#: Swap targets that support the full op surface for their kind, so a
#: mid-trace swap never turns the rest of the trace into a drop-out.
SWAP_TARGETS: Dict[CollectionKind, List[str]] = {
    CollectionKind.LIST: ["ArrayList", "LazyArrayList", "LinkedList"],
    CollectionKind.SET: ["HashSet", "ArraySet", "LazySet",
                         "SizeAdaptingSet", "LinkedHashSet"],
    CollectionKind.MAP: ["HashMap", "ArrayMap", "LazyMap",
                         "LinkedHashMap", "SizeAdaptingMap"],
}

_N_HANDLES = 8


def _profile_ints(rng: random.Random) -> list:
    return ["i", rng.randrange(-50, 50)]


def _profile_floats(rng: random.Random) -> list:
    # Exact halves: repr round-trips them losslessly and they never
    # collide with the int profile under values_equal.
    return ["f", repr(rng.randrange(-40, 40) / 2)]


def _profile_bools(rng: random.Random) -> list:
    return ["b", rng.random() < 0.5]


def _profile_strings(rng: random.Random) -> list:
    return ["s", f"k{rng.randrange(0, 24)}"]


def _profile_objects(rng: random.Random) -> list:
    return ["o", rng.randrange(_N_HANDLES)]


_PROFILES: List[Callable[[random.Random], list]] = [
    _profile_ints, _profile_floats, _profile_bools,
    _profile_strings, _profile_objects,
]


def _profile_mixed(rng: random.Random) -> list:
    return rng.choice(_PROFILES)(rng)


class _Generator:
    def __init__(self, kind: CollectionKind, rng: random.Random,
                 profile: Callable[[random.Random], list],
                 profile_name: str) -> None:
        self.kind = kind
        self.rng = rng
        self.profile = profile
        self.profile_name = profile_name
        self.ops: List[list] = []
        self.model_size = 0
        self.next_slot = 0
        self.open_slots: List[int] = []
        # Keys seen by puts, so map queries hit sometimes.
        self.known_keys: List[list] = []

    def value(self) -> list:
        return self.profile(self.rng)

    def key(self, hit_rate: float = 0.6) -> list:
        if self.known_keys and self.rng.random() < hit_rate:
            return self.rng.choice(self.known_keys)
        return self.value()

    def index(self, for_insert: bool = False) -> int:
        upper = self.model_size + (1 if for_insert else 0)
        if self.rng.random() < 0.05 or upper == 0:
            # Deliberately out of range: IndexError parity check.
            return upper + self.rng.randrange(1, 4)
        return self.rng.randrange(0, upper)

    def emit(self, op: list) -> None:
        self.ops.append(op)

    # -- op emitters ---------------------------------------------------
    def emit_mutation(self) -> None:
        kind = self.kind
        rng = self.rng
        if kind is CollectionKind.MAP:
            roll = rng.random()
            if roll < 0.55:
                key = self.key(hit_rate=0.3)
                self.emit(["put", key, self.value()])
                self.known_keys.append(key)
                self.model_size += 1  # upper bound; dup keys overcount
            elif roll < 0.75:
                self.emit(["remove_key", self.key()])
                self.model_size = max(0, self.model_size - 1)
            elif roll < 0.9:
                pairs = [["p", [self.value(), self.value()]]
                         for _ in range(rng.randrange(1, 5))]
                self.emit(["put_all", pairs])
                self.model_size += len(pairs)
            else:
                self.emit(["clear"])
                self.model_size = 0
            return
        roll = rng.random()
        if roll < 0.45:
            self.emit(["add", self.value()])
            self.model_size += 1
        elif roll < 0.6 and kind is CollectionKind.LIST:
            self.emit(["add_at", self.index(for_insert=True), self.value()])
            self.model_size += 1
        elif roll < 0.7:
            values = [self.value() for _ in range(rng.randrange(1, 5))]
            self.emit(["add_all", values])
            self.model_size += len(values)
        elif roll < 0.8 and kind is CollectionKind.LIST:
            self.emit(["remove_at", self.index()])
            self.model_size = max(0, self.model_size - 1)
        elif roll < 0.9:
            self.emit(["remove_value", self.value()])
            self.model_size = max(0, self.model_size - 1)
        elif roll < 0.95 and kind is CollectionKind.LIST:
            self.emit(["set_at", self.index(), self.value()])
        else:
            self.emit(["clear"])
            self.model_size = 0

    def emit_query(self) -> None:
        kind = self.kind
        rng = self.rng
        if kind is CollectionKind.MAP:
            op = rng.choice(["get", "contains_key", "contains_value",
                             "size", "is_empty"])
            if op in ("get", "contains_key"):
                self.emit([op, self.key()])
            elif op == "contains_value":
                self.emit([op, self.value()])
            else:
                self.emit([op])
            return
        op = rng.choice(["contains", "size", "is_empty"]
                        + (["get", "index_of", "to_list", "remove_first"]
                           if kind is CollectionKind.LIST else []))
        if op in ("contains", "index_of"):
            self.emit([op, self.value()])
        elif op == "get":
            self.emit([op, self.index()])
        else:
            self.emit([op])

    def emit_iteration(self) -> None:
        rng = self.rng
        if len(self.open_slots) < 2 and rng.random() < 0.6:
            slot = self.next_slot
            self.next_slot += 1
            if self.kind is CollectionKind.MAP:
                mode = rng.choice(["values", "items", "keys"])
            else:
                mode = "values"
            self.emit(["iter_new", slot, mode])
            self.open_slots.append(slot)
        if not self.open_slots:
            return
        slot = rng.choice(self.open_slots)
        steps = rng.randrange(1, 5)
        for _ in range(steps):
            self.emit(["iter_next", slot])
            if rng.random() < 0.25:
                self.emit_mutation()  # probe snapshot semantics
        if rng.random() < 0.3:
            self.open_slots.remove(slot)

    def emit_swap(self) -> None:
        target = self.rng.choice(SWAP_TARGETS[self.kind])
        kwargs: dict = {}
        if target.startswith("SizeAdapting") and self.rng.random() < 0.5:
            kwargs = {"conversion_threshold":
                      self.rng.choice([2, 4, 8])}
        self.emit(["swap", target, kwargs])


def generate_trace(adt: str, seed: int, n_ops: int = 40) -> Trace:
    """Generate one deterministic random trace for ``adt``.

    Args:
        adt: ``"list"``, ``"set"`` or ``"map"``.
        seed: Trace seed; together with ``adt`` and ``n_ops`` it fully
            determines the trace under any ``PYTHONHASHSEED``.
        n_ops: Approximate op count (iteration bursts may overshoot).
    """
    kind = ADT_KINDS[adt]
    rng = random.Random(f"chameleon-fuzz/{adt}/{seed}/{n_ops}")
    profiles: List = list(_PROFILES) + [_profile_mixed]
    profile = profiles[seed % len(profiles)]
    gen = _Generator(kind, rng, profile, profile.__name__)

    if rng.random() < 0.3:
        init = [(["p", [gen.value(), gen.value()]]
                 if kind is CollectionKind.MAP else gen.value())
                for _ in range(rng.randrange(1, 6))]
        gen.emit(["init", init])
        gen.model_size = len(init)

    while len(gen.ops) < n_ops:
        roll = rng.random()
        if roll < 0.45:
            gen.emit_mutation()
        elif roll < 0.72:
            gen.emit_query()
        elif roll < 0.92:
            gen.emit_iteration()
        elif roll < 0.97:
            gen.emit_swap()
        else:
            gen.emit(["gc"])

    trace = Trace(kind=kind, src_type=_SRC_TYPES[kind],
                  baseline_impl=BASELINE_IMPLS[kind],
                  context=f"fuzz/{adt}/seed={seed}")
    trace.ops = gen.ops
    trace.meta = {"generator": "repro.verify.generate",
                  "adt": adt, "seed": seed, "n_ops": n_ops,
                  "profile": profile.__name__}
    return trace
