"""Heap and semantic-map sanitizer: GC-cycle invariant checking.

The simulated heap is an explicit object graph with byte-accurate
accounting, and the collector's Table 3 statistics are only as
trustworthy as that graph.  :class:`HeapSanitizer` hangs off the
collector's pre/post cycle hooks and, after *every* GC cycle (major or
minor), validates the structural invariants the rest of the system
assumes:

* **roots-live** -- every registered GC root is still in the store;
* **no-dangling** -- every reference edge out of a marked object points
  at an object in the store, with positive multiplicity;
* **sweep-complete** -- no unmarked, un-kept object from before the cycle
  survives the sweep (objects allocated *during* the sweep by death hooks
  are exempt: their ids are at or above the pre-cycle high-water mark);
* **semantic-attribution** -- every live collection anchor yields a
  well-formed footprint triple (``live >= used >= core >= 0``), its
  internal objects are live and claimed by exactly one top-level anchor,
  and its ``live`` bytes equal the anchor plus its distinct internals
  (the semantic map attributes exactly the collection's own objects,
  nothing more, nothing less);
* **stats-ordering** -- the cycle's aggregate statistics satisfy
  ``live_data >= collection_live >= collection_used >= collection_core``
  and every per-context triple satisfies the same ordering;
* **occupancy** -- the heap's running byte ledger
  (``allocated - freed``) equals the sum of the sizes in the store.

The sanitizer is a pure observer: it never charges the virtual clock,
never allocates simulated objects, and never mutates the heap, so a
sanitized run's tick trace is byte-identical to a plain run (pinned by
``tests/verify/test_sanitizer.py``).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from repro.runtime.vm import (RuntimeEnvironment, add_vm_created_hook,
                              remove_vm_created_hook)

__all__ = ["Violation", "HeapSanitizer", "sanitized_vms"]


@dataclass(frozen=True)
class Violation:
    """One invariant breach observed after a GC cycle."""

    check: str
    cycle: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] cycle {self.cycle}: {self.detail}"


class HeapSanitizer:
    """Validates heap/semantic-map invariants after every GC cycle.

    Attach with :meth:`attach`; violations accumulate in
    :attr:`violations` (bounded by ``max_violations`` per check kind so a
    systemic breach cannot OOM the host).  ``strict=True`` raises
    :class:`AssertionError` on the first violation instead.
    """

    def __init__(self, strict: bool = False,
                 max_violations: int = 64) -> None:
        self.strict = strict
        self.max_violations = max_violations
        self.violations: List[Violation] = []
        self.cycles_checked = 0
        self._boundaries: Dict[int, int] = {}
        self._vms: List[RuntimeEnvironment] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, vm: RuntimeEnvironment) -> "HeapSanitizer":
        vm.gc.pre_cycle_hooks.append(self._pre_cycle)
        vm.gc.post_cycle_hooks.append(self._post_cycle)
        self._vms.append(vm)
        return self

    def detach(self, vm: RuntimeEnvironment) -> None:
        with contextlib.suppress(ValueError):
            vm.gc.pre_cycle_hooks.remove(self._pre_cycle)
        with contextlib.suppress(ValueError):
            vm.gc.post_cycle_hooks.remove(self._post_cycle)
        with contextlib.suppress(ValueError):
            self._vms.remove(vm)

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        if self.ok:
            return (f"sanitizer: {self.cycles_checked} GC cycle(s) checked, "
                    "no violations")
        lines = [f"sanitizer: {len(self.violations)} violation(s) over "
                 f"{self.cycles_checked} cycle(s):"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _pre_cycle(self, gc) -> None:
        self._boundaries[id(gc)] = gc.heap.high_water_id

    def _post_cycle(self, gc, marked: Set[int], stats,
                    kept: FrozenSet[int]) -> None:
        boundary = self._boundaries.pop(id(gc), 0)
        self.cycles_checked += 1
        cycle = stats.cycle
        self._check_roots(gc, cycle)
        self._check_refs(gc, marked, cycle)
        self._check_sweep(gc, marked, kept, boundary, cycle)
        self._check_semantics(gc, marked, cycle)
        self._check_stats(stats, cycle)
        self._check_occupancy(gc, cycle)

    def _emit(self, check: str, cycle: int, detail: str) -> None:
        if sum(1 for v in self.violations if v.check == check) \
                >= self.max_violations:
            return
        violation = Violation(check, cycle, detail)
        self.violations.append(violation)
        if self.strict:
            raise AssertionError(str(violation))

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def _check_roots(self, gc, cycle: int) -> None:
        heap = gc.heap
        for root_id in heap.root_ids():
            if not heap.contains(root_id):
                self._emit("roots-live", cycle,
                           f"root #{root_id} was swept")

    def _check_refs(self, gc, marked: Set[int], cycle: int) -> None:
        heap = gc.heap
        for obj_id in marked:
            obj = heap.get(obj_id) if heap.contains(obj_id) else None
            if obj is None:
                self._emit("no-dangling", cycle,
                           f"marked object #{obj_id} missing from store")
                continue
            for ref_id, count in obj.refs.items():
                if count < 0:
                    self._emit("no-dangling", cycle,
                               f"#{obj_id} holds negative-multiplicity "
                               f"edge to #{ref_id} ({count})")
                elif count > 0 and not heap.contains(ref_id):
                    self._emit("no-dangling", cycle,
                               f"{obj.type_name}#{obj_id} references swept "
                               f"object #{ref_id} (x{count})")

    def _check_sweep(self, gc, marked: Set[int], kept: FrozenSet[int],
                     boundary: int, cycle: int) -> None:
        survivors = gc.heap.ids() - marked
        if kept:
            survivors = survivors - kept
        for obj_id in survivors:
            # Death hooks may allocate mid-sweep; those ids sit at or
            # above the pre-cycle high-water mark and are legitimate.
            if obj_id < boundary:
                obj = gc.heap.get(obj_id)
                self._emit("sweep-complete", cycle,
                           f"unmarked {obj.type_name}#{obj_id} survived "
                           "the sweep")

    def _check_semantics(self, gc, marked: Set[int], cycle: int) -> None:
        heap = gc.heap
        lookup = gc.semantic_maps.lookup
        anchors = []
        for obj_id in marked:
            if not heap.contains(obj_id):
                continue  # already reported by no-dangling
            obj = heap.get(obj_id)
            semantic_map = lookup(obj)
            if semantic_map is not None:
                # Half-built ADTs (construction-rooted, not yet adopted)
                # are accounted as plain data by the collector; mirror that.
                payload = obj.payload
                if payload is not None and getattr(
                        payload, "_construction_rooted", False):
                    continue
                anchors.append((obj, semantic_map))

        claimed: Set[int] = set()
        for anchor, semantic_map in anchors:
            claimed.update(semantic_map.internal_ids(anchor))

        owners: Dict[int, int] = {}
        for anchor, semantic_map in anchors:
            if anchor.obj_id in claimed:
                continue  # folded into its owning ADT, same as _account
            try:
                triple = semantic_map.footprint(anchor)
            except ValueError as exc:
                self._emit("semantic-attribution", cycle,
                           f"{anchor.type_name}#{anchor.obj_id} yields "
                           f"malformed footprint: {exc}")
                continue
            internal_bytes = 0
            seen: Set[int] = set()
            broken = False
            for internal_id in semantic_map.internal_ids(anchor):
                if internal_id in seen:
                    continue
                seen.add(internal_id)
                prior_owner = owners.get(internal_id)
                if prior_owner is not None and prior_owner != anchor.obj_id:
                    self._emit("semantic-attribution", cycle,
                               f"internal #{internal_id} claimed by both "
                               f"#{prior_owner} and #{anchor.obj_id}")
                owners[internal_id] = anchor.obj_id
                if not heap.contains(internal_id):
                    self._emit("semantic-attribution", cycle,
                               f"{anchor.type_name}#{anchor.obj_id} claims "
                               f"swept internal #{internal_id}")
                    broken = True
                    continue
                if internal_id not in marked:
                    self._emit("semantic-attribution", cycle,
                               f"{anchor.type_name}#{anchor.obj_id} claims "
                               f"unmarked internal #{internal_id}")
                internal_bytes += heap.get(internal_id).size
            if broken:
                continue
            expected_live = anchor.size + internal_bytes
            if triple.live != expected_live:
                self._emit("semantic-attribution", cycle,
                           f"{anchor.type_name}#{anchor.obj_id} reports "
                           f"live={triple.live} but anchor+internals total "
                           f"{expected_live}")

    def _check_stats(self, stats, cycle: int) -> None:
        if not (stats.live_data >= stats.collection_live
                >= stats.collection_used >= stats.collection_core >= 0):
            self._emit("stats-ordering", cycle,
                       f"aggregate ordering broken: live_data="
                       f"{stats.live_data} >= live={stats.collection_live} "
                       f">= used={stats.collection_used} >= core="
                       f"{stats.collection_core} fails")
        for context_id, ctx in stats.per_context.items():
            if not (ctx.live >= ctx.used >= ctx.core >= 0):
                self._emit("stats-ordering", cycle,
                           f"context {context_id} triple broken: "
                           f"{ctx.live}/{ctx.used}/{ctx.core}")

    def _check_occupancy(self, gc, cycle: int) -> None:
        heap = gc.heap
        store_bytes = sum(obj.size for obj in heap.objects())
        if store_bytes != heap.occupied_bytes:
            self._emit("occupancy", cycle,
                       f"ledger says {heap.occupied_bytes} occupied bytes "
                       f"but the store holds {store_bytes}")


@contextlib.contextmanager
def sanitized_vms(strict: bool = False) -> Iterator[HeapSanitizer]:
    """Attach one shared sanitizer to every VM created inside the block.

    Lets a whole experiment run (e.g. ``fig6``) execute under
    sanitization without threading a parameter through the experiment
    API; the accumulated violations are inspected on the yielded
    sanitizer afterwards.
    """
    sanitizer = HeapSanitizer(strict=strict)

    def on_vm(vm: RuntimeEnvironment) -> None:
        sanitizer.attach(vm)

    add_vm_created_hook(on_vm)
    try:
        yield sanitizer
    finally:
        remove_vm_created_hook(on_vm)
