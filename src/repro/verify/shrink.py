"""Trace shrinking (delta debugging) and standalone repro emission.

A fuzzer finding is only useful if a human can stare at it, so every
divergence is minimised before being reported.  :func:`shrink_trace` runs
classic ddmin over the op list -- remove exponentially shrinking chunks,
keeping any removal that preserves the *failure signature* (same
implementation, same diverging operation) -- followed by a per-op value
minimisation pass that shrinks surviving arguments toward canonical small
values (``0``, ``"k0"``, handle ``0``).  Both passes are deterministic:
the same failing trace always shrinks to the same minimal trace.

Replay tolerates malformed traces by design (orphan ``iter_next`` ops
replay as no-ops), so the shrinker never needs to repair slot references
when it deletes an ``iter_new``.

:func:`write_repro_script` renders a shrunk trace as a self-contained
Python script that re-runs the differential check and exits non-zero on
divergence -- the artifact CI uploads when the fuzz-smoke leg fails.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional, Tuple

from repro.verify.trace import DiffReport, Trace, diff_trace

__all__ = ["shrink_trace", "make_failure_checker", "write_repro_script",
           "ShrinkStats"]


class ShrinkStats:
    """Bookkeeping for one shrink run."""

    def __init__(self) -> None:
        self.replays = 0
        self.removed_ops = 0
        self.minimised_values = 0


def make_failure_checker(signature: Tuple[str, str],
                         sanitize: bool = False,
                         ) -> Callable[[Trace], bool]:
    """A predicate: does ``trace`` still fail with ``signature``?

    The signature is ``(impl_name, op_name)`` of the first divergence --
    looser than exact-step equality (steps shift as ops are removed) but
    tight enough that shrinking cannot wander onto an unrelated bug.
    """

    def still_fails(trace: Trace) -> bool:
        report = diff_trace(trace, sanitize=sanitize)
        return report.failure_signature() == signature

    return still_fails


def _minimise_value(enc: list) -> Optional[list]:
    """One canonical smaller form for an encoded value, or ``None``."""
    tag = enc[0]
    if tag == "i" and enc[1] != 0:
        return ["i", 0]
    if tag == "f" and enc[1] != "0.0":
        return ["f", "0.0"]
    if tag == "s" and enc[1] != "k0":
        return ["s", "k0"]
    if tag == "o" and enc[1] != 0:
        return ["o", 0]
    if tag == "p":
        left = _minimise_value(enc[1][0])
        if left is not None:
            return ["p", [left, enc[1][1]]]
        right = _minimise_value(enc[1][1])
        if right is not None:
            return ["p", [enc[1][0], right]]
    return None


def _value_positions(op: list) -> List[Tuple[int, Optional[int]]]:
    """(arg-index, sub-index) coordinates of encoded values in ``op``."""
    positions: List[Tuple[int, Optional[int]]] = []
    for arg_index, arg in enumerate(op[1:], start=1):
        if not isinstance(arg, list):
            continue
        if arg and isinstance(arg[0], str):
            positions.append((arg_index, None))
        else:  # bulk list of encodings
            positions.extend((arg_index, i) for i in range(len(arg)))
    return positions


def shrink_trace(trace: Trace, still_fails: Callable[[Trace], bool],
                 max_replays: int = 2000,
                 stats: Optional[ShrinkStats] = None) -> Trace:
    """ddmin + value minimisation; returns the smallest failing trace.

    ``still_fails`` must hold for ``trace`` itself; the result is
    1-minimal with respect to op removal (no single op can be removed)
    unless ``max_replays`` is exhausted first.
    """
    stats = stats or ShrinkStats()

    def check(candidate: Trace) -> bool:
        stats.replays += 1
        return still_fails(candidate)

    ops = list(trace.ops)
    # -- pass 1: ddmin chunk removal -----------------------------------
    chunk = max(1, len(ops) // 2)
    while chunk >= 1 and stats.replays < max_replays:
        start = 0
        removed_any = False
        while start < len(ops) and stats.replays < max_replays:
            candidate_ops = ops[:start] + ops[start + chunk:]
            if candidate_ops and check(trace.with_ops(candidate_ops)):
                stats.removed_ops += len(ops) - len(candidate_ops)
                ops = candidate_ops
                removed_any = True
            else:
                start += chunk
        if chunk == 1 and not removed_any:
            break
        chunk = max(1, chunk // 2) if chunk > 1 else (1 if removed_any
                                                      else 0)

    # -- pass 2: value minimisation ------------------------------------
    changed = True
    while changed and stats.replays < max_replays:
        changed = False
        for op_index, op in enumerate(ops):
            for arg_index, sub_index in _value_positions(op):
                target = (op[arg_index] if sub_index is None
                          else op[arg_index][sub_index])
                smaller = _minimise_value(target)
                if smaller is None:
                    continue
                new_op = json.loads(json.dumps(op))
                if sub_index is None:
                    new_op[arg_index] = smaller
                else:
                    new_op[arg_index][sub_index] = smaller
                candidate_ops = ops[:op_index] + [new_op] \
                    + ops[op_index + 1:]
                if check(trace.with_ops(candidate_ops)):
                    ops = candidate_ops
                    stats.minimised_values += 1
                    changed = True
                if stats.replays >= max_replays:
                    break
            if stats.replays >= max_replays:
                break

    shrunk = trace.with_ops(ops)
    shrunk.meta["shrunk_from"] = len(trace.ops)
    shrunk.meta["shrink_replays"] = stats.replays
    return shrunk


_REPRO_TEMPLATE = '''\
#!/usr/bin/env python
"""Standalone differential repro emitted by the chameleon trace shrinker.

Run with the repository's ``src`` directory on PYTHONPATH:

    PYTHONPATH=src python {script_name}

Exits 0 if every implementation agrees on the embedded trace, 1 on
divergence (i.e. while the bug reproduces).
"""
import sys

{prelude}
from repro.verify.trace import Trace, diff_trace

TRACE_JSON = {trace_json!r}


def main():
    trace = Trace.from_json(TRACE_JSON)
    report = diff_trace(trace)
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
'''


def write_repro_script(trace: Trace, path: str, prelude: str = "") -> str:
    """Write a self-contained repro script for ``trace`` to ``path``.

    ``prelude`` is injected verbatim before the repro imports -- the test
    harness uses it to re-plant an intentional bug (``import plant_bug``)
    so the script reproduces outside the originating process.
    """
    script_name = path.rsplit("/", 1)[-1]
    script = _REPRO_TEMPLATE.format(script_name=script_name,
                                    prelude=prelude,
                                    trace_json=trace.to_json())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(script)
    return path
