"""Operation-trace record/replay and differential diffing.

The paper's premise is that "the different implementations have the same
logical behavior" (section 1) -- every registered backing of an ADT must be
observably interchangeable.  This module makes that contract mechanically
checkable, MapReplay-style: a :class:`TraceRecorder` attached to a
:class:`~repro.runtime.vm.RuntimeEnvironment` captures, per collection
instance, the sequence of operations the program performed (name,
arguments, observed result); :func:`replay_trace` re-executes such a trace
against any single implementation in a fresh VM; and :func:`diff_trace`
replays it against *every* eligible implementation of the ADT kind and
diffs the observable outcomes step by step.

Recording is a pure observation: the recorder patches the wrapper's
recorded methods on the *instance*, never charges the virtual clock, never
interns allocation contexts, and never allocates simulated objects, so a
recorded run's tick count is byte-identical to a plain run (pinned by
``tests/verify/test_tick_purity.py``).

Traces are JSON documents.  Values are encoded as small tagged lists so
that Java-like element identity survives the round trip: primitives carry
their type tag (``1``, ``True`` and ``1.0`` stay distinct, as boxed
``Integer``/``Boolean``/``Double`` would), while application heap objects
become *handles* -- indices into a per-trace table -- replayed as fresh
simulated objects with the same identity structure.

Legitimate, documented differences between implementations are normalised
rather than flagged:

* An implementation that raises :class:`UnsupportedOperation` (or rejects
  a value type with ``TypeError``, as the primitive arrays do) *drops out*
  at that step; its remaining steps are not compared.
* Set and map iteration order is implementation-defined (hash order vs
  array order vs insertion order), so ``iter_next`` values are compared as
  per-iterator multisets; list iteration stays order-sensitive.
* ``LinkedHashSet`` backing a List deduplicates, so it is excluded from
  traces that ever add a duplicate value; ``DoubleArray`` normalises
  stored ints to floats, so it is excluded from traces that store ints
  (see :func:`eligible_impls`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.collections.base import CollectionKind, UnsupportedOperation
from repro.collections.registry import (ImplementationRegistry,
                                        default_registry)
from repro.collections.wrappers import (ChameleonCollection, ChameleonList,
                                        ChameleonMap, ChameleonSet)
from repro.memory.heap import HeapObject
from repro.runtime.context import ContextKey, capture_context
from repro.runtime.vm import RuntimeEnvironment

__all__ = ["Trace", "TraceRecorder", "ReplayResult", "Divergence",
           "DiffReport", "replay_trace", "diff_trace", "eligible_impls",
           "encode_value", "decode_value", "BASELINE_IMPLS",
           "TRACE_FORMAT_VERSION"]

TRACE_FORMAT_VERSION = 1

#: The reference implementation per ADT kind: the library default, which
#: supports the full operation surface and therefore never drops out.
BASELINE_IMPLS = {
    CollectionKind.LIST: "ArrayList",
    CollectionKind.SET: "HashSet",
    CollectionKind.MAP: "HashMap",
}

_WRAPPER_CLASSES = {
    CollectionKind.LIST: ChameleonList,
    CollectionKind.SET: ChameleonSet,
    CollectionKind.MAP: ChameleonMap,
}

# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------


class HandleTable:
    """Maps application heap objects to dense per-trace handles.

    During recording, handles are assigned on first sight; during replay
    the table is pre-populated with fresh pinned objects, one per handle
    appearing in the trace, so identity relations are preserved.
    """

    def __init__(self) -> None:
        self._index: Dict[int, int] = {}
        self.objects: List[HeapObject] = []

    def handle_for(self, obj: HeapObject) -> int:
        handle = self._index.get(id(obj))
        if handle is None:
            handle = len(self.objects)
            self._index[id(obj)] = handle
            self.objects.append(obj)
        return handle

    def object_for(self, handle: int) -> HeapObject:
        return self.objects[handle]

    def preload(self, objects: List[HeapObject]) -> None:
        for obj in objects:
            self.handle_for(obj)


def encode_value(value: Any, handles: HandleTable) -> list:
    """Encode one element/result value as a JSON-safe tagged list."""
    if value is None:
        return ["n"]
    if isinstance(value, bool):  # before int: bool is an int subclass
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", repr(value)]  # repr round-trips exactly
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, HeapObject):
        return ["o", handles.handle_for(value)]
    if isinstance(value, tuple) and len(value) == 2:
        return ["p", [encode_value(value[0], handles),
                      encode_value(value[1], handles)]]
    if isinstance(value, list):
        return ["l", [encode_value(item, handles) for item in value]]
    # Opaque fallback: compared (and replayed) as its token string.
    return ["x", f"{type(value).__name__}:{value!r}"]


def decode_value(enc: list, handles: HandleTable) -> Any:
    """Decode a tagged value; handles resolve through ``handles``."""
    tag = enc[0]
    if tag == "n":
        return None
    if tag in ("b", "i", "s", "x"):
        return enc[1]
    if tag == "f":
        return float(enc[1])
    if tag == "o":
        return handles.object_for(enc[1])
    if tag == "p":
        return (decode_value(enc[1][0], handles),
                decode_value(enc[1][1], handles))
    if tag == "l":
        return [decode_value(item, handles) for item in enc[1]]
    raise ValueError(f"unknown value tag {tag!r}")


def _scan_handles(node: Any, found: set) -> None:
    if isinstance(node, list):
        if len(node) == 2 and node[0] == "o" and isinstance(node[1], int):
            found.add(node[1])
        for item in node:
            _scan_handles(item, found)


def max_handle(ops: List[list]) -> int:
    """Highest object handle referenced anywhere in ``ops`` (-1 if none)."""
    found: set = set()
    _scan_handles(ops, found)
    return max(found) if found else -1


# ----------------------------------------------------------------------
# Operation surfaces
# ----------------------------------------------------------------------

# Argument kinds: "v" element value, "i" raw int, "vs" bulk value source,
# "ps" bulk pair source (maps).
KIND_OPS: Dict[CollectionKind, Dict[str, Tuple[str, ...]]] = {
    CollectionKind.LIST: {
        "add": ("v",), "add_at": ("i", "v"), "add_all": ("vs",),
        "add_all_at": ("i", "vs"), "get": ("i",), "set_at": ("i", "v"),
        "remove_at": ("i",), "remove_first": (), "remove_value": ("v",),
        "contains": ("v",), "index_of": ("v",), "to_list": (),
    },
    CollectionKind.SET: {
        "add": ("v",), "add_all": ("vs",), "remove_value": ("v",),
        "contains": ("v",),
    },
    CollectionKind.MAP: {
        "put": ("v", "v"), "get": ("v",), "remove_key": ("v",),
        "contains_key": ("v",), "contains_value": ("v",),
        "put_all": ("ps",),
    },
}

COMMON_OPS: Dict[str, Tuple[str, ...]] = {
    "size": (), "is_empty": (), "clear": (),
}

#: iterator modes -> the wrapper method that opens them.
ITER_METHODS = {"values": "iterate", "items": "iterate_items",
                "keys": "iterate_keys"}


def ops_for_kind(kind: CollectionKind) -> Dict[str, Tuple[str, ...]]:
    """The full recorded/replayable op surface for ``kind``."""
    surface = dict(KIND_OPS[kind])
    surface.update(COMMON_OPS)
    return surface


# ----------------------------------------------------------------------
# The trace document
# ----------------------------------------------------------------------


@dataclass
class Trace:
    """One collection instance's operation history.

    ``ops`` entries are ``[name, *args]`` with JSON-native args; value
    args are tagged encodings.  ``results`` (parallel to ``ops``, possibly
    empty for generated traces) holds the outcomes observed at record
    time; diffing uses baseline *replay* as the reference, so recorded
    results are informational.
    """

    kind: CollectionKind
    src_type: str
    baseline_impl: str
    context: str = ""
    ops: List[list] = field(default_factory=list)
    results: List[list] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "format": TRACE_FORMAT_VERSION,
            "kind": self.kind.value,
            "src_type": self.src_type,
            "baseline_impl": self.baseline_impl,
            "context": self.context,
            "ops": self.ops,
            "results": self.results,
            "meta": self.meta,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        if data.get("format", 1) > TRACE_FORMAT_VERSION:
            raise ValueError(
                f"trace format {data['format']} is newer than supported "
                f"({TRACE_FORMAT_VERSION})")
        return cls(kind=CollectionKind(data["kind"]),
                   src_type=data["src_type"],
                   baseline_impl=data["baseline_impl"],
                   context=data.get("context", ""),
                   ops=data.get("ops", []),
                   results=data.get("results", []),
                   meta=data.get("meta", {}))

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        return cls.from_dict(json.loads(text))

    def with_ops(self, ops: List[list]) -> "Trace":
        """A copy carrying ``ops`` (recorded results dropped: they no
        longer correspond)."""
        return Trace(kind=self.kind, src_type=self.src_type,
                     baseline_impl=self.baseline_impl, context=self.context,
                     ops=ops, results=[], meta=dict(self.meta))

    def __len__(self) -> int:
        return len(self.ops)


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------


class _RecordingIterator:
    """Delegates to a :class:`CollectionIterator`, reporting each step."""

    __slots__ = ("_inner", "_on_next")

    def __init__(self, inner, on_next: Callable[[Any, bool], None]) -> None:
        self._inner = inner
        self._on_next = on_next

    def __iter__(self) -> "_RecordingIterator":
        return self

    def __next__(self) -> Any:
        try:
            value = next(self._inner)
        except StopIteration:
            self._on_next(None, True)
            raise
        self._on_next(value, False)
        return value

    @property
    def heap_obj(self):
        return self._inner.heap_obj

    @property
    def returned(self) -> int:
        return self._inner.returned

    @property
    def is_shared_empty(self) -> bool:
        return self._inner.is_shared_empty


class _RecState:
    """Per-recorded-collection mutable state."""

    __slots__ = ("trace", "handles", "next_slot", "closed", "max_ops")

    def __init__(self, trace: Trace, max_ops: int) -> None:
        self.trace = trace
        self.handles = HandleTable()
        self.next_slot = 0
        self.closed = False
        self.max_ops = max_ops

    def emit(self, op: list, outcome: list) -> None:
        if self.closed:
            return
        self.trace.ops.append(op)
        self.trace.results.append(outcome)
        if len(self.trace.ops) >= self.max_ops:
            self.closed = True
            self.trace.meta["truncated"] = True


class TraceRecorder:
    """Records per-collection operation traces from a live run.

    Install with ``vm.set_tracer(recorder)`` (before the workload runs);
    every :class:`ChameleonCollection` constructed afterwards reports
    itself and has its recorded operations observed.  The recorder is a
    pure observer: zero tick charges, zero simulated allocations, zero
    allocation-context interning.
    """

    def __init__(self, max_ops_per_trace: int = 4096,
                 max_traces: Optional[int] = None,
                 src_types: Optional[set] = None) -> None:
        self.traces: List[Trace] = []
        self.max_ops_per_trace = max_ops_per_trace
        self.max_traces = max_traces
        self.src_types = src_types

    def install(self, vm: RuntimeEnvironment) -> "TraceRecorder":
        vm.set_tracer(self)
        return self

    # -- wrapper callback ----------------------------------------------
    def on_collection_created(self, wrapper: ChameleonCollection) -> None:
        if self.max_traces is not None and len(self.traces) >= self.max_traces:
            return
        if self.src_types is not None and wrapper.src_type not in self.src_types:
            return
        # Pure capture: interns nothing, charges nothing.  Library frames
        # (including repro.verify) are filtered by capture_context itself.
        key, _ = capture_context(depth=2, skip=0)
        trace = Trace(kind=wrapper.KIND, src_type=wrapper.src_type,
                      baseline_impl=wrapper.impl.IMPL_NAME,
                      context=key.render())
        state = _RecState(trace, self.max_ops_per_trace)
        self._record_init(wrapper, state)
        self.traces.append(trace)

        surface = ops_for_kind(wrapper.KIND)
        for name, spec in surface.items():
            self._wrap_op(wrapper, state, name, spec)
        self._wrap_iter(wrapper, state, "iterate", "values")
        if wrapper.KIND is CollectionKind.MAP:
            self._wrap_iter(wrapper, state, "iterate_items", "items")
            self._wrap_iter(wrapper, state, "iterate_keys", "keys")
        self._wrap_swap(wrapper, state)

    def _record_init(self, wrapper: ChameleonCollection,
                     state: _RecState) -> None:
        """Snapshot pre-existing contents (copy-constructed wrappers)."""
        if wrapper.KIND is CollectionKind.MAP:
            contents = wrapper.impl.peek_items()
        else:
            contents = wrapper.impl.peek_values()
        if not contents:
            return
        encoded = [encode_value(item, state.handles) for item in contents]
        state.emit(["init", encoded], ["ok", ["n"]])

    # -- instance patching ---------------------------------------------
    def _wrap_op(self, wrapper: ChameleonCollection, state: _RecState,
                 name: str, spec: Tuple[str, ...]) -> None:
        original = getattr(wrapper, name)

        def recorded(*args, **kwargs):
            if state.closed:
                return original(*args, **kwargs)
            enc_args, call_args = _encode_call_args(spec, args, state.handles)
            op = [name] + enc_args
            try:
                result = original(*call_args, **kwargs)
            except UnsupportedOperation:
                state.emit(op, ["unsup"])
                raise
            except (IndexError, KeyError) as exc:
                state.emit(op, ["raise", type(exc).__name__])
                raise
            state.emit(op, ["ok", encode_value(result, state.handles)])
            return result

        wrapper.__dict__[name] = recorded

    def _wrap_iter(self, wrapper: ChameleonCollection, state: _RecState,
                   method_name: str, mode: str) -> None:
        original = getattr(wrapper, method_name)

        def recorded():
            if state.closed:
                return original()
            slot = state.next_slot
            state.next_slot += 1
            iterator = original()
            state.emit(["iter_new", slot, mode], ["ok", ["n"]])

            def on_next(value: Any, stop: bool) -> None:
                if stop:
                    state.emit(["iter_next", slot], ["stop"])
                else:
                    state.emit(["iter_next", slot],
                               ["ok", encode_value(value, state.handles)])

            return _RecordingIterator(iterator, on_next)

        wrapper.__dict__[method_name] = recorded

    def _wrap_swap(self, wrapper: ChameleonCollection,
                   state: _RecState) -> None:
        original = wrapper.swap_to

        def recorded(impl_name, initial_capacity=None, impl_kwargs=None):
            result = original(impl_name, initial_capacity, impl_kwargs)
            state.emit(["swap", impl_name, dict(impl_kwargs or {})],
                       ["ok", ["n"]])
            return result

        wrapper.__dict__["swap_to"] = recorded


def _encode_call_args(spec: Tuple[str, ...], args: tuple,
                      handles: HandleTable) -> Tuple[list, tuple]:
    """Encode positional args per ``spec``; bulk sources are recorded by
    effect (their values at call time) and materialised when the caller
    passed a one-shot iterable."""
    enc_args: List[Any] = []
    call_args: List[Any] = []
    for kind, arg in zip(spec, args):
        if kind == "v":
            enc_args.append(encode_value(arg, handles))
            call_args.append(arg)
        elif kind == "i":
            enc_args.append(int(arg))
            call_args.append(arg)
        elif kind == "vs":
            if isinstance(arg, ChameleonCollection):
                values = arg.impl.peek_values()
                call_args.append(arg)
            else:
                values = list(arg)
                call_args.append(values)
            enc_args.append([encode_value(v, handles) for v in values])
        elif kind == "ps":
            if isinstance(arg, ChameleonCollection):
                pairs = [tuple(item) for item in arg.impl.peek_items()]
                call_args.append(arg)
            else:
                pairs = list(arg.items())
                call_args.append(arg)
            enc_args.append([encode_value(p, handles) for p in pairs])
        else:  # pragma: no cover - spec typo guard
            raise ValueError(f"unknown arg kind {kind!r}")
    return enc_args, tuple(call_args)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------


@dataclass
class ReplayResult:
    """Outcome of replaying one trace against one implementation.

    ``gc_detail`` (populated on request) is the replay's full GC
    observable record: freed object ids in sweep order, surviving
    object ids, and every per-cycle statistic -- the byte-identity
    surface the interchangeable GC cores are differentially tested on.
    """

    impl_name: str
    outcomes: List[list]
    dropped_at: Optional[int] = None
    ticks: int = 0
    violations: List[Any] = field(default_factory=list)
    gc_detail: Optional[dict] = None

    @property
    def dropped(self) -> bool:
        return self.dropped_at is not None


def _canon(enc: Any) -> str:
    return json.dumps(enc, sort_keys=True)


def _state_snapshot(wrapper: ChameleonCollection,
                    handles: HandleTable) -> List[str]:
    """Canonical contents for swap state-equivalence: ordered for lists,
    sorted multiset for sets/maps.  Uses the replay's handle table so
    object identities encode stably regardless of iteration order."""
    if wrapper.KIND is CollectionKind.MAP:
        encoded = [_canon(encode_value(tuple(item), handles))
                   for item in wrapper.impl.peek_items()]
        return sorted(encoded)
    encoded = [_canon(encode_value(v, handles))
               for v in wrapper.impl.peek_values()]
    if wrapper.KIND is CollectionKind.SET:
        return sorted(encoded)
    return encoded


def replay_trace(trace: Trace, impl_name: str,
                 registry: Optional[ImplementationRegistry] = None,
                 sanitize: bool = False,
                 gc_core: Optional[str] = None,
                 vm_core: Optional[str] = None,
                 gc_detail: bool = False) -> ReplayResult:
    """Replay ``trace`` against ``impl_name`` in a fresh, isolated VM.

    Malformed traces (as the shrinker produces: orphan ``iter_next``,
    unknown slots) replay as deterministic no-ops rather than crashing.
    An :class:`UnsupportedOperation`/``TypeError`` from the implementation
    records an ``unsup`` outcome and stops the replay (drop-out).

    ``gc_core`` selects the collector's mark/account core and
    ``vm_core`` the runtime's operation-pipeline core for this replay
    (default: the config defaults); with ``gc_detail`` the result
    carries the replay's full GC observable record, so two replays can
    be diffed core-against-core along either axis.
    """
    registry = registry or default_registry()
    vm = RuntimeEnvironment(gc_threshold_bytes=None, gc_core=gc_core,
                            vm_core=vm_core)
    sanitizer = None
    if sanitize:
        from repro.verify.sanitizer import HeapSanitizer
        sanitizer = HeapSanitizer()
        sanitizer.attach(vm)
    freed_ids: List[int] = []
    if gc_detail:
        original_free = vm.heap.free

        def recording_free(obj: HeapObject) -> None:
            freed_ids.append(obj.obj_id)
            original_free(obj)

        vm.heap.free = recording_free  # type: ignore[method-assign]

    handles = HandleTable()
    for handle in range(max_handle(trace.ops) + 1):
        obj = vm.allocate_data("TraceObj", ref_fields=1)
        vm.add_root(obj)
        handles.handle_for(obj)
        del handle

    wrapper_cls = _WRAPPER_CLASSES[trace.kind]
    wrapper = wrapper_cls(
        vm, src_type=trace.src_type, impl=impl_name, registry=registry,
        context=ContextKey.synthetic("repro.verify.replay"))
    wrapper.pin()

    outcomes: List[list] = []
    iterators: Dict[int, Any] = {}
    dropped_at: Optional[int] = None
    for step, op in enumerate(trace.ops):
        outcome = _apply_op(vm, wrapper, iterators, handles, op)
        outcomes.append(outcome)
        if outcome[0] == "unsup":
            dropped_at = step
            break
    vm.collect()
    detail: Optional[dict] = None
    if gc_detail:
        import dataclasses

        detail = {
            "core": vm.gc.core,
            "freed_ids": list(freed_ids),  # sweep order, not sorted
            "surviving_ids": sorted(vm.heap._objects),
            "cycles": [dataclasses.asdict(cycle)
                       for cycle in vm.timeline.cycles],
        }
    return ReplayResult(impl_name=impl_name, outcomes=outcomes,
                        dropped_at=dropped_at, ticks=vm.now,
                        violations=list(sanitizer.violations)
                        if sanitizer is not None else [],
                        gc_detail=detail)


def _apply_op(vm: RuntimeEnvironment, wrapper: ChameleonCollection,
              iterators: Dict[int, Any], handles: HandleTable,
              op: list) -> list:
    name = op[0]
    kind = wrapper.KIND
    if name == "init":
        try:
            for enc in op[1]:
                value = decode_value(enc, handles)
                if kind is CollectionKind.MAP:
                    wrapper.impl.put(value[0], value[1])
                else:
                    wrapper.impl.add(value)
        except (UnsupportedOperation, TypeError):
            return ["unsup"]
        return ["ok", ["n"]]
    if name == "gc":
        vm.collect()
        return ["ok", ["n"]]
    if name == "swap":
        target, kwargs = op[1], (op[2] if len(op) > 2 else {})
        before = _state_snapshot(wrapper, handles)
        try:
            wrapper.swap_to(target, impl_kwargs=dict(kwargs) or None)
        except (UnsupportedOperation, TypeError):
            return ["unsup"]
        after = _state_snapshot(wrapper, handles)
        if before != after:
            return ["swap-mismatch", before, after]
        return ["ok", ["n"]]
    if name == "iter_new":
        slot, mode = op[1], op[2]
        method_name = ITER_METHODS.get(mode)
        if method_name is None or (mode != "values"
                                   and kind is not CollectionKind.MAP):
            return ["nop"]
        iterators[slot] = getattr(wrapper, method_name)()
        return ["ok", ["n"]]
    if name == "iter_next":
        iterator = iterators.get(op[1])
        if iterator is None:
            return ["nop"]
        try:
            value = next(iterator)
        except StopIteration:
            return ["stop"]
        return ["ok", encode_value(value, handles)]

    spec = ops_for_kind(kind).get(name)
    if spec is None:
        return ["nop"]
    args = _decode_call_args(spec, op[1:], handles)
    if args is None:
        return ["nop"]
    if name == "put_all":
        # Through a pair list, not a dict: a dict would collapse
        # Java-distinct keys (1 vs True vs 1.0).
        method: Any = _replay_put_all
        args = (wrapper,) + args
    else:
        method = getattr(wrapper, name)
    try:
        result = method(*args)
    except UnsupportedOperation:
        return ["unsup"]
    except TypeError:
        return ["unsup"]
    except (IndexError, KeyError) as exc:
        return ["raise", type(exc).__name__]
    return ["ok", encode_value(result, handles)]


def _decode_call_args(spec: Tuple[str, ...], raw_args: list,
                      handles: HandleTable) -> Optional[tuple]:
    if len(raw_args) != len(spec):
        return None
    args: List[Any] = []
    for kind, raw in zip(spec, raw_args):
        if kind == "v":
            args.append(decode_value(raw, handles))
        elif kind == "i":
            args.append(raw)
        elif kind == "vs":
            args.append([decode_value(enc, handles) for enc in raw])
        elif kind == "ps":
            args.append([decode_value(enc, handles) for enc in raw])
    return tuple(args)


def _replay_put_all(wrapper: ChameleonMap, pairs: List[Tuple[Any, Any]],
                    ) -> None:
    """Replay ``put_all`` from a pair list, mirroring the wrapper's
    bookkeeping (op record + size sample) without building a dict."""
    from repro.profiler.counters import Op
    wrapper._record(Op.PUT_ALL)
    for key, value in pairs:
        wrapper.impl.put(key, value)
    wrapper._after_mutation()


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------


@dataclass
class Divergence:
    """One observable disagreement between an impl and the baseline."""

    impl_name: str
    step: int
    op: list
    expected: list
    actual: list
    note: str = ""

    def render(self) -> str:
        where = f"step {self.step}" if self.step >= 0 else "iteration"
        return (f"{self.impl_name} diverges at {where} {self.op!r}: "
                f"expected {self.expected!r}, got {self.actual!r}"
                + (f" ({self.note})" if self.note else ""))


@dataclass
class DiffReport:
    """The outcome of differentially replaying one trace."""

    trace: Trace
    baseline_impl: str
    results: Dict[str, ReplayResult]
    divergences: List[Divergence]

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.sanitizer_violations

    @property
    def sanitizer_violations(self) -> list:
        found = []
        for result in self.results.values():
            found.extend(result.violations)
        return found

    def failure_signature(self) -> Optional[Tuple[str, str]]:
        """(impl, op-name) of the first divergence -- the shrinker's
        failure-preservation key."""
        if self.divergences:
            first = self.divergences[0]
            return (first.impl_name, str(first.op[0]))
        if self.sanitizer_violations:
            return ("<sanitizer>", self.sanitizer_violations[0].check)
        return None

    def summary(self) -> str:
        lines = [f"trace: kind={self.trace.kind.value} "
                 f"ops={len(self.trace.ops)} context={self.trace.context!r}",
                 f"baseline: {self.baseline_impl}; "
                 f"replayed against {len(self.results)} implementation(s)"]
        for name in sorted(self.results):
            result = self.results[name]
            status = ("dropped out at step "
                      f"{result.dropped_at}" if result.dropped else "complete")
            lines.append(f"  {name:<16} {status}")
        if self.divergences:
            lines.append("DIVERGENCES:")
            lines.extend("  " + d.render() for d in self.divergences)
        for violation in self.sanitizer_violations:
            lines.append(f"SANITIZER: {violation}")
        if self.ok:
            lines.append("ok: all implementations observationally equivalent")
        return "\n".join(lines)


def _added_value_encodings(trace: Trace) -> Iterator[Any]:
    """Every value encoding the trace may *store* (not just query)."""
    for op in trace.ops:
        name = op[0]
        if name in ("init", "add_all", "put_all"):
            for enc in op[1]:
                yield enc
        elif name == "add":
            yield op[1]
        elif name in ("add_at", "set_at", "put"):
            yield op[2]
        elif name == "add_all_at":
            for enc in op[2]:
                yield enc


def _flat_value_tags(enc: Any, tags: set) -> None:
    if isinstance(enc, list) and enc and isinstance(enc[0], str):
        if enc[0] == "p":
            for item in enc[1]:
                _flat_value_tags(item, tags)
            return
        tags.add(enc[0])


def eligible_impls(trace: Trace,
                   registry: Optional[ImplementationRegistry] = None,
                   ) -> List[str]:
    """Implementations whose *documented* semantics can honour ``trace``.

    Everything registered for the trace's kind, minus implementations
    whose value normalisation would legitimately change observable
    results: the deduplicating hash-backed list when the trace adds a
    duplicate, and ``DoubleArray`` (int -> float storage) when the trace
    stores plain ints.  Implementations that merely *reject* some values
    or operations stay eligible -- they drop out at the offending step.
    """
    registry = registry or default_registry()
    names = list(registry.names_for_kind(trace.kind))
    if trace.kind is not CollectionKind.LIST:
        return names

    seen: set = set()
    has_duplicate = False
    stored_tags: set = set()
    for enc in _added_value_encodings(trace):
        _flat_value_tags(enc, stored_tags)
        key = _canon(enc)
        if key in seen:
            has_duplicate = True
        seen.add(key)
    if has_duplicate and "LinkedHashSet" in names:
        names.remove("LinkedHashSet")
    if "i" in stored_tags and "DoubleArray" in names:
        names.remove("DoubleArray")
    return names


def diff_trace(trace: Trace, impls: Optional[List[str]] = None,
               registry: Optional[ImplementationRegistry] = None,
               baseline: Optional[str] = None,
               sanitize: bool = False) -> DiffReport:
    """Replay ``trace`` against every eligible implementation and diff.

    The reference is the *baseline replay* (the kind's default
    implementation), not the recorded results: the recording run may
    itself have used a non-default or swapped implementation.
    """
    registry = registry or default_registry()
    if impls is None:
        impls = eligible_impls(trace, registry)
    baseline = baseline or BASELINE_IMPLS[trace.kind]
    ordered = [baseline] + [name for name in impls if name != baseline]

    results = {name: replay_trace(trace, name, registry=registry,
                                  sanitize=sanitize)
               for name in ordered}
    reference = results[baseline]
    divergences: List[Divergence] = []
    # A swap state-mismatch is a divergence in its own right (the swapped
    # implementation disagrees with its own pre-swap contents), even when
    # every replay -- including the baseline -- exhibits it identically.
    for name in ordered:
        for step, outcome in enumerate(results[name].outcomes):
            if outcome[0] == "swap-mismatch":
                divergences.append(Divergence(
                    name, step, trace.ops[step], outcome[1], outcome[2],
                    note="collection contents changed across swap"))
    for name in ordered[1:]:
        found = _compare_results(trace, reference, results[name])
        if found is not None:
            divergences.append(found)
    return DiffReport(trace=trace, baseline_impl=baseline,
                      results=results, divergences=divergences)


def _value_updated_slots(trace: Trace) -> set:
    """Iterator slots whose open window contains a ``put``/``put_all``.

    A put that overwrites an existing key's value mid-iteration is
    observed (old vs new value) depending on iteration order, so those
    windows cannot be content-compared across implementations.
    """
    last_next: Dict[int, int] = {}
    opened_at: Dict[int, int] = {}
    put_steps: List[int] = []
    for step, op in enumerate(trace.ops):
        name = op[0]
        if name == "iter_new":
            opened_at[op[1]] = step
        elif name == "iter_next":
            last_next[op[1]] = step
        elif name in ("put", "put_all"):
            put_steps.append(step)
    dirty: set = set()
    for slot, start in opened_at.items():
        end = last_next.get(slot, start)
        if any(start < put < end for put in put_steps):
            dirty.add(slot)
    return dirty


def _compare_results(trace: Trace, reference: ReplayResult,
                     actual: ReplayResult) -> Optional[Divergence]:
    """First observable divergence of ``actual`` vs ``reference``.

    Set/map ``iter_next`` values are compared as per-slot multisets
    (iteration order is implementation-defined); every other outcome is
    compared exactly, step by step, until either side drops out.
    """
    unordered = trace.kind is not CollectionKind.LIST
    bags_ref: Dict[int, List[str]] = {}
    bags_act: Dict[int, List[str]] = {}
    bag_steps: Dict[int, int] = {}
    exhausted: set = set()
    dirty = _value_updated_slots(trace) if unordered else set()

    limit = min(len(reference.outcomes), len(actual.outcomes))
    for step in range(limit):
        op = trace.ops[step]
        expected = reference.outcomes[step]
        observed = actual.outcomes[step]
        if observed[0] == "unsup" or expected[0] == "unsup":
            break  # legitimate drop-out (either side) ends the comparison
        if unordered and op[0] == "iter_next":
            slot = op[1]
            if expected[0] != observed[0]:
                return Divergence(actual.impl_name, step, op, expected,
                                  observed, note="iterator length mismatch")
            if expected[0] == "ok":
                bags_ref.setdefault(slot, []).append(_canon(expected[1]))
                bags_act.setdefault(slot, []).append(_canon(observed[1]))
                bag_steps[slot] = step
            elif expected[0] == "stop":
                exhausted.add(slot)
            continue
        if expected != observed:
            return Divergence(actual.impl_name, step, op, expected, observed)

    for slot, ref_bag in bags_ref.items():
        # Only exhausted iterators have comparable contents: a partial
        # prefix legitimately differs between iteration orders.  Map
        # slots whose window saw a value update are skipped too: entry
        # snapshots do not shield value overwrites, so whether the old
        # or new value is observed depends on iteration order (exactly
        # as in java.util collections).
        if slot not in exhausted or slot in dirty:
            continue
        act_bag = bags_act.get(slot, [])
        if sorted(ref_bag) != sorted(act_bag):
            return Divergence(
                actual.impl_name, bag_steps.get(slot, -1),
                ["iter_bag", slot], sorted(ref_bag), sorted(act_bag),
                note="iteration multiset mismatch")
    return None
