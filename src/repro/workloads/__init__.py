"""Synthetic benchmark workloads reproducing the paper's applications."""

from repro.workloads.base import Workload, WorkloadRegistry
from repro.workloads.bloat import BloatWorkload
from repro.workloads.compiled import (CompiledTraceWorkload,
                                      HeavyTailWorkload,
                                      MultiTenantWorkload,
                                      PhaseShiftWorkload, register_scenarios,
                                      scenario_names)
from repro.workloads.dacapo import (DacapoCompressWorkload,
                                    DacapoCryptoWorkload,
                                    DacapoHsqldbWorkload)
from repro.workloads.findbugs import FindbugsWorkload
from repro.workloads.signatures import (register_signature_scenarios,
                                        scenario_from_signature,
                                        trace_from_signature)
from repro.workloads.fop import FopWorkload
from repro.workloads.pmd import PmdWorkload
from repro.workloads.soot import SootWorkload
from repro.workloads.synthetic import ContextSpec, SyntheticWorkload
from repro.workloads.tvla import TvlaWorkload

__all__ = [
    "Workload", "WorkloadRegistry", "BloatWorkload",
    "DacapoCompressWorkload", "DacapoCryptoWorkload",
    "DacapoHsqldbWorkload", "FindbugsWorkload", "FopWorkload",
    "PmdWorkload", "SootWorkload", "TvlaWorkload", "ContextSpec",
    "SyntheticWorkload", "CompiledTraceWorkload", "HeavyTailWorkload",
    "PhaseShiftWorkload", "MultiTenantWorkload", "register_scenarios",
    "scenario_names", "register_signature_scenarios",
    "scenario_from_signature", "trace_from_signature",
]

BENCHMARKS = (TvlaWorkload, SootWorkload, FindbugsWorkload, BloatWorkload,
              FopWorkload, PmdWorkload)
"""The six evaluated applications of section 5, in paper order."""

CONTROLS = (DacapoCompressWorkload, DacapoCryptoWorkload,
            DacapoHsqldbWorkload)
"""The low-potential DaCapo controls."""


def default_workload_registry() -> WorkloadRegistry:
    """A registry with every bundled workload and library scenario."""
    registry = WorkloadRegistry()
    for workload_class in BENCHMARKS + CONTROLS:
        registry.register(workload_class.name, workload_class)
    register_scenarios(registry)
    register_signature_scenarios(registry)
    return registry
