"""Workload infrastructure: the simulated applications of section 5.

The paper evaluates Chameleon on real Java programs (TVLA, SOOT, FindBugs,
bloat, FOP, PMD, DaCapo).  This repository cannot ship those programs, so
each benchmark is a *synthetic workload* that reproduces the collection-
usage signature section 5.3 describes for it -- the contexts, types,
sizes, operation mixes and lifetimes that made each result happen.  A
workload is a deterministic program against the wrapped collection API:
given the same seed and scale it allocates the same objects and performs
the same operations, so before/after comparisons are exact.

``manual_fixes`` models the source edits the paper applied by hand where
the tool's automatic replacement was not enough (bloat's lazy allocation,
PMD's EMPTY_LIST, SOOT's temporaries): a workload run with
``manual_fixes=True`` behaves like the hand-patched program.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.runtime.vm import RuntimeEnvironment

__all__ = ["Workload", "WorkloadRegistry"]


class Workload:
    """One deterministic simulated application."""

    #: Short benchmark name used in reports (e.g. ``"tvla"``).
    name: str = "workload"

    def __init__(self, seed: int = 2009, scale: float = 1.0,
                 manual_fixes: bool = False) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.seed = seed
        self.scale = scale
        self.manual_fixes = manual_fixes

    def run(self, vm: RuntimeEnvironment) -> None:
        """Execute the workload to completion inside ``vm``.

        Implementations must derive all randomness from :meth:`rng` so
        runs are reproducible, and must not call ``vm.finish()`` (the
        harness owns run lifecycle).
        """
        raise NotImplementedError

    def rng(self) -> random.Random:
        """A fresh deterministic PRNG for one run."""
        return random.Random(self.seed)

    def fresh(self) -> "Workload":
        """An identically-configured new instance of this workload.

        Repeated measurements (minimal-heap probes, the overhead
        postures) run each probe on a fresh instance so no instance
        state can bleed between runs -- and a scheduler worker
        reconstructs exactly the same instance from the same spec, which
        keeps parallel probes byte-identical to serial ones.  Subclasses
        whose constructors take extra arguments must override this.
        """
        return type(self)(seed=self.seed, scale=self.scale,
                          manual_fixes=self.manual_fixes)

    def scaled(self, base: int, minimum: int = 1) -> int:
        """``base`` scaled by the workload's scale factor."""
        return max(minimum, int(base * self.scale))

    def describe(self) -> str:
        """One-line description used in experiment output."""
        fixes = " (+manual fixes)" if self.manual_fixes else ""
        return f"{self.name} seed={self.seed} scale={self.scale}{fixes}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.describe()}>"


class WorkloadRegistry:
    """Name -> workload factory lookup used by the experiment harness."""

    def __init__(self) -> None:
        self._factories: Dict[str, Any] = {}

    def register(self, name: str, factory: Any, *,
                 overwrite: bool = False) -> None:
        """Register a workload class or factory under ``name``.

        Names are an external interface (CLI, experiment specs, CI
        legs), and compiled scenarios register dynamically -- so a
        collision is a bug, not a shadowing convenience.  Re-registering
        an existing name raises unless ``overwrite=True`` says the
        replacement is deliberate.
        """
        if not overwrite and name in self._factories:
            raise ValueError(
                f"workload {name!r} is already registered; pass "
                f"overwrite=True to replace it")
        self._factories[name] = factory

    def create(self, name: str, **kwargs: Any) -> Workload:
        """Instantiate the workload registered under ``name``."""
        factory = self._factories.get(name)
        if factory is None:
            raise KeyError(f"unknown workload {name!r}; known: "
                           f"{sorted(self._factories)}")
        return factory(**kwargs)

    def names(self) -> list:
        """All registered workload names."""
        return sorted(self._factories)
