"""bloat-like workload: a spike of empty LinkedLists dominating footprint.

Section 5.3 signature being reproduced:

* "bloat's footprint is dominated by a spike of collections (at GC#656),
  where the true required space for the collections is significantly
  lower" -- the run has three phases: a steady build-up, an *analysis
  spike* that temporarily pins a large wave of CFG nodes, and a tail
  after the wave is released.  Fig. 8 is the resulting per-cycle
  collection-fraction series.
* "most of the LinkedLists allocated at that context remained empty and
  were never used.  Around 25% of the heap at that point of execution was
  consumed by LinkedList$Entry objects that are allocated as the head of
  an empty linked list" -- every spike node eagerly allocates four
  handler LinkedLists (one allocation context) that nothing ever touches;
  each carries its 24-byte sentinel entry.
* "More than 20% of space can be saved by making the lists into
  LazyArrayLists, but a simple manual modification can make the
  allocation itself lazy, which reduces the minimal-heap size by 56%" --
  the tool's automatic fix replaces the lists (dropping sentinels and
  backing storage); ``manual_fixes=True`` skips allocating them at all.
"""

from __future__ import annotations

from repro.collections.wrappers import ChameleonList
from repro.runtime.vm import RuntimeEnvironment
from repro.workloads.base import Workload

__all__ = ["BloatWorkload"]


class BloatWorkload(Workload):
    """CFG-analysis workload with an empty-LinkedList footprint spike."""

    name = "bloat"

    def __init__(self, seed: int = 2009, scale: float = 1.0,
                 manual_fixes: bool = False) -> None:
        super().__init__(seed, scale, manual_fixes)
        self.base_methods = self.scaled(40)
        self.spike_methods = self.scaled(160)
        self.nodes_per_method = 12
        self.tail_methods = self.scaled(30)

    # ------------------------------------------------------------------
    # Allocation contexts
    # ------------------------------------------------------------------
    def _alloc_handler_lists(self, vm) -> list:
        """The spike context: four eagerly allocated, never-touched
        exception/def/use/phi handler lists per CFG node."""
        # Pinned until the caller links them into a CFG node: each list
        # after the first is otherwise unreachable while its siblings
        # allocate.
        return [ChameleonList(vm, src_type="LinkedList").pin()
                for _ in range(4)]

    def _alloc_instruction_list(self, vm) -> ChameleonList:
        """A normally used per-node instruction list (separate context)."""
        return ChameleonList(vm, src_type="ArrayList", initial_capacity=4)

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(self, vm: RuntimeEnvironment) -> None:
        rng = self.rng()

        def build_node(holder, with_handlers: bool):
            record = vm.allocate_data("CfgNode", ref_fields=6, int_fields=4)
            holder.add_ref(record.obj_id)
            instr_a = vm.allocate_data("Instruction", int_fields=2)
            record.add_ref(instr_a.obj_id)
            instr_b = vm.allocate_data("Instruction", int_fields=2)
            record.add_ref(instr_b.obj_id)
            instructions = self._alloc_instruction_list(vm)
            record.add_ref(instructions.heap_obj.obj_id)
            instructions.add(instr_a)
            instructions.add(instr_b)
            if with_handlers and not self.manual_fixes:
                for handler_list in self._alloc_handler_lists(vm):
                    record.add_ref(handler_list.heap_obj.obj_id)
                    handler_list.unpin()
            return record, instructions

        def build_method(holder, nodes: int, with_handlers: bool):
            method = vm.allocate_data("MethodEditor", ref_fields=4)
            holder.add_ref(method.obj_id)
            node_records = []
            for _ in range(nodes):
                record, instructions = build_node(holder, with_handlers)
                method.add_ref(record.obj_id)
                node_records.append((record, instructions))
            # A visitation pass over the method's instructions, plus the
            # analysis work itself (dataflow over the CFG) -- the mutator
            # time that keeps collection-allocation capture from being
            # the whole story in online mode.
            for record, instructions in node_records:
                for i in range(len(instructions)):
                    instructions.get(i)
                vm.charge(700)
            return method

        # Phase 1: steady build-up of the base program representation
        # (plain IR, no analysis-time handler lists).
        base_holder = vm.allocate_data("ClassHierarchy", ref_fields=2)
        vm.add_root(base_holder)
        for _ in range(self.base_methods):
            build_method(base_holder, self.nodes_per_method,
                         with_handlers=False)

        # Phase 2: the analysis spike -- a large wave of freshly edited
        # methods pinned simultaneously (Fig. 8's peak).
        spike_holder = vm.allocate_data("AnalysisWave", ref_fields=2)
        vm.add_root(spike_holder)
        for _ in range(self.spike_methods):
            build_method(spike_holder, self.nodes_per_method,
                         with_handlers=True)
        vm.collect()  # observe the spike in the timeline

        # Phase 3: the wave is released; the tail keeps allocating
        # ordinary methods, so the collection fraction falls back down.
        vm.remove_root(spike_holder)
        vm.collect()
        for _ in range(self.tail_methods):
            build_method(base_holder, self.nodes_per_method,
                         with_handlers=False)
