"""Trace-compiled workloads: the scenario library beyond the paper six.

Every workload here is driven by a :class:`~repro.verify.compile.CompiledProgram`
-- a recorded trace lowered once into executable steps -- rather than by
hand-written driver code.  The bundled source traces under
``src/repro/workloads/scenarios/`` were recorded from the paper
benchmarks themselves (``PYTHONHASHSEED=2009``; provenance in each
file's ``meta.scenario_source``), so the scenarios inherit real recorded
op mixes and then bend them along axes the six benchmarks do not cover:

* **replay family** (:class:`CompiledTraceWorkload`) -- the trace
  re-executed for several rounds, later rounds value-perturbed, so one
  recording becomes a family of similar-but-not-identical runs.
* **heavy-tail family** (:class:`HeavyTailWorkload`) -- many instances
  whose op counts follow a Zipf-ranked distribution: a few collections
  see most of the operations while a long tail dies young.  This is the
  allocation-context shape Chameleon's per-context profiles must
  separate well.
* **phase-shift family** (:class:`PhaseShiftWorkload`) -- a quiet
  steady-state interrupted by a bloat-style mid-run spike of
  simultaneously-live instances, then quiet again; stresses
  threshold-triggered GC and size-profile stability.
* **multi-tenant family** (:class:`MultiTenantWorkload`) -- several
  compiled programs interleaved op-by-op through one VM in seeded
  bursts, so profiles from different op mixes accrue concurrently.

Determinism contract: all randomness is string-seeded from the scenario
name + workload seed (hash-independent), so every scenario run is
byte-reproducible -- the conformance harness
(``tests/verify/test_conformance.py``) holds the whole library to tick
identity across the ``gc_core`` x ``vm_core`` grid and sanitizer
cleanliness, and pins the pure-replay posture tick-identical to
``replay_trace`` of the source trace.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.runtime.vm import RuntimeEnvironment
from repro.verify.compile import (CompiledProgram, TraceInstance,
                                  compile_trace, load_trace_file)
from repro.verify.trace import Trace
from repro.workloads.base import Workload, WorkloadRegistry

__all__ = ["CompiledTraceWorkload", "HeavyTailWorkload",
           "PhaseShiftWorkload", "MultiTenantWorkload", "Scenario",
           "SCENARIOS", "scenario_names", "get_scenario", "make_scenario",
           "register_scenarios", "bundled_trace_stems",
           "load_bundled_trace", "load_bundled_program"]

_SCENARIO_DIR = os.path.join(os.path.dirname(__file__), "scenarios")

_PROGRAM_CACHE: Dict[str, CompiledProgram] = {}


def bundled_trace_stems() -> List[str]:
    """Stems of the source traces shipped with the scenario library."""
    return sorted(name[:-5] for name in os.listdir(_SCENARIO_DIR)
                  if name.endswith(".json"))


def load_bundled_trace(stem: str) -> Trace:
    """The bundled source trace recorded as ``scenarios/<stem>.json``."""
    return load_trace_file(os.path.join(_SCENARIO_DIR, stem + ".json"))


def load_bundled_program(stem: str) -> CompiledProgram:
    """The compiled form of a bundled trace (compiled once, cached)."""
    program = _PROGRAM_CACHE.get(stem)
    if program is None:
        program = compile_trace(load_bundled_trace(stem))
        _PROGRAM_CACHE[stem] = program
    return program


class _CompiledWorkloadBase(Workload):
    """Shared plumbing for trace-driven workloads.

    Subclasses hold their compiled programs plus scenario parameters;
    ``fresh()`` reconstructs from the same configuration, which is what
    lets the perf harness re-run probes on untouched instances.
    """

    def __init__(self, programs: Tuple[CompiledProgram, ...],
                 scenario: str, seed: int = 2009, scale: float = 1.0,
                 manual_fixes: bool = False) -> None:
        super().__init__(seed=seed, scale=scale, manual_fixes=manual_fixes)
        if not programs:
            raise ValueError("at least one compiled program is required")
        self.programs = tuple(programs)
        self.name = scenario

    def source_traces(self) -> List[Trace]:
        """The recorded traces this workload compiles from -- the
        conformance harness replays these directly for comparison."""
        return [program.trace for program in self.programs]

    def round_rng(self, label: object) -> random.Random:
        """A hash-independent PRNG tied to scenario name, seed, label."""
        return random.Random(f"chameleon-compiled/{self.name}/"
                             f"{self.seed}/{label}")

    def describe(self) -> str:
        sources = "+".join(p.trace.baseline_impl for p in self.programs)
        return (f"{self.name} seed={self.seed} scale={self.scale} "
                f"[compiled: {sources}]")


class CompiledTraceWorkload(_CompiledWorkloadBase):
    """A recorded trace replayed for several value-perturbed rounds.

    Round 0 executes the program verbatim; every later round executes a
    deterministically perturbed sibling (same structure, redrawn
    primitive payloads).  Instances from finished rounds are released so
    their whole subgraph becomes garbage; the final round stays pinned
    through the closing collection, which makes the ``rounds=1,
    perturb=0`` posture step-for-step identical to
    :func:`repro.verify.trace.replay_trace` -- the anchor the
    conformance harness ties ticks to.
    """

    def __init__(self, program: CompiledProgram, scenario: str,
                 rounds: int = 3, perturb: float = 0.25,
                 impl: Optional[str] = None, seed: int = 2009,
                 scale: float = 1.0, manual_fixes: bool = False) -> None:
        super().__init__((program,), scenario, seed=seed, scale=scale,
                         manual_fixes=manual_fixes)
        self.rounds = rounds
        self.perturb = perturb
        self.impl = impl

    def fresh(self) -> "CompiledTraceWorkload":
        return CompiledTraceWorkload(
            self.programs[0], self.name, rounds=self.rounds,
            perturb=self.perturb, impl=self.impl, seed=self.seed,
            scale=self.scale, manual_fixes=self.manual_fixes)

    def run(self, vm: RuntimeEnvironment) -> None:
        program = self.programs[0]
        n_rounds = self.scaled(self.rounds)
        for round_no in range(n_rounds):
            round_program = program
            if round_no > 0 and self.perturb > 0:
                round_program = program.perturbed(
                    self.round_rng(round_no), self.perturb)
            instance = TraceInstance(vm, round_program, impl=self.impl)
            instance.run()
            if round_no < n_rounds - 1:
                instance.release()
        vm.collect()


class HeavyTailWorkload(_CompiledWorkloadBase):
    """Zipf-ranked truncations of one trace: few hot, many short-lived.

    Instance at rank *r* executes roughly ``len(trace) / r**alpha`` of
    the recorded operations, so op counts follow a heavy-tailed rank
    distribution.  Most instances are released as soon as they finish
    (short-lived garbage); the first ``survivors`` stay pinned to the
    end, modelling the long-lived sliver that dominates footprint.
    """

    def __init__(self, program: CompiledProgram, scenario: str,
                 instances: int = 12, alpha: float = 1.0,
                 survivors: int = 2, perturb: float = 0.3,
                 seed: int = 2009, scale: float = 1.0,
                 manual_fixes: bool = False) -> None:
        super().__init__((program,), scenario, seed=seed, scale=scale,
                         manual_fixes=manual_fixes)
        self.instances = instances
        self.alpha = alpha
        self.survivors = survivors
        self.perturb = perturb

    def fresh(self) -> "HeavyTailWorkload":
        return HeavyTailWorkload(
            self.programs[0], self.name, instances=self.instances,
            alpha=self.alpha, survivors=self.survivors,
            perturb=self.perturb, seed=self.seed, scale=self.scale,
            manual_fixes=self.manual_fixes)

    def run(self, vm: RuntimeEnvironment) -> None:
        program = self.programs[0]
        total_ops = len(program)
        n_instances = self.scaled(self.instances)
        prefixes: Dict[int, CompiledProgram] = {}
        live: List[TraceInstance] = []
        for rank in range(1, n_instances + 1):
            length = max(2, int(total_ops * rank ** -self.alpha))
            prefix = prefixes.get(length)
            if prefix is None:
                prefix = program.prefix(length)
                prefixes[length] = prefix
            round_program = prefix
            if rank > 1 and self.perturb > 0:
                round_program = prefix.perturbed(
                    self.round_rng(rank), self.perturb)
            instance = TraceInstance(vm, round_program)
            instance.run()
            if rank <= self.survivors:
                live.append(instance)
            else:
                instance.release()
        vm.collect()
        del live  # survivors stay pinned through the final collection


class PhaseShiftWorkload(_CompiledWorkloadBase):
    """Quiet steady-state, then a bloat-style spike, then quiet again.

    The quiet phases run one instance at a time, releasing each before
    the next (flat live set).  Mid-run, ``spike`` perturbed instances
    are created and kept simultaneously live -- the footprint jump the
    bloat benchmark exhibits -- then all are released at once and a
    collection clears the wave.
    """

    def __init__(self, program: CompiledProgram, scenario: str,
                 quiet_rounds: int = 3, spike: int = 8,
                 perturb: float = 0.3, seed: int = 2009,
                 scale: float = 1.0, manual_fixes: bool = False) -> None:
        super().__init__((program,), scenario, seed=seed, scale=scale,
                         manual_fixes=manual_fixes)
        self.quiet_rounds = quiet_rounds
        self.spike = spike
        self.perturb = perturb

    def fresh(self) -> "PhaseShiftWorkload":
        return PhaseShiftWorkload(
            self.programs[0], self.name, quiet_rounds=self.quiet_rounds,
            spike=self.spike, perturb=self.perturb, seed=self.seed,
            scale=self.scale, manual_fixes=self.manual_fixes)

    def _quiet_phase(self, vm: RuntimeEnvironment, phase: str) -> None:
        program = self.programs[0]
        for round_no in range(self.scaled(self.quiet_rounds)):
            round_program = program
            if self.perturb > 0:
                round_program = program.perturbed(
                    self.round_rng(f"{phase}/{round_no}"), self.perturb)
            instance = TraceInstance(vm, round_program)
            instance.run()
            instance.release()

    def run(self, vm: RuntimeEnvironment) -> None:
        program = self.programs[0]
        self._quiet_phase(vm, "warm")
        wave = []
        for spike_no in range(self.scaled(self.spike)):
            round_program = program
            if self.perturb > 0:
                round_program = program.perturbed(
                    self.round_rng(f"spike/{spike_no}"), self.perturb)
            instance = TraceInstance(vm, round_program)
            instance.run()
            wave.append(instance)  # simultaneously live: the spike
        for instance in wave:
            instance.release()
        vm.collect()
        self._quiet_phase(vm, "cool")
        vm.collect()


class MultiTenantWorkload(_CompiledWorkloadBase):
    """Several compiled programs woven through one VM in seeded bursts.

    One :class:`TraceInstance` per program runs concurrently; a
    string-seeded scheduler repeatedly picks an unfinished tenant and
    advances it a burst of 1-7 operations, so allocation contexts and
    op mixes from different recordings interleave at op granularity --
    the concurrent-profile pressure a per-context selector has to keep
    separated.
    """

    def __init__(self, programs: Tuple[CompiledProgram, ...],
                 scenario: str, rounds: int = 2, perturb: float = 0.25,
                 seed: int = 2009, scale: float = 1.0,
                 manual_fixes: bool = False) -> None:
        super().__init__(programs, scenario, seed=seed, scale=scale,
                         manual_fixes=manual_fixes)
        self.rounds = rounds
        self.perturb = perturb

    def fresh(self) -> "MultiTenantWorkload":
        return MultiTenantWorkload(
            self.programs, self.name, rounds=self.rounds,
            perturb=self.perturb, seed=self.seed, scale=self.scale,
            manual_fixes=self.manual_fixes)

    def run(self, vm: RuntimeEnvironment) -> None:
        for round_no in range(self.scaled(self.rounds)):
            rng = self.round_rng(round_no)
            tenants = []
            for tenant_no, program in enumerate(self.programs):
                round_program = program
                if (round_no > 0 or tenant_no > 0) and self.perturb > 0:
                    round_program = program.perturbed(
                        self.round_rng(f"{round_no}/{tenant_no}"),
                        self.perturb)
                tenants.append(TraceInstance(vm, round_program))
            pending = list(range(len(tenants)))
            while pending:
                slot = rng.randrange(len(pending))
                tenant = tenants[pending[slot]]
                for _ in range(rng.randrange(1, 8)):
                    if not tenant.step():
                        break
                if tenant.finished:
                    pending.pop(slot)
            for tenant in tenants:
                tenant.release()
            vm.collect()


# ----------------------------------------------------------------------
# The named scenario library
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One registered scenario: name, family, provenance, factory."""

    name: str
    family: str           # replay | heavy-tail | phase-shift | multi-tenant
    sources: Tuple[str, ...]  # bundled trace stems
    summary: str
    factory: Callable[..., Workload]

    def create(self, **kwargs: object) -> Workload:
        return self.factory(**kwargs)


def _replay(stem: str, **params: object) -> Callable[..., Workload]:
    def factory(name: str, **kwargs: object) -> Workload:
        return CompiledTraceWorkload(load_bundled_program(stem), name,
                                     **params, **kwargs)  # type: ignore
    return factory


def _heavy_tail(stem: str, **params: object) -> Callable[..., Workload]:
    def factory(name: str, **kwargs: object) -> Workload:
        return HeavyTailWorkload(load_bundled_program(stem), name,
                                 **params, **kwargs)  # type: ignore
    return factory


def _phase_shift(stem: str, **params: object) -> Callable[..., Workload]:
    def factory(name: str, **kwargs: object) -> Workload:
        return PhaseShiftWorkload(load_bundled_program(stem), name,
                                  **params, **kwargs)  # type: ignore
    return factory


def _multi_tenant(stems: Tuple[str, ...],
                  **params: object) -> Callable[..., Workload]:
    def factory(name: str, **kwargs: object) -> Workload:
        programs = tuple(load_bundled_program(stem) for stem in stems)
        return MultiTenantWorkload(programs, name,
                                   **params, **kwargs)  # type: ignore
    return factory


def _specs() -> List[Scenario]:
    return [
        Scenario("compiled-tvla-map", "replay", ("tvla-map",),
                 "tvla state-map trace, 3 perturbed rounds",
                 _replay("tvla-map", rounds=3, perturb=0.25)),
        Scenario("compiled-pmd-set", "replay", ("pmd-set",),
                 "pmd rule-name set trace (358 ops), 2 perturbed rounds",
                 _replay("pmd-set", rounds=2, perturb=0.2)),
        Scenario("compiled-findbugs-map", "replay", ("findbugs-map",),
                 "findbugs property-map trace, 4 perturbed rounds",
                 _replay("findbugs-map", rounds=4, perturb=0.3)),
        Scenario("heavy-tail-pmd-set", "heavy-tail", ("pmd-set",),
                 "Zipf-truncated pmd set: few hot, long short-lived tail",
                 _heavy_tail("pmd-set", instances=12, alpha=1.0,
                             survivors=2, perturb=0.3)),
        Scenario("heavy-tail-tvla-list", "heavy-tail", ("tvla-list",),
                 "Zipf-truncated tvla list ranks over 90 recorded ops",
                 _heavy_tail("tvla-list", instances=14, alpha=1.2,
                             survivors=3, perturb=0.3)),
        Scenario("phase-shift-bloat-list", "phase-shift", ("bloat-list",),
                 "quiet bloat lists, then a 12-instance live spike",
                 _phase_shift("bloat-list", quiet_rounds=4, spike=12,
                              perturb=0.3)),
        Scenario("phase-shift-tvla-map", "phase-shift", ("tvla-map",),
                 "tvla map steady-state with a mid-run footprint wave",
                 _phase_shift("tvla-map", quiet_rounds=3, spike=6,
                              perturb=0.25)),
        Scenario("multi-tenant-trio", "multi-tenant",
                 ("tvla-map", "pmd-set", "tvla-list"),
                 "map+set+list tenants interleaved in seeded bursts",
                 _multi_tenant(("tvla-map", "pmd-set", "tvla-list"),
                               rounds=2, perturb=0.25)),
        Scenario("multi-tenant-findbugs-bloat", "multi-tenant",
                 ("findbugs-map", "bloat-list"),
                 "findbugs map woven with bloat instruction lists",
                 _multi_tenant(("findbugs-map", "bloat-list"),
                               rounds=3, perturb=0.3)),
    ]


SCENARIOS: Dict[str, Scenario] = {spec.name: spec for spec in _specs()}


def scenario_names() -> List[str]:
    """All scenario-library names, sorted."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    spec = SCENARIOS.get(name)
    if spec is None:
        raise KeyError(f"unknown scenario {name!r}; known: "
                       f"{scenario_names()}")
    return spec


def make_scenario(name: str, **kwargs: object) -> Workload:
    """Instantiate one library scenario by name."""
    return get_scenario(name).create(name=name, **kwargs)


def register_scenarios(registry: WorkloadRegistry) -> None:
    """Register every library scenario in ``registry`` by name."""
    for spec in SCENARIOS.values():
        def factory(spec: Scenario = spec, **kwargs: object) -> Workload:
            return spec.create(name=spec.name, **kwargs)
        registry.register(spec.name, factory)
