"""DaCapo-style control workloads: little to gain from collection tuning.

Section 5.1: "Most of the DaCapo benchmarks do not make intensive use of
collections, and hence our tool showed little potential saving for those."
These controls verify the *negative* behaviour: Chameleon must not spray
suggestions at programs whose heap is dominated by non-collection data or
whose collections are already well-used.

Three flavours are provided:

* ``compress`` -- buffer-crunching: almost all live data is big primitive
  arrays; the few collections are small and busy.
* ``crypto`` -- compute-bound: heavy tick charges, modest allocation, one
  well-sized reused map.
* ``hsqldb`` -- uses its *own* collection classes, which the library-level
  profiler cannot see (the paper explicitly skipped its potential for the
  same reason); its custom rows register as plain data unless a custom
  semantic map is supplied.
"""

from __future__ import annotations

from repro.collections.wrappers import ChameleonList, ChameleonMap
from repro.runtime.vm import RuntimeEnvironment
from repro.workloads.base import Workload

__all__ = ["DacapoCompressWorkload", "DacapoCryptoWorkload",
           "DacapoHsqldbWorkload"]


class DacapoCompressWorkload(Workload):
    """Buffer-dominated control: heap is mostly ``byte[]`` payloads."""

    name = "dacapo-compress"

    def __init__(self, seed: int = 2009, scale: float = 1.0,
                 manual_fixes: bool = False) -> None:
        super().__init__(seed, scale, manual_fixes)
        self.num_blocks = self.scaled(120)
        self.block_bytes = 8 * 1024

    def run(self, vm: RuntimeEnvironment) -> None:
        root = vm.allocate_data("Compressor", ref_fields=4)
        vm.add_root(root)
        window = ChameleonList(vm, src_type="ArrayList", initial_capacity=8)
        root.add_ref(window.heap_obj.obj_id)
        for block_index in range(self.num_blocks):
            block = vm.allocate("byte[]", self.block_bytes)
            root.add_ref(block.obj_id)
            window.add(block)
            if len(window) > 8:
                evicted = window.remove_first()
                root.remove_ref(evicted.obj_id)
            # Simulated compression work per block.
            vm.charge(self.block_bytes // 4)


class DacapoCryptoWorkload(Workload):
    """Compute-bound control: ticks dwarf allocation."""

    name = "dacapo-crypto"

    def __init__(self, seed: int = 2009, scale: float = 1.0,
                 manual_fixes: bool = False) -> None:
        super().__init__(seed, scale, manual_fixes)
        self.num_rounds = self.scaled(400)

    def run(self, vm: RuntimeEnvironment) -> None:
        root = vm.allocate_data("CipherSession", ref_fields=2)
        vm.add_root(root)
        session_keys = ChameleonMap(vm, src_type="HashMap",
                                    initial_capacity=16)
        root.add_ref(session_keys.heap_obj.obj_id)
        key_records = []
        for i in range(8):
            key = vm.allocate_data("KeyMaterial", int_fields=8)
            root.add_ref(key.obj_id)
            key_records.append(key)
            session_keys.put(key, i)
        for round_index in range(self.num_rounds):
            session_keys.get(key_records[round_index % len(key_records)])
            vm.charge(2_000)  # the round function dominates


class DacapoHsqldbWorkload(Workload):
    """Custom-collection control: rows live in HSQLDB's own structures.

    The row store is modelled as raw heap objects (``HsqlRowStore`` /
    ``HsqlRow``) that the library-level profiler never sees.  Registering
    a custom semantic map for ``HsqlRowStore`` (see
    ``tests/memory/test_custom_semantic_maps.py``) makes the collector
    attribute them -- the paper's "with very little manual effort in the
    library, we can also profile such applications".
    """

    name = "dacapo-hsqldb"

    def __init__(self, seed: int = 2009, scale: float = 1.0,
                 manual_fixes: bool = False) -> None:
        super().__init__(seed, scale, manual_fixes)
        self.num_tables = self.scaled(6)
        self.rows_per_table = self.scaled(300)

    def run(self, vm: RuntimeEnvironment) -> None:
        database = vm.allocate_data("Database", ref_fields=4)
        vm.add_root(database)
        for _ in range(self.num_tables):
            # A custom row store: one header + an oversized slot array.
            store = vm.allocate("HsqlRowStore",
                                vm.model.object_size(ref_fields=2,
                                                     int_fields=2))
            database.add_ref(store.obj_id)
            slots = vm.allocate(
                "Object[]",
                vm.model.ref_array_size(self.rows_per_table * 2))
            store.add_ref(slots.obj_id)
            for _ in range(self.rows_per_table):
                row = vm.allocate("HsqlRow",
                                  vm.model.object_size(ref_fields=3,
                                                       int_fields=4))
                slots.add_ref(row.obj_id)
            vm.charge(self.rows_per_table * 3)
