"""FindBugs-like workload: per-class detector state.

Section 5.3 signature being reproduced: "we replaced some HashMaps by
ArrayMaps, HashSets by ArraySets, and the initial sizes of other
collections were tuned.  We also performed lazy allocation for HashMaps in
contexts where [a] large percentage of the collections remain empty.  The
overall result is a reduction of 13.79% in the minimal-heap size."

Four collection contexts per analysed class:

* an *annotation map* that is allocated eagerly but stays empty for every
  class this detector pass sees (the lazy-allocation context);
* a small stable *property map* (HashMap -> ArrayMap);
* a small stable *seen set* (HashSet -> ArraySet);
* a *report list* that grows past the default capacity (set initial
  capacity).

Class records and their bytecode payloads are heavier than in TVLA, so
collections are a smaller share of the heap and the overall saving lands
in the low-teens rather than TVLA's ~50%.
"""

from __future__ import annotations

from repro.collections.wrappers import (ChameleonList, ChameleonMap,
                                        ChameleonSet)
from repro.runtime.vm import RuntimeEnvironment
from repro.workloads.base import Workload

__all__ = ["FindbugsWorkload"]


class FindbugsWorkload(Workload):
    """Static-analysis workload with mixed small/empty collection state."""

    name = "findbugs"

    def __init__(self, seed: int = 2009, scale: float = 1.0,
                 manual_fixes: bool = False) -> None:
        super().__init__(seed, scale, manual_fixes)
        self.num_classes = self.scaled(250)
        self.properties_per_class = 4
        self.reports_per_class = 18

    # ------------------------------------------------------------------
    # Allocation contexts
    # ------------------------------------------------------------------
    def _make_annotation_map(self, vm) -> ChameleonMap:
        """Eagerly allocated, always empty for this pass (lazy target)."""
        impl = "LazyMap" if self.manual_fixes else None
        return ChameleonMap(vm, src_type="HashMap", impl=impl)

    def _make_property_map(self, vm) -> ChameleonMap:
        """Small, stable detector-property map (ArrayMap target)."""
        impl = "ArrayMap" if self.manual_fixes else None
        return ChameleonMap(vm, src_type="HashMap", impl=impl)

    def _make_seen_set(self, vm) -> ChameleonSet:
        """Small, stable seen-signatures set (ArraySet target)."""
        impl = "ArraySet" if self.manual_fixes else None
        return ChameleonSet(vm, src_type="HashSet", impl=impl)

    def _make_report_list(self, vm) -> ChameleonList:
        """Per-class report accumulator (set-initial-capacity target)."""
        capacity = self.reports_per_class if self.manual_fixes else None
        return ChameleonList(vm, src_type="ArrayList",
                             initial_capacity=capacity)

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(self, vm: RuntimeEnvironment) -> None:
        rng = self.rng()
        bug_reporter = vm.allocate_data("BugReporter", ref_fields=4)
        vm.add_root(bug_reporter)

        property_keys = []
        for i in range(self.properties_per_class + 2):
            key = vm.allocate_data("PropertyKey", ref_fields=1)
            bug_reporter.add_ref(key.obj_id)
            property_keys.append(key)

        analysed = []
        for class_index in range(self.num_classes):
            # A parsed class carries hefty non-collection payload, so
            # collections are a low-teens share of live data.
            class_record = vm.allocate_data("JavaClass", ref_fields=16,
                                            int_fields=16)
            bug_reporter.add_ref(class_record.obj_id)
            constant_pool = vm.allocate("byte[]", 448)
            class_record.add_ref(constant_pool.obj_id)
            for _ in range(5):
                payload = vm.allocate_data("MethodGen", ref_fields=12,
                                           int_fields=16)
                class_record.add_ref(payload.obj_id)

            # Link each collection into the class record as soon as it is
            # built: constructing the next one can trigger a GC, and an
            # unlinked wrapper is invisible to the simulated collector.
            annotations = self._make_annotation_map(vm)
            class_record.add_ref(annotations.heap_obj.obj_id)
            properties = self._make_property_map(vm)
            class_record.add_ref(properties.heap_obj.obj_id)
            seen = self._make_seen_set(vm)
            class_record.add_ref(seen.heap_obj.obj_id)
            reports = self._make_report_list(vm)
            class_record.add_ref(reports.heap_obj.obj_id)

            for i in range(self.properties_per_class):
                properties.put(property_keys[i], class_index + i)
            for i in range(self.properties_per_class):
                seen.add(property_keys[(class_index + i)
                                       % len(property_keys)])
            for i in range(self.reports_per_class):
                report = vm.allocate_data("BugInstance", ref_fields=3,
                                          int_fields=2)
                reports.add(report)

            # The annotation map is consulted (so it is not dead code)
            # but never filled by this pass -- the lazy-allocation shape.
            annotations.contains_key(property_keys[0])
            # Detector queries: property lookups dominate the trace.
            for _ in range(3):
                for i in range(self.properties_per_class):
                    properties.get(property_keys[i])
                    seen.contains(property_keys[i])
                    vm.charge(40)  # the detector's own analysis work
            analysed.append((class_record, properties, seen, reports))

        # Reporting pass over the accumulated results.
        for _, properties, seen, reports in analysed:
            for i in range(0, len(reports), 2):
                reports.get(i)
