"""FOP-like workload: XSL-FO layout-tree construction.

Section 5.3 signature being reproduced: "In FOP (v0.95), based on the tool
recommendations, some HashMaps were replaced with ArrayMaps and initial
sizes of other collections were tuned.  There was also one context that
allocated collections that were never used (in
InlineStackingLayoutManager).  The result is a 7.69% reduction in the
minimal-heap size."

Per layout node:

* a small, stable property HashMap (ArrayMap target);
* heavyweight area/text payload records (most of the heap -- the reason
  FOP's saving is single-digit where TVLA's is ~50%);

plus, per inline-stacking manager, an eagerly allocated child-context
ArrayList that nothing ever touches (the never-used context, auto-fixed
through the avoid-allocation advice as a lazy list) and a tuned-capacity
pending-break list.
"""

from __future__ import annotations

from repro.collections.wrappers import ChameleonList, ChameleonMap
from repro.runtime.vm import RuntimeEnvironment
from repro.workloads.base import Workload

__all__ = ["FopWorkload"]


class FopWorkload(Workload):
    """Layout-engine workload with one never-used collection context."""

    name = "fop"

    def __init__(self, seed: int = 2009, scale: float = 1.0,
                 manual_fixes: bool = False) -> None:
        super().__init__(seed, scale, manual_fixes)
        self.num_pages = self.scaled(30)
        self.nodes_per_page = 20
        self.properties_per_node = 4
        self.breaks_per_manager = 12

    # ------------------------------------------------------------------
    # Allocation contexts
    # ------------------------------------------------------------------
    def _make_property_map(self, vm) -> ChameleonMap:
        """Small per-node property map (ArrayMap target)."""
        impl = "ArrayMap" if self.manual_fixes else None
        return ChameleonMap(vm, src_type="HashMap", impl=impl)

    def _make_child_contexts(self, vm) -> ChameleonList:
        """InlineStackingLayoutManager's never-used child-context list."""
        impl = "LazyArrayList" if self.manual_fixes else None
        return ChameleonList(vm, src_type="ArrayList", impl=impl)

    def _make_pending_breaks(self, vm) -> ChameleonList:
        """Pending-break accumulator (set-initial-capacity target)."""
        capacity = self.breaks_per_manager if self.manual_fixes else None
        return ChameleonList(vm, src_type="ArrayList",
                             initial_capacity=capacity)

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(self, vm: RuntimeEnvironment) -> None:
        document = vm.allocate_data("AreaTree", ref_fields=4)
        vm.add_root(document)

        property_names = []
        for i in range(self.properties_per_node + 2):
            name = vm.allocate_data("PropertyName", ref_fields=1)
            document.add_ref(name.obj_id)
            property_names.append(name)

        for page_index in range(self.num_pages):
            page = vm.allocate_data("PageViewport", ref_fields=8,
                                    int_fields=8)
            document.add_ref(page.obj_id)
            image = vm.allocate("byte[]", 16 * 1024)
            page.add_ref(image.obj_id)

            manager = vm.allocate_data("InlineStackingLayoutManager",
                                       ref_fields=6, int_fields=4)
            page.add_ref(manager.obj_id)
            pending = self._make_pending_breaks(vm)
            manager.add_ref(pending.heap_obj.obj_id)

            for node_index in range(self.nodes_per_page):
                node = vm.allocate_data("InlineArea", ref_fields=10,
                                        int_fields=12)
                page.add_ref(node.obj_id)
                # Text payload: the bulk of FOP's live data.
                for _ in range(2):
                    text = vm.allocate_data("TextArea", ref_fields=4,
                                            int_fields=40)
                    node.add_ref(text.obj_id)
                vm.charge(150)  # line-breaking computation

                properties = self._make_property_map(vm)
                node.add_ref(properties.heap_obj.obj_id)
                for i in range(self.properties_per_node):
                    properties.put(property_names[i],
                                   page_index * 100 + node_index + i)
                for i in range(self.properties_per_node):
                    properties.get(property_names[i])

                if node_index % 4 == 0:
                    # One inline-stacking manager per run of inline
                    # areas, each eagerly allocating a child-context list
                    # that nothing ever touches (the never-used context).
                    stacker = vm.allocate_data(
                        "InlineStackingLayoutManager",
                        ref_fields=6, int_fields=4)
                    node.add_ref(stacker.obj_id)
                    child_contexts = self._make_child_contexts(vm)
                    stacker.add_ref(child_contexts.heap_obj.obj_id)

                if node_index % 2 == 0:
                    brk = vm.allocate_data("BreakPossibility",
                                           int_fields=4)
                    pending.add(brk)

            # Layout pass: replay pending breaks for the page.
            for i in range(len(pending)):
                pending.get(i)
