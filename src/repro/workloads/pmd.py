"""PMD-like workload: massive rapid allocation of short-lived collections.

Section 5.3 signature being reproduced:

* "PMD was already manually optimized to a correct collection usage.
  EMPTY_LIST was assigned to List pointers when needed and the initial
  size of many ArrayLists was manually set" -- the long-lived rule
  registry below uses well-sized HashSets and ArrayLists that leave the
  tool nothing to win.
* "CHAMELEON discovered many empty and small sized ArrayLists that were
  mistakenly initialized to a high number" -- every AST node visit
  allocates a children list with ``initial_capacity=50`` that holds at
  most a couple of elements and dies immediately (the oversized-capacity
  rule); the paper's fix "reduced more than 20 million ArrayList
  allocations" worth of churn.
* "all these changes did not reduce the minimal heap size ... most of the
  reduced collections are short lived [and] most of the long-lived
  collection data in PMD is large and stable HashSets as well as large
  ArrayLists.  However ... the number of GCs reduced by 16% which led to
  a runtime improvement of 8.33%." -- with the fixes the allocation rate
  drops, so the periodic/limit-triggered GC count falls and time improves
  while the footprint stays flat.
* Section 5.4: PMD is the benchmark whose per-allocation context capture
  makes the fully automatic mode prohibitive (~6x), purely because of
  this allocation volume.
"""

from __future__ import annotations

from repro.collections.wrappers import ChameleonList, ChameleonSet
from repro.runtime.vm import RuntimeEnvironment
from repro.workloads.base import Workload

__all__ = ["PmdWorkload"]


class PmdWorkload(Workload):
    """Source-analysis workload dominated by short-lived collections."""

    name = "pmd"

    MISTAKEN_CAPACITY = 50

    def __init__(self, seed: int = 2009, scale: float = 1.0,
                 manual_fixes: bool = False) -> None:
        super().__init__(seed, scale, manual_fixes)
        self.num_files = self.scaled(40)
        self.nodes_per_file = 400
        self.ruleset_size = 300

    # ------------------------------------------------------------------
    # Allocation contexts
    # ------------------------------------------------------------------
    def _make_children_list(self, vm) -> ChameleonList:
        """The mistakenly pre-sized, short-lived per-visit list."""
        capacity = 2 if self.manual_fixes else self.MISTAKEN_CAPACITY
        return ChameleonList(vm, src_type="ArrayList",
                             initial_capacity=capacity)

    def _make_scope_list(self, vm) -> ChameleonList:
        """Short-lived, already well-sized scope list (no finding)."""
        return ChameleonList(vm, src_type="ArrayList", initial_capacity=2)

    def _make_usage_list(self, vm) -> ChameleonList:
        """Short-lived, already well-sized usages list (no finding)."""
        return ChameleonList(vm, src_type="ArrayList", initial_capacity=2)

    def _make_rule_name_set(self, vm) -> ChameleonSet:
        """Long-lived, large, stable, already well-sized rule registry."""
        return ChameleonSet(vm, src_type="HashSet",
                            initial_capacity=2 * self.ruleset_size)

    def _make_violation_list(self, vm) -> ChameleonList:
        """Long-lived violations accumulator, already well-sized."""
        return ChameleonList(vm, src_type="ArrayList",
                             initial_capacity=self.num_files // 5 + 2)

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(self, vm: RuntimeEnvironment) -> None:
        rng = self.rng()
        report = vm.allocate_data("Report", ref_fields=4)
        vm.add_root(report)

        # Long-lived, large, stable collection data (no saving possible).
        rule_names = self._make_rule_name_set(vm)
        report.add_ref(rule_names.heap_obj.obj_id)
        rules = []
        for i in range(self.ruleset_size):
            rule = vm.allocate_data("Rule", ref_fields=3, int_fields=2)
            report.add_ref(rule.obj_id)
            rules.append(rule)
            rule_names.add(rule)
        violations = self._make_violation_list(vm)
        report.add_ref(violations.heap_obj.obj_id)

        # The visitation storm: every node visit allocates a transient,
        # oversized children list that dies immediately.
        for file_index in range(self.num_files):
            for node_index in range(self.nodes_per_file):
                children = self._make_children_list(vm)
                occupancy = (file_index + node_index) % 3
                for child in range(occupancy):
                    children.add(child)
                if occupancy:
                    children.get(0)
                # Two further per-visit collections, already correctly
                # sized (PMD "was already manually optimized"): they add
                # allocation *density* -- the trait that makes online
                # context capture prohibitive -- without giving the tool
                # anything to fix.
                scope = self._make_scope_list(vm)
                usages = self._make_usage_list(vm)
                if occupancy > 1:
                    scope.add(occupancy)
                    usages.add(occupancy)
                # Transient parser state (token text, name occurrences):
                # allocation churn the collection fixes cannot remove,
                # which keeps the GC-count reduction near the paper's
                # -16% rather than eliminating GC work outright.
                vm.allocate("TokenBuffer", 600)
                # Per-node analysis work (rule matching over the
                # AST): light, because PMD's profile is dominated by
                # allocation churn rather than computation.
                vm.charge(80)
                if node_index % 97 == 0:
                    rule_names.contains(rules[node_index % len(rules)])
            if file_index % 5 == 0:
                violation = vm.allocate_data("RuleViolation", ref_fields=2,
                                             int_fields=2)
                violations.add(violation)

        # Final report pass over the stable long-lived data.
        for i in range(len(violations)):
            violations.get(i)
        for rule in rules[::7]:
            rule_names.contains(rule)
