"""Workload synthesis from statically inferred op-mix signatures.

``lint --interproc --signatures`` (:func:`repro.lint.interproc
.export_signatures`) lowers every analysed allocation site into a
``chameleon-sig`` spec: per-op frequency intervals, maximal/final size
intervals, the requested capacity and whether the site's size is
provably stable.  This module closes the loop: each spec deterministically
expands into a recorded-trace document (:class:`repro.verify.trace.Trace`)
whose realized statistics are drawn *from* those intervals, which then
compiles through the PR 7 trace pipeline into a runnable, registered
:class:`repro.workloads.compiled.CompiledTraceWorkload` scenario.

The generator is fully deterministic: every draw comes from a PRNG
string-seeded with the signature name, so a given spec always produces
the same trace (and the compiled workload layers its usual per-round
perturbation on top).
"""

from __future__ import annotations

import json
import os
import random
from typing import Any, Dict, List, Optional, Sequence

from repro.collections.base import CollectionKind
from repro.verify.compile import compile_trace
from repro.verify.trace import Trace, encode_value
from repro.workloads.base import Workload, WorkloadRegistry
from repro.workloads.compiled import CompiledTraceWorkload

__all__ = ["SIGNATURE_SCHEMA", "trace_from_signature",
           "scenario_from_signature", "load_signature_file",
           "bundled_signature_specs", "register_signature_scenarios"]

SIGNATURE_SCHEMA = "chameleon-sig"

_SIGNATURE_DIR = os.path.join(os.path.dirname(__file__), "signatures")

#: Default trace src_type / baseline per kind when the spec carries an
#: unknown (or no) source type.
_KIND_DEFAULTS = {
    CollectionKind.LIST: "ArrayList",
    CollectionKind.SET: "HashSet",
    CollectionKind.MAP: "HashMap",
}

#: Fig. 4 op spelling -> recorded-trace op name, per kind.  Ops with no
#: replayable surface (argument-side events like ``#copied``) map to
#: ``None`` and are dropped (recorded in ``meta["dropped"]``).
_DSL_TO_TRACE: Dict[CollectionKind, Dict[str, Optional[str]]] = {
    CollectionKind.LIST: {
        "#add": "add", "#add(int)": "add_at", "#addAll": "add_all",
        "#addAll(int)": "add_all_at", "#get(int)": "get",
        "#set(int)": "set_at", "#remove(int)": "remove_at",
        "#removeFirst": "remove_first", "#remove": "remove_value",
        "#contains": "contains", "#indexOf": "index_of",
        "#toArray": "to_list", "#size": "size", "#isEmpty": "is_empty",
        "#clear": "clear", "#iterator": "iterate",
        "#copied": None, "#iterEmpty": None,
    },
    CollectionKind.SET: {
        "#add": "add", "#addAll": "add_all", "#remove": "remove_value",
        "#contains": "contains", "#size": "size", "#isEmpty": "is_empty",
        "#clear": "clear", "#iterator": "iterate",
        "#copied": None, "#iterEmpty": None,
    },
    CollectionKind.MAP: {
        "#put": "put", "#putAll": "put_all", "#get(Object)": "get",
        "#removeKey": "remove_key", "#containsKey": "contains_key",
        "#containsValue": "contains_value", "#size": "size",
        "#isEmpty": "is_empty", "#clear": "clear", "#iterator": "iterate",
        "#copied": None, "#iterEmpty": None,
    },
}

#: Ops that grow the collection when their element is fresh.
_GROW_OPS = {"add", "add_at", "put"}


def _check_spec(spec: Dict[str, Any]) -> None:
    if spec.get("schema") != SIGNATURE_SCHEMA:
        raise ValueError(f"not a {SIGNATURE_SCHEMA} spec: "
                         f"schema={spec.get('schema')!r}")
    if spec.get("version", 1) > 1:
        raise ValueError(f"signature version {spec['version']} "
                         "is newer than supported (1)")
    for key in ("name", "kind", "maxSize"):
        if key not in spec:
            raise ValueError(f"signature spec missing {key!r}")


def _draw(interval: Optional[Sequence[Optional[float]]],
          rng: random.Random, unbounded_slack: int = 6) -> int:
    """One realized value from an exported ``[lo, hi|null]`` interval."""
    if interval is None:
        return 0
    lo = max(0, int(interval[0] or 0))
    hi = interval[1]
    if hi is None:
        return lo + rng.randint(0, unbounded_slack)
    hi = int(hi)
    return lo if hi <= lo else rng.randint(lo, hi)


def trace_from_signature(spec: Dict[str, Any], seed: int = 2009) -> Trace:
    """Expand one ``chameleon-sig`` spec into a synthetic recorded trace.

    The realized workload honours the signature's structure: it grows to
    a maximal size drawn from ``maxSize``, spends the drawn op budget of
    each replayable operation, shrinks to a final size drawn from
    ``size``, and opens one full iteration pass per drawn ``#iterator``.
    Draws are string-seeded from the signature name, so the expansion is
    a pure function of (spec, seed).
    """
    _check_spec(spec)
    kind = CollectionKind(spec["kind"].capitalize()
                          if spec["kind"].islower() else spec["kind"])
    rng = random.Random(f"chameleon-sig/{spec['name']}/{seed}")
    op_map = _DSL_TO_TRACE[kind]

    budgets: Dict[str, int] = {}
    dropped: List[str] = []
    for dsl, interval in sorted((spec.get("ops") or {}).items()):
        trace_op = op_map.get(dsl)
        if trace_op is None:
            dropped.append(dsl)
            continue
        count = _draw(interval, rng)
        if count:
            budgets[trace_op] = budgets.get(trace_op, 0) + count

    peak_iv = spec.get("maxSize") or [0, 0]
    lo_peak = max(0, int(peak_iv[0] or 0))
    hi_peak = peak_iv[1]
    grow_budget = sum(budgets.get(op, 0) for op in _GROW_OPS)
    # The realized peak: as much of the fresh-growth op budget as the
    # signature's maxSize interval admits, never below its lower bound.
    natural = grow_budget if hi_peak is None \
        else min(int(hi_peak), grow_budget)
    max_size = max(lo_peak, natural)
    final_size = min(_draw(spec.get("size"), rng), max_size)
    max_size = max(max_size, final_size)

    ops: List[list] = []
    live: List[Any] = []       # element values (list/set) or keys (map)
    fresh = iter(range(1, 1 << 30))

    def value_for(index: int) -> Any:
        return index * 7 + 1 if kind is not CollectionKind.MAP \
            else f"k{index}"

    def emit(name: str, *args: Any) -> None:
        ops.append([name, *args])

    def enc(value: Any) -> list:
        return encode_value(value, None)  # type: ignore[arg-type]

    def spend(name: str, count: int = 1) -> bool:
        if budgets.get(name, 0) < count:
            return False
        budgets[name] -= count
        return True

    def grow_once() -> None:
        index = next(fresh)
        value = value_for(index)
        if kind is CollectionKind.MAP:
            emit("put", enc(value), enc(index))
        elif spend("add_at"):
            emit("add_at", rng.randint(0, len(live)), enc(value))
        else:
            budgets["add"] = max(0, budgets.get("add", 0) - 1)
            emit("add", enc(value))
        live.append(value)

    # Phase 1 -- grow to the drawn maximal size.
    while len(live) < max_size:
        grow_once()

    # Phase 2 -- spend the remaining op budget without growing past the
    # peak: re-adds hit existing elements (sets/maps absorb them as
    # no-growth updates; lists pair each with a removal), reads target
    # live elements.
    def read_target() -> Any:
        return rng.choice(live) if live else value_for(next(fresh))

    extra_adds = budgets.get("add", 0) + budgets.get("put", 0)
    for _ in range(extra_adds):
        if kind is CollectionKind.MAP:
            spend("put")
            key = read_target()
            emit("put", enc(key), enc(next(fresh)))
            if key not in live:
                live.append(key)
        elif kind is CollectionKind.SET:
            spend("add")
            value = read_target()
            emit("add", enc(value))
            if value not in live:
                live.append(value)
        else:
            spend("add")
            if live and (spend("remove_at") or spend("remove_first")
                         or spend("remove_value")):
                victim = rng.randrange(len(live))
                emit("remove_at", victim)
                live.pop(victim)
            index = next(fresh)
            value = value_for(index)
            emit("add", enc(value))
            live.append(value)
            if len(live) > max_size:      # keep the drawn peak honest
                emit("remove_at", len(live) - 1)
                live.pop()

    _READS = {"get": ("i",), "set_at": ("i", "v"), "contains": ("v",),
              "contains_key": ("v",), "contains_value": ("v",),
              "index_of": ("v",), "remove_value": ("v",),
              "remove_at": ("i",), "remove_first": (), "remove_key": ("v",),
              "get_obj": ("v",), "to_list": (), "size": (),
              "is_empty": ()}
    for name in sorted(budgets):
        if name in ("add", "put", "add_at", "iterate", "clear",
                    "add_all", "add_all_at", "put_all"):
            continue
        arity = _READS.get(name)
        if arity is None:
            continue
        removing = name.startswith("remove")
        while budgets.get(name, 0) > 0:
            spend(name)
            if removing and not live:
                continue
            if name == "remove_first":
                emit("remove_first")
                live.pop(0)
                continue
            args = []
            victim = rng.randrange(len(live)) if live else 0
            for arg_kind in arity:
                if arg_kind == "i":
                    args.append(victim)
                else:
                    args.append(enc(live[victim] if live
                                    else value_for(next(fresh))))
            if name == "get" and kind is CollectionKind.MAP:
                emit("get", enc(read_target()))
            else:
                emit(name, *args)
            if removing:
                live.pop(victim)

    # Bulk ops: one shot each, small payloads of fresh values.
    for name in ("add_all", "add_all_at", "put_all"):
        while budgets.get(name, 0) > 0:
            spend(name)
            payload = [next(fresh) for _ in range(rng.randint(1, 3))]
            if name == "put_all":
                emit("put_all", [["p", [enc(f"k{v}"), enc(v)]]
                                 for v in payload])
                live.extend(f"k{v}" for v in payload)
            elif name == "add_all_at":
                emit("add_all_at", rng.randint(0, len(live)),
                     [enc(value_for(v)) for v in payload])
                live.extend(value_for(v) for v in payload)
            else:
                emit("add_all", [enc(value_for(v)) for v in payload])
                live.extend(value_for(v) for v in payload)

    # Iteration passes: one full sweep per drawn #iterator.
    for slot in range(budgets.get("iterate", 0)):
        emit("iter_new", slot, "values")
        for _ in range(len(live) + 1):
            emit("iter_next", slot)

    # Phase 3 -- shrink to the drawn final size (clears first if drawn).
    if spend("clear"):
        emit("clear")
        live.clear()
        while budgets.get("clear", 0) > 0:   # re-clears are no-growth
            spend("clear")
            emit("clear")
    while len(live) > final_size:
        if kind is CollectionKind.MAP:
            emit("remove_key", enc(live.pop()))
        elif kind is CollectionKind.SET:
            emit("remove_value", enc(live.pop()))
        else:
            emit("remove_at", len(live) - 1)
            live.pop()
    while len(live) < final_size:
        grow_once()

    src_type = spec.get("srcType") or _KIND_DEFAULTS[kind]
    meta = {"generator": "signature", "signature": spec["name"],
            "maxSize": max_size, "finalSize": final_size}
    if dropped:
        meta["dropped"] = dropped
    return Trace(kind=kind, src_type=src_type,
                 baseline_impl=_KIND_DEFAULTS[kind],
                 context=spec.get("context", ""), ops=ops, meta=meta)


def scenario_from_signature(spec: Dict[str, Any], rounds: int = 2,
                            perturb: float = 0.2,
                            **kwargs: Any) -> Workload:
    """The runnable workload scenario for one signature spec."""
    seed = int(kwargs.get("seed", 2009))
    program = compile_trace(trace_from_signature(spec, seed=seed))
    kwargs.setdefault("scenario", spec["name"])
    return CompiledTraceWorkload(program, rounds=rounds,
                                 perturb=perturb, **kwargs)


def load_signature_file(path: str) -> List[Dict[str, Any]]:
    """Signature specs from a ``lint --signatures`` JSON export.

    Accepts either a bare list of specs or a document with a
    ``signatures`` key (the CLI export format).
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    specs = data.get("signatures", []) if isinstance(data, dict) else data
    for spec in specs:
        _check_spec(spec)
    return list(specs)


def bundled_signature_specs() -> List[Dict[str, Any]]:
    """Every signature spec shipped under ``workloads/signatures/``."""
    specs: List[Dict[str, Any]] = []
    if not os.path.isdir(_SIGNATURE_DIR):
        return specs
    for name in sorted(os.listdir(_SIGNATURE_DIR)):
        if name.endswith(".json"):
            specs.extend(
                load_signature_file(os.path.join(_SIGNATURE_DIR, name)))
    return specs


def register_signature_scenarios(registry: WorkloadRegistry) -> None:
    """Register every bundled signature spec as a named scenario."""
    for spec in bundled_signature_specs():
        def factory(spec: Dict[str, Any] = spec,
                    **kwargs: Any) -> Workload:
            kwargs.pop("name", None)
            return scenario_from_signature(spec, **kwargs)
        registry.register(spec["name"], factory)
