"""SOOT-like workload: IR construction with the ``useBoxes`` idiom.

Section 5.3 signature being reproduced:

* "SOOT's heap consists of many small objects that are long-lived.  Its
  intermediate representation makes intensive use of Collection classes
  ... the initial capacity of the lists is rarely provided, and the
  overall utilization of the lists is rather low (overall, around 25%)."
* "in the few top contexts in which ArrayLists were used to store
  singletons (by construction), the constructed collections are never
  modified, and [we] replaced them with immutable SingletonList (e.g., in
  JIfStmt)" -- leaf statements below allocate a one-element use-box list
  that is only ever read.
* "the large potential saving for ArrayLists created in useBoxes methods.
  The idiom there is one of aggregation of used values up a tree.  Every
  node creates an ArrayList of its uses, and aggregates uses from its
  children ... many ArrayLists that are being rolled into other
  ArrayLists using addAll ... we selected proper initial sizes for these
  lists" -- the two aggregation levels below have fixed arity, so their
  sizes are stable and the set-initial-capacity rule fires.

The paper reports ~6% space and ~11% time improvement; most of the heap
is IR records, so collection fixes move the footprint modestly.
"""

from __future__ import annotations

from repro.collections.wrappers import ChameleonList
from repro.runtime.vm import RuntimeEnvironment
from repro.workloads.base import Workload

__all__ = ["SootWorkload"]


class SootWorkload(Workload):
    """Bytecode-IR workload with singleton and aggregated use-box lists."""

    name = "soot"

    ARITY = 8  # statements aggregated per block; keeps sizes stable

    def __init__(self, seed: int = 2009, scale: float = 1.0,
                 manual_fixes: bool = False) -> None:
        super().__init__(seed, scale, manual_fixes)
        self.num_methods = self.scaled(120)
        self.blocks_per_method = 4
        self.analysis_passes = 2

    # ------------------------------------------------------------------
    # Allocation contexts
    # ------------------------------------------------------------------
    def _leaf_use_boxes(self, vm, use_box) -> ChameleonList:
        """JIfStmt-style singleton use-box list: filled once, never
        modified (the SingletonList replacement context)."""
        impl = "SingletonList" if self.manual_fixes else None
        boxes = ChameleonList(vm, src_type="ArrayList", impl=impl)
        boxes.add(use_box)
        return boxes

    def _block_use_boxes(self, vm) -> ChameleonList:
        """Block-level aggregation list (stable size = ARITY)."""
        capacity = self.ARITY if self.manual_fixes else None
        return ChameleonList(vm, src_type="ArrayList",
                             initial_capacity=capacity)

    def _method_use_boxes(self, vm) -> ChameleonList:
        """Method-level aggregation list (stable size = blocks * ARITY)."""
        size = self.blocks_per_method * self.ARITY
        capacity = size if self.manual_fixes else None
        return ChameleonList(vm, src_type="ArrayList",
                             initial_capacity=capacity)

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(self, vm: RuntimeEnvironment) -> None:
        scene = vm.allocate_data("Scene", ref_fields=4)
        vm.add_root(scene)

        methods = []
        for _ in range(self.num_methods):
            method = vm.allocate_data("SootMethod", ref_fields=8,
                                      int_fields=6)
            scene.add_ref(method.obj_id)
            statements = []
            method_boxes = self._method_use_boxes(vm)
            method.add_ref(method_boxes.heap_obj.obj_id)
            # Most of SOOT's heap is plain IR records; only branch
            # statements carry a use-box list, so collections are a
            # modest share and the paper-scale ~6% saving emerges.
            blob = vm.allocate("byte[]", 768)
            method.add_ref(blob.obj_id)
            for _ in range(self.blocks_per_method):
                block_boxes = self._block_use_boxes(vm)
                for stmt_index in range(self.ARITY):
                    stmt = vm.allocate_data("AbstractStmt", ref_fields=8,
                                            int_fields=6)
                    method.add_ref(stmt.obj_id)
                    vm.charge(60)  # bytecode parsing / Jimple building
                    for _ in range(2):
                        expr = vm.allocate_data("Expr", ref_fields=4,
                                                int_fields=2)
                        stmt.add_ref(expr.obj_id)
                    if stmt_index % 4 != 0:
                        continue
                    use_box = vm.allocate_data("ValueBox", ref_fields=1)
                    stmt.add_ref(use_box.obj_id)
                    stmt_boxes = self._leaf_use_boxes(vm, use_box)
                    stmt.add_ref(stmt_boxes.heap_obj.obj_id)
                    statements.append((stmt, stmt_boxes))
                    # Aggregation up the tree: the statement's boxes are
                    # rolled into the block's list (copied counter on the
                    # singleton context, addAll on the block context).
                    block_boxes.add_all(stmt_boxes)
                method_boxes.add_all(block_boxes)
                # The block list is a temporary: it dies once aggregated.
            methods.append((method, method_boxes, statements))

        # Analysis passes: read every statement's use boxes (get-dominated
        # read traffic on the singleton context) and scan method-level
        # aggregates.
        for _ in range(self.analysis_passes):
            for method, method_boxes, statements in methods:
                for _, stmt_boxes in statements:
                    stmt_boxes.get(0)
                    vm.charge(100)  # dataflow transfer function
                for value in method_boxes.iterate():
                    vm.charge(8)
